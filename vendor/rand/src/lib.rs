//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Implements exactly what this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` (over float and integer ranges, half-open and inclusive) and
//! `gen_bool`. The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic for a given seed, statistically solid for simulation use.
//! It intentionally does NOT reproduce the upstream `StdRng` stream; all
//! seeds in this repo are self-consistent, nothing depends on upstream
//! bit-for-bit output.

use std::ops::{Range, RangeInclusive};

/// Seeding interface: construct a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Minimal object-safe core: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, ints or floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn int_inclusive_range_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(7);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10u64..=12);
            assert!((10..=12).contains(&x));
            lo_seen |= x == 10;
            hi_seen |= x == 12;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_mean_tracks_p() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let mean = hits as f64 / 100_000.0;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        for bits in [0u64, 1, u64::MAX, u64::MAX / 2] {
            let x = super::unit_f64(bits);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
