//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derives so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! unchanged. No code in this workspace consumes the serde traits (nothing
//! bounds on `T: Serialize`), so no trait definitions are needed.

pub use serde_derive::{Deserialize, Serialize};
