//! Offline stand-in for `proptest`, implementing the subset this workspace
//! uses: numeric-range strategies, tuple strategies, `prop_map`,
//! `collection::vec`, the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), and the `prop_assert*` family.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking** — a failing case panics with its inputs printed, but
//!   no minimization is attempted;
//! * **Deterministic seeding** — each test derives its RNG from the test
//!   name and case index, so CI failures reproduce locally by default;
//! * `PROPTEST_CASES` overrides the per-test case count from the
//!   environment, exactly like upstream.

pub mod strategy {
    //! The [`Strategy`] trait and the concrete strategy combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type (no shrinking).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform every generated value through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(S0 / 0);
    tuple_strategy!(S0 / 0, S1 / 1);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
    tuple_strategy!(
        S0 / 0,
        S1 / 1,
        S2 / 2,
        S3 / 3,
        S4 / 4,
        S5 / 5,
        S6 / 6,
        S7 / 7
    );

    /// Strategy yielding one fixed value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a size drawn from `size` (exact, `a..b`, or
    /// `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case scheduling, seeding, and the error type `prop_assert!` raises.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (`proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by the `prop_assert*` macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives the cases of one `proptest!` test.
    pub struct TestRunner {
        cases: u32,
        base_seed: u64,
    }

    impl TestRunner {
        /// Runner for the named test; `PROPTEST_CASES` overrides the case
        /// count.
        pub fn new(config: Config, name: &str) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(config.cases);
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner {
                cases,
                base_seed: h,
            }
        }

        /// How many cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Deterministic RNG for one case.
        pub fn rng_for_case(&self, case: u32) -> StdRng {
            StdRng::seed_from_u64(
                self.base_seed
                    .wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        }
    }
}

/// Everything the tests glob-import (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert `cond`, failing the current case (with optional formatted
/// message) instead of panicking the whole test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values are equal (`==`), failing the case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: {:?} == {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Assert two values are unequal (`!=`), failing the case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a != *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a != *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: {:?} != {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// The `proptest!` test-definition macro: each `fn name(arg in strategy)`
/// becomes a `#[test]` running `cases` random samples of the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let runner =
                    $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample_value(&($strat), &mut rng);
                    )+
                    // Render inputs up front: the body takes ownership of the
                    // arguments (as in upstream proptest), so they may no
                    // longer be live by the time a failure is reported.
                    let __inputs = format!("{:#?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name),
                            case,
                            runner.cases(),
                            e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(10), "t");
        let mut rng = runner.rng_for_case(0);
        for _ in 0..1000 {
            let x = (1.0f64..2.0).sample_value(&mut rng);
            assert!((1.0..2.0).contains(&x));
            let n = (3u64..9).sample_value(&mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(10), "v");
        let mut rng = runner.rng_for_case(1);
        for _ in 0..200 {
            let v = crate::collection::vec(0.0f64..1.0, 2..=5).sample_value(&mut rng);
            assert!((2..=5).contains(&v.len()));
        }
        let exact = crate::collection::vec(0u32..5, 3).sample_value(&mut rng);
        assert_eq!(exact.len(), 3);
    }

    #[test]
    fn prop_map_transforms() {
        let runner = crate::test_runner::TestRunner::new(ProptestConfig::default(), "m");
        let mut rng = runner.rng_for_case(2);
        let s = (0u32..10).prop_map(|x| x * 100);
        for _ in 0..100 {
            let v = s.sample_value(&mut rng);
            assert_eq!(v % 100, 0);
            assert!(v < 1000);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0.0f64..100.0, n in 1usize..4) {
            prop_assert!(x >= 0.0);
            prop_assert!(x < 100.0, "x out of range: {x}");
            prop_assert_eq!(n * 2 / 2, n);
            prop_assert_ne!(n, 0);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in crate::collection::vec(0u64..10, 0..6)) {
            prop_assert!(v.len() < 6);
        }
    }
}
