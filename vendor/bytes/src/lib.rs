//! Offline stand-in for the `bytes` crate: the [`Buf`] reader trait over
//! `&[u8]`, with the big-endian accessors the WC98 binary-log parser uses.

/// A cursor over a byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;
    /// Read a big-endian `u32`, advancing the cursor.
    fn get_u32(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().expect("split_at(4) yields 4 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::Buf;

    #[test]
    fn reads_big_endian_and_advances() {
        let data = [0x01, 0x02, 0x03, 0x04, 0xFF];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.remaining(), 5);
        assert_eq!(buf.get_u32(), 0x0102_0304);
        assert_eq!(buf.remaining(), 1);
        assert_eq!(buf.get_u8(), 0xFF);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32();
    }
}
