//! Offline stand-in for `criterion`, covering the harness surface the
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`], and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology (simplified but honest): each benchmark is warmed up for
//! [`WARMUP`], then timed over [`SAMPLES`] samples of adaptively sized
//! batches; the reported figure is the median per-iteration time, with min
//! and max shown for spread. A `BENCH_FAST=1` environment variable cuts
//! the budget for CI smoke runs. Results print to stdout, one line per
//! benchmark, and are also recorded so `final_summary` can emit a compact
//! recap.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Warm-up budget per benchmark.
const WARMUP: Duration = Duration::from_millis(120);
/// Number of timed samples per benchmark.
const SAMPLES: usize = 31;
/// Target wall-clock budget for all samples of one benchmark.
const MEASURE: Duration = Duration::from_millis(400);

fn fast_mode() -> bool {
    std::env::var("BENCH_FAST")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Run one benchmark and print its timing line.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let median_ns = run_bench(&name, &mut f);
        self.results.push((name, median_ns));
        self
    }

    /// Open a named group; benchmark ids are prefixed with `name/`.
    pub fn benchmark_group<N: std::fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }

    /// Print the recap table of every benchmark run so far.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        let width = self.results.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        println!("\nsummary ({} benchmarks):", self.results.len());
        for (name, ns) in &self.results {
            println!("  {name:<width$}  {}", fmt_ns(*ns));
        }
    }
}

/// A benchmark group (prefix namespace), mirroring criterion's API.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.prefix, id);
        self.criterion.bench_function(name, f);
        self
    }

    /// Accepted for API compatibility; this shim sizes samples by wall-clock
    /// budget rather than count, so the value is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    mode: Mode,
    /// Filled by `iter`: ns per iteration for this invocation.
    last_ns: f64,
}

enum Mode {
    /// Run the routine a fixed number of times, timing the whole batch.
    Batch(u64),
    /// Run once, timing it (used during calibration).
    Calibrate,
}

impl Bencher {
    /// Time the routine; criterion's `iter`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Calibrate => {
                let start = Instant::now();
                black_box(routine());
                self.last_ns = start.elapsed().as_nanos() as f64;
            }
            Mode::Batch(n) => {
                let start = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                self.last_ns = start.elapsed().as_nanos() as f64 / n as f64;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) -> f64 {
    let (warmup, measure, samples) = if fast_mode() {
        (WARMUP / 4, MEASURE / 4, 11)
    } else {
        (WARMUP, MEASURE, SAMPLES)
    };

    // Calibrate: how long does one iteration take?
    let mut b = Bencher {
        mode: Mode::Calibrate,
        last_ns: 0.0,
    };
    f(&mut b);
    let approx_ns = b.last_ns.max(1.0);

    // Warm up for the budget.
    let warm_end = Instant::now() + warmup;
    while Instant::now() < warm_end {
        f(&mut b);
    }

    // Batch size so that all samples together fit the measure budget.
    let per_sample_ns = measure.as_nanos() as f64 / samples as f64;
    let batch = ((per_sample_ns / approx_ns).floor() as u64).clamp(1, 1_000_000);

    let mut sampled: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                mode: Mode::Batch(batch),
                last_ns: 0.0,
            };
            f(&mut b);
            b.last_ns
        })
        .collect();
    sampled.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = sampled[sampled.len() / 2];
    let (min, max) = (sampled[0], sampled[sampled.len() - 1]);
    println!(
        "{name:<44} {:>12}/iter  (min {}, max {}, {} x {} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        samples,
        batch
    );
    median
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions into a group runner (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main()` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. --bench); nothing to parse
            // in this shim.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        std::env::set_var("BENCH_FAST", "1");
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1 > 0.0);
        c.final_summary();
    }

    #[test]
    fn groups_prefix_names() {
        std::env::set_var("BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.bench_function("x", |b| b.iter(|| black_box(3u32) * 7));
        g.finish();
        assert_eq!(c.results[0].0, "grp/x");
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
