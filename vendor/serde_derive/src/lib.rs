//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds without network access, so the real serde cannot be
//! fetched. Nothing in the codebase serializes through serde trait bounds —
//! the `#[derive(Serialize, Deserialize)]` attributes only declare intent —
//! so accepting the derives and emitting no code is sufficient and keeps
//! every type's autotraits and layout untouched.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (with any `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (with any `#[serde(...)]` attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
