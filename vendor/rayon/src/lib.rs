//! Offline stand-in for `rayon`, covering the surface this workspace uses:
//!
//! * [`join`] — run two closures on two threads, return both results;
//! * `.par_iter()` / `.into_par_iter()` followed by `.map(...).collect()` —
//!   a parallel map over a known-length input, preserving input order.
//!
//! # The work-stealing range pool
//!
//! Parallel maps run on scoped worker threads scheduled by **range
//! stealing** (`run_parallel`): the input index space is split into one
//! contiguous range per worker, each packed into a single `AtomicU64`.
//! A worker pops indices off the *front* of its own range (one CAS, no
//! locks); when its range drains it steals the *back half* of another
//! worker's remaining range and installs the loot as its new range —
//! which keeps stolen work subdividable by further thieves. Workers spin
//! down only once every item is accounted for, so a skewed input (10k
//! grid cells where a few long-trace or per-second cells dominate) keeps
//! all workers busy to the end instead of idling behind one unlucky
//! chunk. Items move through `UnsafeCell` slots: a claimed index leaves
//! exactly one range atomically, so slot access is exclusive by
//! construction. Output order is input order regardless of who ran what,
//! which is what bml-grid's byte-identical-artifacts guarantee rests on.
//!
//! # Panic propagation
//!
//! A panicking task must not take down unrelated work. Each task runs
//! under `catch_unwind`, its outcome (value or panic payload) lands in
//! its slot, and the worker moves on — every other item still executes,
//! whichever worker it was scheduled on. Only at the drain, after all
//! items are accounted for, is the panic of the **lowest input index**
//! resumed (deterministic whatever the thread count), matching upstream
//! rayon's semantics of propagating a caught task panic to the caller.
//! Previously a panicking task killed its worker thread without
//! decrementing the remaining-items counter, leaving the surviving
//! workers spinning forever: one bad cell hung the whole run.

use std::cell::{Cell, UnsafeCell};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Process-global scheduler telemetry (monotone since process start).
/// Host-dependent by nature — how often workers steal depends on timing —
/// so consumers must report these on the host plane of their telemetry,
/// never the deterministic one.
static POOL_TASKS: AtomicU64 = AtomicU64::new(0);
static POOL_STEALS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the shim's global scheduler counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Items executed by parallel maps since process start (sequential
    /// fallbacks included — every item is a task).
    pub tasks: u64,
    /// Successful range steals since process start (a steal is one
    /// worker installing the back half of a peer's remaining range).
    pub steals: u64,
}

/// Read the global scheduler counters. Callers interested in one run
/// take a snapshot before and after and subtract.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        tasks: POOL_TASKS.load(Ordering::Relaxed),
        steals: POOL_STEALS.load(Ordering::Relaxed),
    }
}

std::thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] on the
    /// calling thread. `run_parallel` reads it on the caller, so the
    /// override applies to every parallel map started inside `install`
    /// (but not to maps started *from within* worker threads — the shim
    /// has no nested parallelism to govern).
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Upper bound on worker threads: an [`ThreadPool::install`] override if
/// one is active on this thread, otherwise available parallelism capped
/// at 16.
fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}

/// Error type of [`ThreadPoolBuilder::build`]. The shim cannot fail to
/// build a pool; the type exists to mirror the upstream signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon shim: thread pool construction cannot fail")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`: only `num_threads` is
/// supported (0 = the default worker cap, as upstream).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder with the default worker cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` workers; 0 restores the default cap.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool (infallible in the shim).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A worker cap that parallel maps run under via [`ThreadPool::install`].
///
/// Unlike upstream there are no persistent pool threads: the shim spawns
/// scoped workers per map, so the pool is just the cap to apply.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the previous override even if `op` panics.
struct OverrideGuard {
    prev: Option<usize>,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// Run `op` with this pool's worker cap applied to every parallel map
    /// it starts (`rayon::ThreadPool::install`).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let cap = if self.num_threads == 0 {
            None
        } else {
            Some(self.num_threads)
        };
        let _guard = OverrideGuard {
            prev: THREAD_OVERRIDE.with(|c| c.replace(cap)),
        };
        op()
    }

    /// The configured worker cap (the default cap when built with 0).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            self.install(max_threads)
        } else {
            self.num_threads
        }
    }
}

/// Run `a` and `b` concurrently and return both results (`rayon::join`).
///
/// If `b` panics, its original payload is resumed on the caller (as
/// upstream rayon does) instead of being replaced by a join-poisoning
/// `expect` — callers that `catch_unwind` around `join` observe the real
/// panic, and `a`'s side ran to completion independently.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// A not-yet-mapped parallel iterator: the collected input items.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A mapped parallel iterator, ready to `collect()`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    /// Apply `f` to every item in parallel (lazily, at `collect` time).
    pub fn map<F, R>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<I: Send, F> ParMap<I, F> {
    /// Run the map across worker threads and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(I) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_parallel(self.items, &self.f).into_iter().collect()
    }
}

/// An item slot a single claimant accesses at a time.
///
/// Safety contract: an index is claimed by removing it from the one
/// atomic range that contains it ([`pop_front`] / [`steal_half`]), so at
/// most one worker ever touches slot `idx`; the pre-spawn fill and the
/// post-join drain are ordered by `thread::scope`.
struct Slot<T>(UnsafeCell<Option<T>>);

unsafe impl<T: Send> Sync for Slot<T> {}

/// Pack a half-open index range into one atomic word (start high, end low).
#[inline]
fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

/// Unpack a range word into `(start, end)`.
#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Claim the front index of `range`, or `None` if it is empty.
fn pop_front(range: &AtomicU64) -> Option<usize> {
    let mut cur = range.load(Ordering::Acquire);
    loop {
        let (s, e) = unpack(cur);
        if s >= e {
            return None;
        }
        match range.compare_exchange_weak(cur, pack(s + 1, e), Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => return Some(s as usize),
            Err(now) => cur = now,
        }
    }
}

/// Steal the back half of some other worker's range (the victim keeps the
/// front `floor(len/2)`, so a single remaining item is stolen whole).
/// Victims are scanned in a fixed order starting after `me`; returns the
/// stolen range packed, or `None` when every other range is empty.
fn steal_half(me: usize, ranges: &[AtomicU64]) -> Option<u64> {
    let w = ranges.len();
    for off in 1..w {
        let victim = &ranges[(me + off) % w];
        let mut cur = victim.load(Ordering::Acquire);
        loop {
            let (s, e) = unpack(cur);
            if s >= e {
                break;
            }
            let mid = s + (e - s) / 2;
            match victim.compare_exchange_weak(
                cur,
                pack(s, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(pack(mid, e)),
                Err(now) => cur = now,
            }
        }
    }
    None
}

/// Order-preserving parallel map over the work-stealing range pool (see
/// the module docs): each worker owns an atomic index range, pops from
/// its front, and steals the back half of a peer's range when it drains.
///
/// Task panics are caught per item and propagated as values to the
/// drain, which runs every item to completion first and then resumes the
/// panic of the lowest input index (see the module docs). The sequential
/// fallback mirrors that exactly, so 1-thread runs are a faithful
/// reference for panicking workloads too.
fn run_parallel<I: Send, R: Send>(items: Vec<I>, f: &(impl Fn(I) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = max_threads().min(n);
    // `f` crossing the catch_unwind boundary is safe to assert: either
    // the payload is resumed on the caller below (observationally the
    // same panic) or `f` never panicked.
    let call = |item: I| std::panic::catch_unwind(AssertUnwindSafe(|| f(item)));
    POOL_TASKS.fetch_add(n as u64, Ordering::Relaxed);
    if n <= 1 || workers <= 1 {
        return drain(items.into_iter().map(call).collect());
    }
    assert!(
        u32::try_from(n).is_ok(),
        "rayon shim: parallel maps cap at 2^32-1 items"
    );
    let inputs: Vec<Slot<I>> = items
        .into_iter()
        .map(|i| Slot(UnsafeCell::new(Some(i))))
        .collect();
    let outputs: Vec<Slot<std::thread::Result<R>>> =
        (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
    let remaining = AtomicUsize::new(n);
    let ranges: Vec<AtomicU64> = (0..workers)
        .map(|w| {
            AtomicU64::new(pack(
                (w * n / workers) as u32,
                ((w + 1) * n / workers) as u32,
            ))
        })
        .collect();
    std::thread::scope(|s| {
        for w in 0..workers {
            let (inputs, outputs) = (&inputs, &outputs);
            let (ranges, remaining) = (&ranges, &remaining);
            let call = &call;
            s.spawn(move || loop {
                if let Some(idx) = pop_front(&ranges[w]) {
                    // SAFETY: `idx` just left the one range containing it,
                    // so this worker is its sole claimant (Slot contract).
                    let item = unsafe { (*inputs[idx].0.get()).take() }
                        .expect("rayon shim: input slot taken twice");
                    let result = call(item);
                    unsafe { *outputs[idx].0.get() = Some(result) };
                    remaining.fetch_sub(1, Ordering::Release);
                    continue;
                }
                if remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                match steal_half(w, ranges) {
                    // Own range is empty and nobody steals from an empty
                    // range, so a plain store cannot race a thief's CAS.
                    Some(loot) => {
                        POOL_STEALS.fetch_add(1, Ordering::Relaxed);
                        ranges[w].store(loot, Ordering::Release);
                    }
                    // In-flight items remain but nothing is stealable yet
                    // (a thief may be about to install loot): stay up.
                    None => std::thread::yield_now(),
                }
            });
        }
    });
    drain(
        outputs
            .into_iter()
            .map(|slot| slot.0.into_inner().expect("rayon shim: worker left a hole"))
            .collect(),
    )
}

/// Unwrap a completed map: all values, or resume the first (lowest input
/// index) caught panic after every item has run.
fn drain<R>(results: Vec<std::thread::Result<R>>) -> Vec<R> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    out
}

/// Conversion into a [`ParIter`], by value (`rayon::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `.par_iter()` over a borrowed slice (`rayon::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn par_iter_preserves_order() {
        let v: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_array() {
        let out: Vec<String> = ["a", "b"]
            .into_par_iter()
            .map(|s| s.to_uppercase())
            .collect();
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn single_item_runs_inline() {
        let out: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn thread_pool_caps_workers_and_preserves_order() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let v: Vec<u64> = (0..50).collect();
        let out: Vec<u64> = pool.install(|| v.par_iter().map(|&x| x * 3).collect());
        assert_eq!(out, (0..50).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_pool_override_is_scoped_to_install() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let default = super::max_threads();
        pool.install(|| assert_eq!(super::max_threads(), 2));
        assert_eq!(super::max_threads(), default);
    }

    #[test]
    fn zero_threads_means_default_cap() {
        let pool = super::ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), super::max_threads());
    }

    /// API parity under the work-stealing pool at 1 thread:
    /// `ThreadPoolBuilder` / `install` / `join` must behave exactly like
    /// their sequential equivalents — same results, same order, nested
    /// `join` included — so a `--threads 1` run is a faithful reference
    /// for any parallel run.
    #[test]
    fn one_thread_pool_is_api_parity_with_sequential() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let v: Vec<u64> = (0..257).collect();
        let sequential: Vec<u64> = v.iter().map(|&x| x * x + 1).collect();
        let pooled: Vec<u64> = pool.install(|| v.par_iter().map(|&x| x * x + 1).collect());
        assert_eq!(pooled, sequential);
        // join inside install returns both results, like plain calls.
        let (a, b) = pool.install(|| super::join(|| 2 + 2, || "ab".repeat(2)));
        assert_eq!((a, b.as_str()), (4, "abab"));
        // into_par_iter parity too.
        let owned: Vec<String> = pool.install(|| {
            vec![1, 2, 3]
                .into_par_iter()
                .map(|x: i32| x.to_string())
                .collect()
        });
        assert_eq!(owned, vec!["1", "2", "3"]);
    }

    /// Skewed workloads exercise the stealing path: a few heavy items at
    /// the front of the index space would pin the old static chunking to
    /// one worker; stolen ranges must still land in input order.
    #[test]
    fn skewed_items_are_stolen_and_stay_ordered() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let v: Vec<u64> = (0..1_000).collect();
        let out: Vec<u64> = pool.install(|| {
            v.par_iter()
                .map(|&x| {
                    if x < 4 {
                        // Heavy head: forces the other workers to steal.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    x * 7
                })
                .collect()
        });
        assert_eq!(out, (0..1_000).map(|x| x * 7).collect::<Vec<_>>());
    }

    /// One panicking task must not take down unrelated work: every other
    /// item still runs, and the caller observes the original payload.
    #[test]
    fn panicking_task_propagates_payload_and_others_complete() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let ran = AtomicUsize::new(0);
        let v: Vec<u64> = (0..200).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Vec<u64> = pool.install(|| {
                v.par_iter()
                    .map(|&x| {
                        ran.fetch_add(1, Ordering::Relaxed);
                        assert!(x != 137, "cell 137 exploded");
                        x
                    })
                    .collect()
            });
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .expect("literal assert! payload is a &str");
        assert!(msg.contains("cell 137 exploded"), "got: {msg}");
        // The panicking item counted itself too: nothing was skipped.
        assert_eq!(ran.load(Ordering::Relaxed), 200);
    }

    /// With several panicking tasks, the lowest input index wins at the
    /// drain — deterministic whatever the thread count.
    #[test]
    fn lowest_index_panic_wins() {
        for threads in [1, 8] {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let v: Vec<u64> = (0..100).collect();
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _: Vec<u64> = pool.install(|| {
                    v.par_iter()
                        .map(|&x| {
                            if x == 13 || x == 77 {
                                panic!("boom at {x}");
                            }
                            x
                        })
                        .collect()
                });
            }));
            let payload = caught.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<String>().expect("String payload");
            assert_eq!(msg, "boom at 13", "threads={threads}");
        }
    }

    /// `join` resumes the spawned side's original payload instead of a
    /// join-poisoning `expect`, and the other side's work still ran.
    #[test]
    fn join_propagates_original_panic_payload() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let a_ran = AtomicBool::new(false);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            super::join(
                || a_ran.store(true, Ordering::Relaxed),
                || panic!("b exploded"),
            )
        }));
        let payload = caught.expect_err("b's panic must propagate");
        let msg = payload.downcast_ref::<&str>().expect("&str payload");
        assert_eq!(*msg, "b exploded");
        assert!(a_ran.load(Ordering::Relaxed), "a's side must have run");
    }

    /// The global counters move: tasks by exactly the map size, steals
    /// whenever a forced-starvation workload makes workers poach.
    #[test]
    fn pool_stats_count_tasks_and_steals() {
        let before = super::pool_stats();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let v: Vec<u64> = (0..600).collect();
        let out: Vec<u64> = pool.install(|| {
            v.par_iter()
                .map(|&x| {
                    if x < 4 {
                        std::thread::sleep(std::time::Duration::from_millis(15));
                    }
                    x + 1
                })
                .collect()
        });
        assert_eq!(out.len(), 600);
        let after = super::pool_stats();
        // Other tests run concurrently, so only lower-bound the deltas.
        assert!(after.tasks >= before.tasks + 600);
        assert!(after.steals >= before.steals, "steals are monotone");
    }

    #[test]
    fn range_packing_roundtrips_and_steals_split_fairly() {
        assert_eq!(super::unpack(super::pack(3, 10)), (3, 10));
        assert_eq!(super::unpack(super::pack(0, u32::MAX)), (0, u32::MAX));
        // Victim keeps floor(len/2): a single remaining item is stolen
        // whole, a 10-item range loses its back 5.
        let r = vec![
            super::AtomicU64::new(super::pack(5, 5)),
            super::AtomicU64::new(super::pack(2, 3)),
        ];
        assert_eq!(super::steal_half(0, &r), Some(super::pack(2, 3)));
        assert_eq!(super::unpack(r[1].load(super::Ordering::Relaxed)), (2, 2));
        let r = vec![
            super::AtomicU64::new(super::pack(0, 0)),
            super::AtomicU64::new(super::pack(0, 10)),
        ];
        assert_eq!(super::steal_half(0, &r), Some(super::pack(5, 10)));
        // Nothing left anywhere: no loot.
        let r = vec![
            super::AtomicU64::new(super::pack(1, 1)),
            super::AtomicU64::new(super::pack(9, 9)),
        ];
        assert_eq!(super::steal_half(0, &r), None);
    }
}
