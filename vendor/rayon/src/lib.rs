//! Offline stand-in for `rayon`, covering the surface this workspace uses:
//!
//! * [`join`] — run two closures on two threads, return both results;
//! * `.par_iter()` / `.into_par_iter()` followed by `.map(...).collect()` —
//!   a parallel map over a known-length input, preserving input order.
//!
//! There is no work-stealing pool: inputs here are small sweeps (a handful
//! of scenarios or sweep points, each individually heavy), so one scoped
//! thread per chunk with at most [`max_threads`] chunks is the right cost
//! model and keeps this shim dependency-free.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

std::thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] on the
    /// calling thread. `run_parallel` reads it on the caller, so the
    /// override applies to every parallel map started inside `install`
    /// (but not to maps started *from within* worker threads — the shim
    /// has no nested parallelism to govern).
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Upper bound on worker threads: an [`ThreadPool::install`] override if
/// one is active on this thread, otherwise available parallelism capped
/// at 16.
fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}

/// Error type of [`ThreadPoolBuilder::build`]. The shim cannot fail to
/// build a pool; the type exists to mirror the upstream signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon shim: thread pool construction cannot fail")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`: only `num_threads` is
/// supported (0 = the default worker cap, as upstream).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder with the default worker cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` workers; 0 restores the default cap.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool (infallible in the shim).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A worker cap that parallel maps run under via [`ThreadPool::install`].
///
/// Unlike upstream there are no persistent pool threads: the shim spawns
/// scoped workers per map, so the pool is just the cap to apply.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the previous override even if `op` panics.
struct OverrideGuard {
    prev: Option<usize>,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// Run `op` with this pool's worker cap applied to every parallel map
    /// it starts (`rayon::ThreadPool::install`).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let cap = if self.num_threads == 0 {
            None
        } else {
            Some(self.num_threads)
        };
        let _guard = OverrideGuard {
            prev: THREAD_OVERRIDE.with(|c| c.replace(cap)),
        };
        op()
    }

    /// The configured worker cap (the default cap when built with 0).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            self.install(max_threads)
        } else {
            self.num_threads
        }
    }
}

/// Run `a` and `b` concurrently and return both results (`rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim: joined closure panicked");
        (ra, rb)
    })
}

/// A not-yet-mapped parallel iterator: the collected input items.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A mapped parallel iterator, ready to `collect()`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    /// Apply `f` to every item in parallel (lazily, at `collect` time).
    pub fn map<F, R>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<I: Send, F> ParMap<I, F> {
    /// Run the map across worker threads and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(I) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_parallel(self.items, &self.f).into_iter().collect()
    }
}

/// Order-preserving parallel map: workers pull indices from a shared
/// counter, take the item out of its input slot, and deposit the result in
/// the matching output slot.
fn run_parallel<I: Send, R: Send>(items: Vec<I>, f: &(impl Fn(I) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<std::sync::Mutex<Option<I>>> = items
        .into_iter()
        .map(|i| std::sync::Mutex::new(Some(i)))
        .collect();
    let outputs: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = max_threads().min(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = inputs[idx]
                    .lock()
                    .expect("rayon shim: input slot poisoned")
                    .take()
                    .expect("rayon shim: input slot taken twice");
                let result = f(item);
                *outputs[idx]
                    .lock()
                    .expect("rayon shim: output slot poisoned") = Some(result);
            });
        }
    });
    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon shim: output slot poisoned")
                .expect("rayon shim: worker left a hole")
        })
        .collect()
}

/// Conversion into a [`ParIter`], by value (`rayon::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `.par_iter()` over a borrowed slice (`rayon::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn par_iter_preserves_order() {
        let v: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_array() {
        let out: Vec<String> = ["a", "b"]
            .into_par_iter()
            .map(|s| s.to_uppercase())
            .collect();
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn single_item_runs_inline() {
        let out: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn thread_pool_caps_workers_and_preserves_order() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let v: Vec<u64> = (0..50).collect();
        let out: Vec<u64> = pool.install(|| v.par_iter().map(|&x| x * 3).collect());
        assert_eq!(out, (0..50).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_pool_override_is_scoped_to_install() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let default = super::max_threads();
        pool.install(|| assert_eq!(super::max_threads(), 2));
        assert_eq!(super::max_threads(), default);
    }

    #[test]
    fn zero_threads_means_default_cap() {
        let pool = super::ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), super::max_threads());
    }
}
