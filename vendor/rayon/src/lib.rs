//! Offline stand-in for `rayon`, covering the surface this workspace uses:
//!
//! * [`join`] — run two closures on two threads, return both results;
//! * `.par_iter()` / `.into_par_iter()` followed by `.map(...).collect()` —
//!   a parallel map over a known-length input, preserving input order.
//!
//! There is no work-stealing pool: inputs here are small sweeps (a handful
//! of scenarios or sweep points, each individually heavy), so one scoped
//! thread per chunk with at most [`max_threads`] chunks is the right cost
//! model and keeps this shim dependency-free.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads: available parallelism, capped at 16.
fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}

/// Run `a` and `b` concurrently and return both results (`rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim: joined closure panicked");
        (ra, rb)
    })
}

/// A not-yet-mapped parallel iterator: the collected input items.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A mapped parallel iterator, ready to `collect()`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    /// Apply `f` to every item in parallel (lazily, at `collect` time).
    pub fn map<F, R>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<I: Send, F> ParMap<I, F> {
    /// Run the map across worker threads and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(I) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_parallel(self.items, &self.f).into_iter().collect()
    }
}

/// Order-preserving parallel map: workers pull indices from a shared
/// counter, take the item out of its input slot, and deposit the result in
/// the matching output slot.
fn run_parallel<I: Send, R: Send>(items: Vec<I>, f: &(impl Fn(I) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<std::sync::Mutex<Option<I>>> = items
        .into_iter()
        .map(|i| std::sync::Mutex::new(Some(i)))
        .collect();
    let outputs: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = max_threads().min(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = inputs[idx]
                    .lock()
                    .expect("rayon shim: input slot poisoned")
                    .take()
                    .expect("rayon shim: input slot taken twice");
                let result = f(item);
                *outputs[idx]
                    .lock()
                    .expect("rayon shim: output slot poisoned") = Some(result);
            });
        }
    });
    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon shim: output slot poisoned")
                .expect("rayon shim: worker left a hole")
        })
        .collect()
}

/// Conversion into a [`ParIter`], by value (`rayon::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `.par_iter()` over a borrowed slice (`rayon::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn par_iter_preserves_order() {
        let v: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_array() {
        let out: Vec<String> = ["a", "b"]
            .into_par_iter()
            .map(|s| s.to_uppercase())
            .collect();
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn single_item_runs_inline() {
        let out: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
