//! Measuring switch-on / switch-off durations and energies (paper
//! Sec. V-A: "We also measure On/Off durations and energy consumption").
//!
//! The protocol mirrors what one does with a wattmeter and a ping loop:
//! issue the power command, sample power at 1 Hz, and probe reachability
//! every second; the transition ends when the machine responds (boot) or
//! the meter reads zero (shutdown). The energy is the integral of the
//! sampled power over the transition.

use serde::{Deserialize, Serialize};

use crate::machine_model::SyntheticMachine;
use crate::wattmeter::Wattmeter;

/// Measured transition characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionMeasurement {
    /// Measured duration (s), 1 s resolution like the paper's table.
    pub duration_s: f64,
    /// Measured energy (J): integral of sampled power.
    pub energy_j: f64,
}

/// Safety cap on transition measurements (s).
const TIMEOUT_S: u64 = 3_600;

/// Measure a switch-on: sample power each second until the machine
/// answers pings.
pub fn measure_boot(machine: &SyntheticMachine, meter: &mut Wattmeter) -> TransitionMeasurement {
    let mut energy = 0.0;
    for t in 0..TIMEOUT_S {
        let (true_power, up) = machine.boot_observation(t as f64);
        if up {
            return TransitionMeasurement {
                duration_s: t as f64,
                energy_j: energy,
            };
        }
        energy += meter.sample(true_power);
    }
    TransitionMeasurement {
        duration_s: TIMEOUT_S as f64,
        energy_j: energy,
    }
}

/// Measure a switch-off: sample power each second until the meter reads
/// (near) zero.
pub fn measure_shutdown(
    machine: &SyntheticMachine,
    meter: &mut Wattmeter,
) -> TransitionMeasurement {
    let mut energy = 0.0;
    for t in 0..TIMEOUT_S {
        let true_power = machine.shutdown_observation(t as f64);
        if true_power <= 0.0 {
            return TransitionMeasurement {
                duration_s: t as f64,
                energy_j: energy,
            };
        }
        energy += meter.sample(true_power);
    }
    TransitionMeasurement {
        duration_s: TIMEOUT_S as f64,
        energy_j: energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_model::paper_machines;

    #[test]
    fn boot_measurement_recovers_table1() {
        for (machine, (dur, energy)) in paper_machines().iter().zip([
            (189.0f64, 21341.0f64),
            (164.0, 20628.0),
            (71.0, 4940.0),
            (12.0, 49.3),
            (16.0, 40.5),
        ]) {
            let mut meter = Wattmeter::new(1);
            let m = measure_boot(machine, &mut meter);
            assert_eq!(m.duration_s, dur, "{}", machine.name);
            let tolerance = (energy * 0.02).max(1.0);
            assert!(
                (m.energy_j - energy).abs() < tolerance,
                "{}: {} vs {energy}",
                machine.name,
                m.energy_j
            );
        }
    }

    #[test]
    fn shutdown_measurement_recovers_table1() {
        for (machine, (dur, energy)) in paper_machines().iter().zip([
            (10.0f64, 657.0f64),
            (11.0, 1173.0),
            (16.0, 760.0),
            (21.0, 77.6),
            (14.0, 36.2),
        ]) {
            let mut meter = Wattmeter::new(2);
            let m = measure_shutdown(machine, &mut meter);
            assert_eq!(m.duration_s, dur, "{}", machine.name);
            let tolerance = (energy * 0.02).max(1.0);
            assert!(
                (m.energy_j - energy).abs() < tolerance,
                "{}: {} vs {energy}",
                machine.name,
                m.energy_j
            );
        }
    }

    #[test]
    fn ideal_meter_exact_energies() {
        let m = paper_machines().remove(0);
        let mut meter = Wattmeter::ideal(0);
        let boot = measure_boot(&m, &mut meter);
        assert!((boot.energy_j - 21341.0).abs() < 1e-6);
        let down = measure_shutdown(&m, &mut meter);
        assert!((down.energy_j - 657.0).abs() < 1e-6);
    }
}
