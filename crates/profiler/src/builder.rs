//! Assembling measured data into [`ArchProfile`]s — the output of the
//! paper's Step 1, ready for Steps 2-5.

use bml_core::profile::ArchProfile;
use serde::{Deserialize, Serialize};

use crate::benchmark::{run_benchmark, BenchmarkConfig};
use crate::machine_model::SyntheticMachine;
use crate::onoff::{measure_boot, measure_shutdown};
use crate::wattmeter::Wattmeter;

/// Profiling campaign parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProfilerConfig {
    /// Benchmark protocol (paper defaults when `Default`).
    pub benchmark: BenchmarkConfig,
    /// Round `maxPerf` to an integer request rate, as Table I does.
    pub round_max_perf: bool,
}

impl ProfilerConfig {
    /// The paper's protocol with integer `maxPerf`.
    pub fn paper() -> Self {
        ProfilerConfig {
            benchmark: BenchmarkConfig::default(),
            round_max_perf: true,
        }
    }
}

/// Profile one machine: run the benchmark ramp, then measure the On/Off
/// transitions, and assemble the `ArchProfile`.
pub fn profile_machine(machine: &SyntheticMachine, cfg: &ProfilerConfig) -> ArchProfile {
    let bench = run_benchmark(machine, &cfg.benchmark);
    let mut meter = Wattmeter::new(cfg.benchmark.seed ^ 0x0FF);
    let boot = measure_boot(machine, &mut meter);
    let down = measure_shutdown(machine, &mut meter);
    let max_perf = if cfg.round_max_perf {
        bench.max_perf_rps.round().max(1.0)
    } else {
        bench.max_perf_rps
    };
    ArchProfile::new(
        machine.name.clone(),
        bench.idle_power_w.min(bench.max_power_w),
        bench.max_power_w.max(bench.idle_power_w),
        max_perf,
        boot.duration_s,
        boot.energy_j,
        down.duration_s,
        down.energy_j,
    )
    .expect("measured values form a valid profile")
}

/// Profile a whole machine park (Step 1 for every architecture).
pub fn profile_park(machines: &[SyntheticMachine], cfg: &ProfilerConfig) -> Vec<ArchProfile> {
    machines.iter().map(|m| profile_machine(m, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_model::paper_machines;
    use bml_core::bml::BmlInfrastructure;
    use bml_core::catalog;

    #[test]
    fn profiles_recover_table1_within_tolerance() {
        let measured = profile_park(&paper_machines(), &ProfilerConfig::paper());
        let reference = catalog::table1();
        for (m, r) in measured.iter().zip(&reference) {
            assert_eq!(m.name, r.name);
            let perf_err = (m.max_perf - r.max_perf).abs() / r.max_perf;
            assert!(
                perf_err < 0.02,
                "{}: maxPerf {} vs {}",
                m.name,
                m.max_perf,
                r.max_perf
            );
            assert!(
                (m.idle_power - r.idle_power).abs() / r.idle_power < 0.05,
                "{}: idle {} vs {}",
                m.name,
                m.idle_power,
                r.idle_power
            );
            assert!(
                (m.max_power - r.max_power).abs() / r.max_power < 0.05,
                "{}: max {} vs {}",
                m.name,
                m.max_power,
                r.max_power
            );
            assert_eq!(m.on_duration, r.on_duration, "{}", m.name);
            assert_eq!(m.off_duration, r.off_duration, "{}", m.name);
            assert!(
                (m.on_energy - r.on_energy).abs() / r.on_energy.max(1.0) < 0.05,
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn measured_profiles_rebuild_the_paper_infrastructure() {
        // End-to-end Step 1 -> Steps 2-4: profiling the synthetic park and
        // feeding the *measured* profiles into the BML builder reproduces
        // the paper's candidate set, and thresholds within measurement
        // tolerance.
        let measured = profile_park(&paper_machines(), &ProfilerConfig::paper());
        let bml = BmlInfrastructure::build(&measured).unwrap();
        let names: Vec<_> = bml.candidates().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["paravance", "chromebook", "raspberry"]);
        let t = bml.threshold_rates();
        assert_eq!(t[2], 1.0);
        assert!((t[1] - 10.0).abs() <= 1.0, "medium threshold {}", t[1]);
        // The Big/Medium crossing is shallow: the two power curves diverge
        // by ~0.12 W per req/s around 529 req/s, so a 1% wattmeter error
        // (~2 W on the Big's idle) legitimately moves the crossing by a
        // few percent. Accept a 5% band around the paper's 529.
        assert!(
            (t[0] - 529.0).abs() <= 529.0 * 0.05,
            "big threshold {}",
            t[0]
        );
    }

    #[test]
    fn unrounded_max_perf() {
        let m = &paper_machines()[4];
        let p = profile_machine(
            m,
            &ProfilerConfig {
                round_max_perf: false,
                ..ProfilerConfig::paper()
            },
        );
        assert!(p.max_perf.fract().abs() > 0.0 || p.max_perf == p.max_perf.round());
        assert!((p.max_perf - 9.0).abs() < 0.5);
    }

    #[test]
    fn profiling_is_deterministic() {
        let a = profile_park(&paper_machines(), &ProfilerConfig::paper());
        let b = profile_park(&paper_machines(), &ProfilerConfig::paper());
        assert_eq!(a, b);
    }
}
