//! The Siege-like closed-loop web benchmark (paper Sec. V-A).
//!
//! "We execute the benchmark with an increasing number of concurrent
//! clients in order to find the maximum request rate that can be
//! processed. Each test runs for 30 seconds and the maximum performance is
//! the average of 5 results." This module reproduces that protocol against
//! a [`SyntheticMachine`], measuring throughput with per-run sampling
//! noise and power through the [`Wattmeter`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::machine_model::SyntheticMachine;
use crate::wattmeter::Wattmeter;

/// Benchmark protocol parameters (defaults = the paper's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkConfig {
    /// Duration of one run (paper: 30 s).
    pub run_seconds: u64,
    /// Repetitions averaged per concurrency level (paper: 5).
    pub repetitions: u32,
    /// Maximum concurrency as a multiple of the hardware's core count.
    pub max_concurrency_factor: u32,
    /// Relative throughput measurement noise per run (std-dev).
    pub throughput_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            run_seconds: 30,
            repetitions: 5,
            max_concurrency_factor: 4,
            throughput_noise: 0.005,
            seed: 0xB113,
        }
    }
}

/// Result of one concurrency level: mean throughput and mean power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelResult {
    /// Concurrent clients offered.
    pub concurrency: u32,
    /// Mean requests/s over the repetitions.
    pub throughput_rps: f64,
    /// Mean power (W) over the repetitions while loaded.
    pub power_w: f64,
}

/// Full benchmark outcome: the per-level curve plus the derived maxima.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkResult {
    /// Measured throughput/power at each concurrency level.
    pub levels: Vec<LevelResult>,
    /// Maximum sustained request rate (the profile's `maxPerf`).
    pub max_perf_rps: f64,
    /// Mean power at the best level (the profile's `maxPower`).
    pub max_power_w: f64,
    /// Mean idle power measured before the ramp (the profile's
    /// `idlePower`).
    pub idle_power_w: f64,
}

/// One 30 s closed-loop run at fixed concurrency: returns (throughput,
/// mean measured power).
fn one_run(
    machine: &SyntheticMachine,
    concurrency: u32,
    cfg: &BenchmarkConfig,
    rng: &mut StdRng,
    meter: &mut Wattmeter,
) -> (f64, f64) {
    let true_tp = machine.throughput_rps(concurrency);
    // Per-run throughput jitter (network, scheduler, Siege's own sampling).
    let jitter: f64 = {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()).clamp(-3.0, 3.0)
    };
    let tp = (true_tp * (1.0 + jitter * cfg.throughput_noise)).max(0.0);
    let true_power = machine.power_at_rate(true_tp);
    let samples = meter.trace(cfg.run_seconds, |_| true_power);
    (tp, Wattmeter::mean(&samples))
}

/// Run the full paper protocol against one machine.
pub fn run_benchmark(machine: &SyntheticMachine, cfg: &BenchmarkConfig) -> BenchmarkResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut meter = Wattmeter::new(cfg.seed ^ 0x5EED);

    // Idle measurement first (machine on, no clients).
    let idle_samples = meter.trace(cfg.run_seconds, |_| machine.power_at_rate(0.0));
    let idle_power_w = Wattmeter::mean(&idle_samples);

    // Concurrency ramp: 1, 2, ..., up to factor x cores.
    let max_c = machine.cores * cfg.max_concurrency_factor;
    let mut levels = Vec::new();
    for c in 1..=max_c {
        let mut tps = Vec::with_capacity(cfg.repetitions as usize);
        let mut pws = Vec::with_capacity(cfg.repetitions as usize);
        for _ in 0..cfg.repetitions {
            let (tp, pw) = one_run(machine, c, cfg, &mut rng, &mut meter);
            tps.push(tp);
            pws.push(pw);
        }
        levels.push(LevelResult {
            concurrency: c,
            throughput_rps: tps.iter().sum::<f64>() / f64::from(cfg.repetitions),
            power_w: pws.iter().sum::<f64>() / f64::from(cfg.repetitions),
        });
    }
    let best = levels
        .iter()
        .copied()
        .max_by(|a, b| {
            a.throughput_rps
                .partial_cmp(&b.throughput_rps)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one level");
    BenchmarkResult {
        levels,
        max_perf_rps: best.throughput_rps,
        max_power_w: best.power_w,
        idle_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_model::paper_machines;

    #[test]
    fn benchmark_recovers_chromebook_profile() {
        let cb = paper_machines().remove(3);
        let r = run_benchmark(&cb, &BenchmarkConfig::default());
        assert!(
            (r.max_perf_rps - 33.0).abs() < 1.0,
            "maxPerf {}",
            r.max_perf_rps
        );
        assert!(
            (r.idle_power_w - 4.0).abs() < 0.2,
            "idle {}",
            r.idle_power_w
        );
        assert!((r.max_power_w - 7.6).abs() < 0.3, "max {}", r.max_power_w);
    }

    #[test]
    fn benchmark_recovers_paravance_profile() {
        let m = paper_machines().remove(0);
        let r = run_benchmark(&m, &BenchmarkConfig::default());
        assert!(
            (r.max_perf_rps - 1331.0).abs() < 15.0,
            "maxPerf {}",
            r.max_perf_rps
        );
        assert!((r.idle_power_w - 69.9).abs() < 1.0);
        assert!((r.max_power_w - 200.5).abs() < 2.5);
    }

    #[test]
    fn ramp_covers_saturation() {
        let m = paper_machines().remove(4); // raspberry, 4 cores
        let r = run_benchmark(&m, &BenchmarkConfig::default());
        assert_eq!(r.levels.len(), 16); // 4 cores x factor 4
                                        // Throughput grows then flattens.
        assert!(r.levels[0].throughput_rps < r.levels[3].throughput_rps);
        let last = r.levels.last().unwrap();
        assert!(last.throughput_rps <= r.max_perf_rps + 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = paper_machines().remove(3);
        let a = run_benchmark(&m, &BenchmarkConfig::default());
        let b = run_benchmark(&m, &BenchmarkConfig::default());
        assert_eq!(a, b);
        let c = run_benchmark(
            &m,
            &BenchmarkConfig {
                seed: 7,
                ..Default::default()
            },
        );
        assert_ne!(a.max_perf_rps, c.max_perf_rps);
    }

    #[test]
    fn power_increases_with_load() {
        let m = paper_machines().remove(0);
        let r = run_benchmark(&m, &BenchmarkConfig::default());
        assert!(r.idle_power_w < r.levels[7].power_w);
        assert!(r.levels[1].power_w < r.levels[15].power_w);
    }
}
