//! The wattmeter model: 1 Hz power sampling with measurement noise.
//!
//! The paper measures the ARM boards with a WattsUp?Pro and the Grid'5000
//! servers through the Kwapi monitoring pipeline (Sec. V-A). Both sample
//! around 1 Hz with a small relative error; we model a configurable
//! relative gaussian noise (default 1%) plus quantization to 0.1 W, the
//! WattsUp?Pro display resolution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampling wattmeter.
#[derive(Debug, Clone)]
pub struct Wattmeter {
    rng: StdRng,
    /// Relative gaussian noise std-dev (e.g. 0.01 = 1%).
    pub noise: f64,
    /// Quantization step in Watts (0 disables quantization).
    pub resolution_w: f64,
}

impl Wattmeter {
    /// Meter with the default 1% noise and 0.1 W resolution.
    pub fn new(seed: u64) -> Self {
        Wattmeter {
            rng: StdRng::seed_from_u64(seed),
            noise: 0.01,
            resolution_w: 0.1,
        }
    }

    /// Noise-free, full-resolution meter (for calibration tests).
    pub fn ideal(seed: u64) -> Self {
        Wattmeter {
            rng: StdRng::seed_from_u64(seed),
            noise: 0.0,
            resolution_w: 0.0,
        }
    }

    /// One truncated gaussian (Box-Muller, clamped to 3 sigma).
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()).clamp(-3.0, 3.0)
    }

    /// Sample a single instantaneous power value (W).
    pub fn sample(&mut self, true_power_w: f64) -> f64 {
        let noisy = true_power_w * (1.0 + self.gaussian() * self.noise);
        let clamped = noisy.max(0.0);
        if self.resolution_w > 0.0 {
            (clamped / self.resolution_w).round() * self.resolution_w
        } else {
            clamped
        }
    }

    /// Sample a power trace at 1 Hz for `seconds`, where `truth(t)` gives
    /// the true power at second `t`.
    pub fn trace(&mut self, seconds: u64, truth: impl Fn(f64) -> f64) -> Vec<f64> {
        (0..seconds).map(|t| self.sample(truth(t as f64))).collect()
    }

    /// Mean of a measured trace (W).
    pub fn mean(samples: &[f64]) -> f64 {
        if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_meter_is_exact_up_to_resolution() {
        let mut m = Wattmeter::ideal(1);
        assert_eq!(m.sample(123.456), 123.456);
    }

    #[test]
    fn quantization_applies() {
        let mut m = Wattmeter::new(1);
        m.noise = 0.0;
        assert!((m.sample(123.456) - 123.5).abs() < 1e-9);
        assert!((m.sample(3.16) - 3.2).abs() < 1e-9);
    }

    #[test]
    fn noise_is_small_and_unbiased() {
        let mut m = Wattmeter::new(42);
        let samples = m.trace(20_000, |_| 100.0);
        let mean = Wattmeter::mean(&samples);
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        for &s in &samples {
            assert!(
                (95.0..=105.0).contains(&s),
                "sample {s} outside 3 sigma + quantum"
            );
        }
    }

    #[test]
    fn zero_power_reads_zero() {
        let mut m = Wattmeter::new(3);
        assert_eq!(m.sample(0.0), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Wattmeter::new(9);
        let mut b = Wattmeter::new(9);
        assert_eq!(a.trace(100, |_| 50.0), b.trace(100, |_| 50.0));
    }

    #[test]
    fn trace_length_and_time_argument() {
        let mut m = Wattmeter::ideal(0);
        let tr = m.trace(5, |t| t * 10.0);
        assert_eq!(tr, vec![0.0, 10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Wattmeter::mean(&[]), 0.0);
    }
}
