//! # bml-profiler — the Step-1 profiling harness
//!
//! Substrate crate of the BML reproduction replacing the paper's physical
//! testbed (Grid'5000 servers + ARM boards + WattsUp?Pro + Siege):
//!
//! * [`machine_model`] — synthetic machines with *hidden* ground truth
//!   (per-core throughput, slightly non-linear power curve, boot/shutdown
//!   ramps), parameterized so ideal measurements recover paper Table I;
//! * [`wattmeter`] — 1 Hz power sampling with relative gaussian noise and
//!   0.1 W quantization;
//! * [`benchmark`] — the Siege protocol: concurrency ramp, 30 s runs,
//!   5 repetitions averaged;
//! * [`onoff`] — switch-on/off duration and energy measurement;
//! * [`builder`] — assembling measurements into
//!   [`bml_core::profile::ArchProfile`]s.
//!
//! The harness only sees what the paper's authors saw: offered load in,
//! observed throughput and sampled power out. Tests verify the pipeline
//! recovers Table I within measurement tolerance and that the *measured*
//! profiles rebuild the paper's BML infrastructure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod benchmark;
pub mod builder;
pub mod machine_model;
pub mod onoff;
pub mod wattmeter;

pub use benchmark::{run_benchmark, BenchmarkConfig, BenchmarkResult};
pub use builder::{profile_machine, profile_park, ProfilerConfig};
pub use machine_model::{paper_machines, SyntheticMachine};
pub use onoff::{measure_boot, measure_shutdown, TransitionMeasurement};
pub use wattmeter::Wattmeter;
