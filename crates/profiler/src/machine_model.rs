//! Synthetic physical machines with hidden ground truth.
//!
//! The paper profiles five real machines (Grid'5000 servers, a Chromebook
//! and a Raspberry Pi) by running a web benchmark against them while a
//! wattmeter samples power (Sec. V-A). We cannot ship that hardware, so
//! this module provides machine *models* with hidden true parameters —
//! per-core work throughput, a slightly non-linear power curve (per
//! Rivoire et al., the paper's own caveat about linear models), and boot/
//! shutdown ramps. The profiling harness only interacts with them the way
//! Siege + WattsUp?Pro would: offered concurrency in, observed throughput
//! and sampled power out.

use serde::{Deserialize, Serialize};

use bml_app::request::MEAN_WORK_UNITS;

/// Ground-truth description of one physical machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticMachine {
    /// Codename, e.g. `"paravance"`.
    pub name: String,
    /// Number of CPU cores.
    pub cores: u32,
    /// Work units one core retires per second.
    pub units_per_core_s: f64,
    /// True idle power (W).
    pub idle_w: f64,
    /// True power at full utilization (W).
    pub peak_w: f64,
    /// Power-curve shape: fraction of the dynamic range that scales
    /// linearly with utilization; the remainder scales with `util^2`
    /// (0.0 = fully quadratic, 1.0 = perfectly linear).
    pub linearity: f64,
    /// True boot duration (s).
    pub boot_s: f64,
    /// Mean power drawn while booting (W).
    pub boot_power_w: f64,
    /// True shutdown duration (s).
    pub shutdown_s: f64,
    /// Mean power drawn while shutting down (W).
    pub shutdown_power_w: f64,
}

impl SyntheticMachine {
    /// True request capacity (req/s) under the paper's 1500-unit mean
    /// request: `cores * units_per_core / mean_units`.
    pub fn true_capacity_rps(&self) -> f64 {
        f64::from(self.cores) * self.units_per_core_s / MEAN_WORK_UNITS
    }

    /// Throughput (req/s) sustained under a closed-loop benchmark with
    /// `concurrency` clients and zero think time.
    ///
    /// CPU-bound service: with fewer clients than cores each client keeps
    /// one core busy; beyond that the machine saturates at its capacity,
    /// with a mild contention penalty that grows with oversubscription
    /// (scheduler overhead), just like a real small box under Siege.
    pub fn throughput_rps(&self, concurrency: u32) -> f64 {
        if concurrency == 0 {
            return 0.0;
        }
        let per_client = self.units_per_core_s / MEAN_WORK_UNITS;
        let unsaturated = f64::from(concurrency) * per_client;
        let capacity = self.true_capacity_rps();
        if unsaturated <= capacity {
            unsaturated
        } else {
            // 0.5% throughput loss per 100% oversubscription, capped at 5%.
            let over = f64::from(concurrency) / f64::from(self.cores) - 1.0;
            let penalty = (0.005 * over).min(0.05);
            capacity * (1.0 - penalty)
        }
    }

    /// True power (W) at a given utilization in `[0, 1]`: idle plus a
    /// mostly-linear, slightly convex dynamic part.
    pub fn power_at_utilization(&self, util: f64) -> f64 {
        let u = util.clamp(0.0, 1.0);
        let dynamic = self.linearity * u + (1.0 - self.linearity) * u * u;
        self.idle_w + (self.peak_w - self.idle_w) * dynamic
    }

    /// True power (W) while serving `rate` req/s.
    pub fn power_at_rate(&self, rate: f64) -> f64 {
        let cap = self.true_capacity_rps();
        self.power_at_utilization(if cap > 0.0 { rate / cap } else { 0.0 })
    }

    /// True boot energy (J).
    pub fn boot_energy_j(&self) -> f64 {
        self.boot_s * self.boot_power_w
    }

    /// True shutdown energy (J).
    pub fn shutdown_energy_j(&self) -> f64 {
        self.shutdown_s * self.shutdown_power_w
    }

    /// Power (W) observed `t` seconds after a switch-on request, and
    /// whether the machine answers pings yet.
    pub fn boot_observation(&self, t: f64) -> (f64, bool) {
        if t < self.boot_s {
            (self.boot_power_w, false)
        } else {
            (self.idle_w, true)
        }
    }

    /// Power (W) observed `t` seconds after a shutdown request (0 once
    /// off).
    pub fn shutdown_observation(&self, t: f64) -> f64 {
        if t < self.shutdown_s {
            self.shutdown_power_w
        } else {
            0.0
        }
    }
}

/// Ground-truth models matching the five machines of paper Table I: the
/// hidden parameters are chosen so an ideal measurement recovers the
/// published numbers.
pub fn paper_machines() -> Vec<SyntheticMachine> {
    vec![
        SyntheticMachine {
            name: "paravance".into(),
            cores: 16,
            units_per_core_s: 1331.0 * MEAN_WORK_UNITS / 16.0,
            idle_w: 69.9,
            peak_w: 200.5,
            linearity: 0.92,
            boot_s: 189.0,
            boot_power_w: 21341.0 / 189.0,
            shutdown_s: 10.0,
            shutdown_power_w: 65.7,
        },
        SyntheticMachine {
            name: "taurus".into(),
            cores: 12,
            units_per_core_s: 860.0 * MEAN_WORK_UNITS / 12.0,
            idle_w: 95.8,
            peak_w: 223.7,
            linearity: 0.92,
            boot_s: 164.0,
            boot_power_w: 20628.0 / 164.0,
            shutdown_s: 11.0,
            shutdown_power_w: 1173.0 / 11.0,
        },
        SyntheticMachine {
            name: "graphene".into(),
            cores: 4,
            units_per_core_s: 272.0 * MEAN_WORK_UNITS / 4.0,
            idle_w: 47.7,
            peak_w: 123.8,
            linearity: 0.9,
            boot_s: 71.0,
            boot_power_w: 4940.0 / 71.0,
            shutdown_s: 16.0,
            shutdown_power_w: 47.5,
        },
        SyntheticMachine {
            name: "chromebook".into(),
            cores: 2,
            units_per_core_s: 33.0 * MEAN_WORK_UNITS / 2.0,
            idle_w: 4.0,
            peak_w: 7.6,
            linearity: 0.95,
            boot_s: 12.0,
            boot_power_w: 49.3 / 12.0,
            shutdown_s: 21.0,
            shutdown_power_w: 77.6 / 21.0,
        },
        SyntheticMachine {
            name: "raspberry".into(),
            cores: 4,
            units_per_core_s: 9.0 * MEAN_WORK_UNITS / 4.0,
            idle_w: 3.1,
            peak_w: 3.7,
            linearity: 0.97,
            boot_s: 16.0,
            boot_power_w: 40.5 / 16.0,
            shutdown_s: 14.0,
            shutdown_power_w: 36.2 / 14.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paravance() -> SyntheticMachine {
        paper_machines().remove(0)
    }

    #[test]
    fn true_capacity_matches_table1() {
        for (m, expect) in paper_machines()
            .iter()
            .zip([1331.0, 860.0, 272.0, 33.0, 9.0])
        {
            assert!(
                (m.true_capacity_rps() - expect).abs() < 1e-9,
                "{}: {}",
                m.name,
                m.true_capacity_rps()
            );
        }
    }

    #[test]
    fn throughput_scales_until_cores_saturate() {
        let m = paravance();
        let per_client = m.units_per_core_s / MEAN_WORK_UNITS;
        assert!((m.throughput_rps(1) - per_client).abs() < 1e-9);
        assert!((m.throughput_rps(8) - 8.0 * per_client).abs() < 1e-9);
        // At the core count the machine reaches its capacity...
        assert!((m.throughput_rps(16) - 1331.0).abs() < 1e-9);
        // ...and oversubscription degrades slightly, never improves.
        assert!(m.throughput_rps(32) < 1331.0);
        assert!(m.throughput_rps(32) > 1331.0 * 0.94);
        assert_eq!(m.throughput_rps(0), 0.0);
    }

    #[test]
    fn power_curve_endpoints_and_convexity() {
        let m = paravance();
        assert!((m.power_at_utilization(0.0) - 69.9).abs() < 1e-12);
        assert!((m.power_at_utilization(1.0) - 200.5).abs() < 1e-12);
        // Convex: mid-utilization power below the straight line.
        let mid = m.power_at_utilization(0.5);
        let line = (69.9 + 200.5) / 2.0;
        assert!(mid < line);
        assert!(mid > 69.9);
        // Clamping.
        assert_eq!(m.power_at_utilization(2.0), 200.5);
        assert_eq!(m.power_at_utilization(-1.0), 69.9);
    }

    #[test]
    fn transition_energies_match_table1() {
        let m = paravance();
        assert!((m.boot_energy_j() - 21341.0).abs() < 1e-9);
        assert!((m.shutdown_energy_j() - 657.0).abs() < 1e-9);
    }

    #[test]
    fn boot_observation_timeline() {
        let m = paravance();
        let (w, up) = m.boot_observation(0.0);
        assert!(!up);
        assert!((w - 21341.0 / 189.0).abs() < 1e-9);
        let (w, up) = m.boot_observation(189.0);
        assert!(up);
        assert_eq!(w, 69.9);
    }

    #[test]
    fn shutdown_observation_timeline() {
        let m = paravance();
        assert!(m.shutdown_observation(5.0) > 0.0);
        assert_eq!(m.shutdown_observation(10.0), 0.0);
    }

    #[test]
    fn all_five_machines_present() {
        let names: Vec<String> = paper_machines().into_iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec!["paravance", "taurus", "graphene", "chromebook", "raspberry"]
        );
    }
}
