//! # bml-metrics — energy-proportionality metrics and reporting
//!
//! Substrate crate of the BML reproduction: the IPR/LDR metrics the
//! paper's related work builds on ([`proportionality`]), energy
//! integration and per-day accounting matching Fig. 5's reporting
//! ([`energy`]), and table/markdown/CSV emitters used by the experiment
//! binaries ([`report`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod energy;
pub mod proportionality;
pub mod report;

pub use energy::{
    daily_energy, integrate_power, joules_to_kwh, overhead_percent, overhead_stats, EnergyMeter,
    OverheadStats,
};
pub use proportionality::{
    infrastructure_proportionality, ipr, ldr, profile_ipr, proportionality_index,
};
pub use report::{fmt_energy, fmt_percent, fmt_watts, markdown_table, ExperimentRecord, Table};
