//! Energy accounting: integrating per-second power samples into energies,
//! per-day aggregation (the Fig. 5 unit) and unit conversions.

use serde::{Deserialize, Serialize};

/// Seconds per day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// Joules per kilowatt-hour.
pub const JOULES_PER_KWH: f64 = 3_600_000.0;

/// Convert Joules to kWh.
pub fn joules_to_kwh(j: f64) -> f64 {
    j / JOULES_PER_KWH
}

/// Convert kWh to Joules.
pub fn kwh_to_joules(kwh: f64) -> f64 {
    kwh * JOULES_PER_KWH
}

/// Integrate per-second power samples (W) into energy (J). Each sample
/// holds for one second — the paper's simulation granularity — so the
/// integral is a plain sum.
pub fn integrate_power(samples_w: &[f64]) -> f64 {
    samples_w.iter().sum()
}

/// Per-day energies (J) from per-second power samples; the final partial
/// day (if any) is included.
pub fn daily_energy(samples_w: &[f64]) -> Vec<f64> {
    samples_w
        .chunks(SECONDS_PER_DAY as usize)
        .map(|day| day.iter().sum())
        .collect()
}

/// Running energy meter: feed it power samples, read total/interval
/// energies. This is the simulator-facing equivalent of the paper's
/// wattmeter + Kwapi pipeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    total_j: f64,
    samples: u64,
    /// Optional per-day accumulation.
    daily_j: Vec<f64>,
}

impl EnergyMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Record one second at `power_w` Watts.
    pub fn record(&mut self, power_w: f64) {
        self.accumulate_span(power_w, 1);
    }

    /// Record `secs` consecutive seconds at a constant `power_w` Watts in
    /// O(days touched) instead of O(secs): the batched-accumulation API
    /// of the event-driven replay engine, where a flat stretch costs one
    /// update instead of one per second. Spans crossing day boundaries
    /// are split so per-day energies stay exact.
    pub fn accumulate_span(&mut self, power_w: f64, secs: u64) {
        debug_assert!(power_w >= 0.0, "power cannot be negative");
        let mut remaining = secs;
        while remaining > 0 {
            let day = (self.samples / SECONDS_PER_DAY) as usize;
            let left_in_day = SECONDS_PER_DAY - self.samples % SECONDS_PER_DAY;
            let chunk = remaining.min(left_in_day);
            let energy = power_w * chunk as f64;
            if self.daily_j.len() <= day {
                self.daily_j.resize(day + 1, 0.0);
            }
            self.daily_j[day] += energy;
            self.total_j += energy;
            self.samples += chunk;
            remaining -= chunk;
        }
    }

    /// Add a lump of energy (J) — e.g. a reconfiguration overhead — to the
    /// current day without advancing time.
    pub fn add_energy(&mut self, joules: f64) {
        debug_assert!(joules >= 0.0);
        self.total_j += joules;
        let day = (self.samples.saturating_sub(1) / SECONDS_PER_DAY) as usize;
        if self.daily_j.len() <= day {
            self.daily_j.resize(day + 1, 0.0);
        }
        self.daily_j[day] += joules;
    }

    /// Total energy recorded (J).
    pub fn total_joules(&self) -> f64 {
        self.total_j
    }

    /// Total energy in kWh.
    pub fn total_kwh(&self) -> f64 {
        joules_to_kwh(self.total_j)
    }

    /// Per-day energies (J).
    pub fn daily_joules(&self) -> &[f64] {
        &self.daily_j
    }

    /// Consume the meter and take the per-day energies without copying —
    /// for result structs that outlive the meter (read totals first).
    pub fn into_daily_joules(self) -> Vec<f64> {
        self.daily_j
    }

    /// Seconds recorded.
    pub fn seconds(&self) -> u64 {
        self.samples
    }

    /// Mean power over the recorded interval (W); 0 if nothing recorded.
    pub fn mean_power(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_j / self.samples as f64
        }
    }
}

/// Relative overhead of `measured` vs `reference` in percent:
/// `100 * (measured - reference) / reference`. This is how the paper
/// reports BML against the theoretical lower bound ("it consumes 32% more
/// energy than the lower bound").
pub fn overhead_percent(measured: f64, reference: f64) -> f64 {
    assert!(reference > 0.0, "reference must be positive");
    100.0 * (measured - reference) / reference
}

/// Summary statistics of a per-day overhead series (the paper quotes
/// average / minimum / maximum over the 86 days).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadStats {
    /// Mean overhead (%).
    pub mean: f64,
    /// Minimum overhead (%).
    pub min: f64,
    /// Maximum overhead (%).
    pub max: f64,
}

/// Per-day overhead statistics of `measured` vs `reference` (both J/day).
///
/// Days whose reference energy is zero (e.g. a day with no load at all,
/// where the lower bound powers nothing) carry no meaningful relative
/// overhead and are skipped; if *every* day is like that, all statistics
/// are zero.
pub fn overhead_stats(measured: &[f64], reference: &[f64]) -> OverheadStats {
    assert_eq!(measured.len(), reference.len());
    let overheads: Vec<f64> = measured
        .iter()
        .zip(reference)
        .filter(|&(_, &r)| r > 0.0)
        .map(|(&m, &r)| overhead_percent(m, r))
        .collect();
    if overheads.is_empty() {
        return OverheadStats {
            mean: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    OverheadStats {
        mean: overheads.iter().sum::<f64>() / overheads.len() as f64,
        min: overheads.iter().copied().fold(f64::INFINITY, f64::min),
        max: overheads.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integration_is_sum() {
        assert_eq!(integrate_power(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(integrate_power(&[]), 0.0);
    }

    #[test]
    fn daily_split() {
        let mut samples = vec![1.0; SECONDS_PER_DAY as usize];
        samples.extend(vec![2.0; 100]);
        let days = daily_energy(&samples);
        assert_eq!(days.len(), 2);
        assert_eq!(days[0], SECONDS_PER_DAY as f64);
        assert_eq!(days[1], 200.0);
    }

    #[test]
    fn meter_accumulates() {
        let mut m = EnergyMeter::new();
        for _ in 0..10 {
            m.record(5.0);
        }
        assert_eq!(m.total_joules(), 50.0);
        assert_eq!(m.seconds(), 10);
        assert_eq!(m.mean_power(), 5.0);
        assert_eq!(m.daily_joules(), &[50.0]);
    }

    #[test]
    fn meter_day_boundaries() {
        let mut m = EnergyMeter::new();
        for _ in 0..SECONDS_PER_DAY + 10 {
            m.record(1.0);
        }
        assert_eq!(m.daily_joules().len(), 2);
        assert_eq!(m.daily_joules()[0], SECONDS_PER_DAY as f64);
        assert_eq!(m.daily_joules()[1], 10.0);
    }

    #[test]
    fn span_accumulation_splits_day_boundaries() {
        // A span straddling two day boundaries lands in three day bins.
        let mut m = EnergyMeter::new();
        m.accumulate_span(2.0, SECONDS_PER_DAY / 2); // half of day 0
        m.accumulate_span(1.0, 2 * SECONDS_PER_DAY); // rest of day 0, day 1, half of day 2
        assert_eq!(m.daily_joules().len(), 3);
        assert_eq!(
            m.daily_joules()[0],
            SECONDS_PER_DAY as f64 / 2.0 * 2.0 + SECONDS_PER_DAY as f64 / 2.0
        );
        assert_eq!(m.daily_joules()[1], SECONDS_PER_DAY as f64);
        assert_eq!(m.daily_joules()[2], SECONDS_PER_DAY as f64 / 2.0);
        assert_eq!(m.seconds(), SECONDS_PER_DAY / 2 + 2 * SECONDS_PER_DAY);
        let daily: f64 = m.daily_joules().iter().sum();
        assert!((daily - m.total_joules()).abs() < 1e-9);
    }

    #[test]
    fn span_of_one_is_record() {
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        for w in [3.25, 0.0, 7.5] {
            a.record(w);
            b.accumulate_span(w, 1);
        }
        assert_eq!(a, b);
        // Zero-length spans are no-ops.
        b.accumulate_span(100.0, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn into_daily_joules_moves_the_bins() {
        let mut m = EnergyMeter::new();
        m.record(4.0);
        m.record(6.0);
        assert_eq!(m.into_daily_joules(), vec![10.0]);
    }

    #[test]
    fn meter_lump_energy_lands_on_current_day() {
        let mut m = EnergyMeter::new();
        m.record(1.0);
        m.add_energy(100.0);
        assert_eq!(m.total_joules(), 101.0);
        assert_eq!(m.daily_joules(), &[101.0]);
        assert_eq!(m.seconds(), 1);
    }

    #[test]
    fn meter_empty() {
        let m = EnergyMeter::new();
        assert_eq!(m.mean_power(), 0.0);
        assert_eq!(m.total_kwh(), 0.0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(joules_to_kwh(3_600_000.0), 1.0);
        assert_eq!(kwh_to_joules(2.0), 7_200_000.0);
        assert!((kwh_to_joules(joules_to_kwh(1234.5)) - 1234.5).abs() < 1e-9);
    }

    #[test]
    fn overhead_percent_matches_paper_convention() {
        // 132 J vs 100 J reference = +32%.
        assert!((overhead_percent(132.0, 100.0) - 32.0).abs() < 1e-12);
        assert!((overhead_percent(100.0, 100.0)).abs() < 1e-12);
        assert!(overhead_percent(90.0, 100.0) < 0.0);
    }

    #[test]
    fn overhead_stats_mean_min_max() {
        let s = overhead_stats(&[110.0, 150.0, 120.0], &[100.0, 100.0, 100.0]);
        assert!((s.mean - (10.0 + 50.0 + 20.0) / 3.0).abs() < 1e-9);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 50.0);
    }

    #[test]
    fn overhead_stats_skips_zero_reference_days() {
        let s = overhead_stats(&[110.0, 5.0, 120.0], &[100.0, 0.0, 100.0]);
        assert!((s.mean - 15.0).abs() < 1e-9);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 20.0);
        // All-zero reference: no meaningful overhead.
        let s = overhead_stats(&[1.0], &[0.0]);
        assert_eq!(
            s,
            OverheadStats {
                mean: 0.0,
                min: 0.0,
                max: 0.0
            }
        );
    }

    #[test]
    #[should_panic(expected = "reference")]
    fn overhead_rejects_zero_reference() {
        let _ = overhead_percent(1.0, 0.0);
    }
}
