//! Energy-proportionality metrics.
//!
//! The paper's related-work section (Sec. II) leans on Varsamopoulos et
//! al.'s two metrics: **IPR** (Ideal-to-Peak Ratio), which "measures the
//! dynamic power range", and **LDR** (Linear Deviation Ratio), which
//! evaluates "the linearity of the consumption". We implement both, plus
//! a Barroso-style proportionality index that scores an arbitrary
//! power-vs-utilization curve against the ideal proportional line.

use bml_core::profile::ArchProfile;

/// Ideal-to-Peak Ratio: the fraction of peak power that is dynamic,
/// `(P_peak - P_idle) / P_peak` in `[0, 1]`.
///
/// 1 means perfectly energy proportional hardware (zero idle power);
/// 0 means power is constant regardless of load.
pub fn ipr(idle_power: f64, peak_power: f64) -> f64 {
    assert!(peak_power > 0.0, "peak power must be positive");
    assert!(
        (0.0..=peak_power).contains(&idle_power),
        "idle must be within [0, peak]"
    );
    (peak_power - idle_power) / peak_power
}

/// IPR of an architecture profile.
pub fn profile_ipr(p: &ArchProfile) -> f64 {
    ipr(p.idle_power, p.max_power)
}

/// Linear Deviation Ratio: the largest relative deviation of the measured
/// power curve from the straight line joining its idle and peak points.
///
/// `curve(u)` is sampled at `samples + 1` utilization points `u` in
/// `[0, 1]` and must return Watts. The result keeps the sign of the
/// largest-magnitude deviation: positive = the curve bulges *above* the
/// line (worse than linear), negative = below (better than linear, i.e.
/// sub-linear consumption). 0 = perfectly linear.
pub fn ldr(curve: impl Fn(f64) -> f64, samples: usize) -> f64 {
    assert!(samples >= 2, "need at least two samples");
    let idle = curve(0.0);
    let peak = curve(1.0);
    let mut worst = 0.0f64;
    for i in 0..=samples {
        let u = i as f64 / samples as f64;
        let line = idle + (peak - idle) * u;
        if line.abs() < 1e-12 {
            continue;
        }
        let dev = (curve(u) - line) / line;
        if dev.abs() > worst.abs() {
            worst = dev;
        }
    }
    worst
}

/// Barroso-style energy-proportionality index in `(-inf, 1]`:
/// `1 - 2 * mean(|p(u) - u|)` where `p(u) = curve(u) / curve(1)` is the
/// normalized power at utilization `u`.
///
/// 1 = ideal proportionality (`P(u) = u * P_peak`); a typical
/// 50%-idle-power server scores about 0.5; constant power scores 0.
pub fn proportionality_index(curve: impl Fn(f64) -> f64, samples: usize) -> f64 {
    assert!(samples >= 2, "need at least two samples");
    let peak = curve(1.0);
    assert!(peak > 0.0, "peak power must be positive");
    let mean_dev = (0..=samples)
        .map(|i| {
            let u = i as f64 / samples as f64;
            (curve(u) / peak - u).abs()
        })
        .sum::<f64>()
        / (samples + 1) as f64;
    1.0 - 2.0 * mean_dev
}

/// Proportionality index of a whole infrastructure's power-vs-rate curve:
/// `power_at` maps a performance rate to Watts; the curve is normalized by
/// `power_at(max_rate)`.
pub fn infrastructure_proportionality(
    power_at: impl Fn(f64) -> f64,
    max_rate: f64,
    samples: usize,
) -> f64 {
    proportionality_index(|u| power_at(u * max_rate), samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::catalog;

    #[test]
    fn ipr_of_paper_machines() {
        // Paravance: idle 69.9, peak 200.5 -> IPR ~ 0.651.
        let v = profile_ipr(&catalog::paravance());
        assert!((v - (200.5 - 69.9) / 200.5).abs() < 1e-12);
        // Raspberry: tiny dynamic range -> poor IPR ~ 0.162.
        let v = profile_ipr(&catalog::raspberry());
        assert!(v < 0.2);
        // An ideal machine with zero idle power.
        assert_eq!(ipr(0.0, 100.0), 1.0);
        // Constant power.
        assert_eq!(ipr(100.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "peak")]
    fn ipr_rejects_zero_peak() {
        let _ = ipr(0.0, 0.0);
    }

    #[test]
    fn ldr_zero_for_linear_curve() {
        let v = ldr(|u| 50.0 + 100.0 * u, 100);
        assert!(v.abs() < 1e-12);
    }

    #[test]
    fn ldr_positive_for_superlinear_bulge() {
        // Curve above the idle-peak line in the middle.
        let v = ldr(
            |u| 50.0 + 100.0 * u + 20.0 * (std::f64::consts::PI * u).sin(),
            200,
        );
        assert!(v > 0.05, "ldr {v}");
    }

    #[test]
    fn ldr_negative_for_sublinear_curve() {
        let v = ldr(
            |u| 50.0 + 100.0 * u - 20.0 * (std::f64::consts::PI * u).sin(),
            200,
        );
        assert!(v < -0.05, "ldr {v}");
    }

    #[test]
    fn proportionality_index_ideal_is_one() {
        let v = proportionality_index(|u| 100.0 * u, 100);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn proportionality_index_constant_power_is_zero_ish() {
        // |1 - u| averaged over [0,1] is 0.5 -> index ~ 0.
        let v = proportionality_index(|_| 100.0, 1000);
        assert!(v.abs() < 0.01, "index {v}");
    }

    #[test]
    fn proportionality_index_typical_server() {
        // Linear from 50% idle: |0.5(1-u)| averages 0.25 -> index ~ 0.5.
        let v = proportionality_index(|u| 50.0 + 50.0 * u, 1000);
        assert!((v - 0.5).abs() < 0.01, "index {v}");
    }

    #[test]
    fn bml_combination_more_proportional_than_big_alone() {
        // The headline claim, quantified: the BML curve scores much closer
        // to 1 than a single Big server's linear-from-35%-idle curve.
        let bml = bml_core::bml::BmlInfrastructure::build(&catalog::table1()).unwrap();
        let big = catalog::paravance();
        let max_rate = big.max_perf;
        let bml_score = infrastructure_proportionality(|r| bml.power_at(r), max_rate, 500);
        let big_score = infrastructure_proportionality(|r| big.power_at(r), max_rate, 500);
        // BML is markedly more proportional, though not perfect: at low
        // rates it pays the Chromebook's ~0.23 W per req/s against the
        // normalization line's 0.15, so the index tops out below 1.
        assert!(
            bml_score > big_score + 0.1,
            "bml {bml_score} vs big {big_score}"
        );
        assert!(bml_score > 0.75, "bml {bml_score}");
    }
}
