//! Report emitters: aligned text tables, CSV, and paper-vs-measured
//! experiment records used by the per-figure binaries and EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table (monospace output for terminals and
/// markdown code blocks).
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with space-padded, column-aligned cells.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// One paper-vs-measured record, the unit of EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"fig5"` or `"table1"`.
    pub id: String,
    /// What is being compared, e.g. `"BML mean overhead vs lower bound"`.
    pub quantity: String,
    /// The value the paper reports (as printed in the paper).
    pub paper: String,
    /// The value this reproduction measures.
    pub measured: String,
    /// Whether the reproduction preserves the paper's qualitative claim.
    pub holds: bool,
}

impl ExperimentRecord {
    /// Convenience constructor.
    pub fn new(
        id: &str,
        quantity: &str,
        paper: impl ToString,
        measured: impl ToString,
        holds: bool,
    ) -> Self {
        ExperimentRecord {
            id: id.into(),
            quantity: quantity.into(),
            paper: paper.to_string(),
            measured: measured.to_string(),
            holds,
        }
    }

    /// Markdown table row (`| id | quantity | paper | measured | ok |`).
    pub fn markdown_row(&self) -> String {
        format!(
            "| {} | {} | {} | {} | {} |",
            self.id,
            self.quantity,
            self.paper,
            self.measured,
            if self.holds { "yes" } else { "NO" }
        )
    }
}

/// Render a full markdown table of records.
pub fn markdown_table(records: &[ExperimentRecord]) -> String {
    let mut out = String::from(
        "| experiment | quantity | paper | measured | holds |\n|---|---|---|---|---|\n",
    );
    for r in records {
        out.push_str(&r.markdown_row());
        out.push('\n');
    }
    out
}

/// Format Watts with two decimals (e.g. `"200.50 W"`).
pub fn fmt_watts(w: f64) -> String {
    format!("{w:.2} W")
}

/// Format Joules adaptively (J / kJ / MJ / kWh for large values).
pub fn fmt_energy(j: f64) -> String {
    if j.abs() >= 3_600_000.0 {
        format!("{:.2} kWh", j / 3_600_000.0)
    } else if j.abs() >= 1_000_000.0 {
        format!("{:.2} MJ", j / 1_000_000.0)
    } else if j.abs() >= 1_000.0 {
        format!("{:.2} kJ", j / 1_000.0)
    } else {
        format!("{j:.1} J")
    }
}

/// Format a percentage with one decimal.
pub fn fmt_percent(p: f64) -> String {
    format!("{p:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns aligned: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 2], "22");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn table_csv() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn experiment_record_markdown() {
        let r = ExperimentRecord::new("fig5", "mean overhead", "+32%", "+29.4%", true);
        let row = r.markdown_row();
        assert!(row.contains("| fig5 |"));
        assert!(row.contains("| yes |"));
        let r2 = ExperimentRecord::new("x", "q", 1, 2, false);
        assert!(r2.markdown_row().contains("| NO |"));
    }

    #[test]
    fn markdown_table_has_header_and_rows() {
        let t = markdown_table(&[ExperimentRecord::new("a", "b", "c", "d", true)]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.starts_with("| experiment |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_watts(200.5), "200.50 W");
        assert_eq!(fmt_energy(500.0), "500.0 J");
        assert_eq!(fmt_energy(2_500.0), "2.50 kJ");
        assert_eq!(fmt_energy(1_500_000.0), "1.50 MJ");
        assert_eq!(fmt_energy(7_200_000.0), "2.00 kWh");
        assert_eq!(fmt_percent(32.0), "+32.0%");
        assert_eq!(fmt_percent(-6.8), "-6.8%");
    }
}
