//! Content-addressed cell result cache.
//!
//! Re-running a grid after editing one dimension re-executes every cell,
//! even though most of the cross-product is untouched — at 10k+ cells
//! that dominates iteration time, and the adaptive refinement driver
//! (`crate::refine`) re-visits surviving cells every round. This cache
//! makes repeated cells free: each cell result is stored under a key that
//! hashes **everything the result depends on and nothing it doesn't**.
//!
//! # What is in a key
//!
//! * [`CACHE_FORMAT`] — the entry encoding itself;
//! * [`bml_core::rng::KEYING_VERSION`] — the seed/counter derivation
//!   scheme (a keying change replays different noise from the same seed);
//! * [`crate::artifact::SCHEMA`] — the artifact schema the summary feeds;
//! * the **trace digest** — first day, length, and the exact `f64` bits
//!   of every rate sample, so regenerating a trace differently misses;
//! * the **catalog digest** — the `Debug` rendering of the resolved
//!   infrastructure's candidate profiles, which covers every Table I
//!   constant (idle/max power, boot/shutdown durations and energies,
//!   capacity): editing a constant in `bml_core::catalog` invalidates
//!   every dependent entry by construction;
//! * [`bml_sim::exec::CellConfig::stable_descriptor`] — scheduler,
//!   window, noise sigma and seed, split, stepping, and the rest of the
//!   cell's knobs.
//!
//! Deliberately **not** in a key: thread counts, hostnames, wall-clock
//! time, cache paths. A cell computes the same bytes everywhere, so a
//! warm cache must hit across `--threads` settings and machines.
//!
//! Entries store the [`CellSummary`] *without* its optimality fields:
//! optima are solved per `(trace, catalog, split)` — cached separately
//! under [`opt_key`] — and stamped onto records after load, so a cell
//! loaded warm is byte-identical to one computed cold.
//!
//! # Robustness
//!
//! A corrupt, truncated, or foreign-format entry decodes to `None` and
//! the cell is recomputed (and the entry rewritten); the cache can never
//! turn disk rot into a panic or a wrong artifact. Writes go through a
//! temp file + atomic rename, so a killed run leaves no half-written
//! entries behind.

use std::io;
use std::path::{Path, PathBuf};

use bml_core::bml::BmlInfrastructure;
use bml_sim::exec::CellConfig;
use bml_sim::{CellSummary, Stepping};
use bml_trace::LoadTrace;

/// Version tag of the on-disk entry encoding. Bump on any change to the
/// entry format or field set; old entries then simply miss.
///
/// v2: cell entries carry the engine's telemetry counters
/// (`segments_batched`, `events_skipped`, `fallback_unsegmented`) and
/// optimum entries carry the solver's work counters — both so warm runs
/// merge byte-identical counter planes without re-executing anything.
pub const CACHE_FORMAT: &str = "bml-cell-cache/v2";

/// 128-bit content hash built from two independently-seeded 64-bit
/// FNV-1a streams. Not cryptographic — the cache is a private
/// memoization, not a trust boundary — but 128 bits makes accidental
/// collisions across a few million distinct cells implausible.
#[derive(Debug, Clone, Copy)]
pub struct KeyHasher {
    a: u64,
    b: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    /// Fresh hasher.
    pub fn new() -> Self {
        KeyHasher {
            a: FNV_OFFSET,
            // Decorrelate the second stream by perturbing its offset
            // basis with the splitmix increment.
            b: FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Fold raw bytes into both streams.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a string field, terminated by a NUL so `("ab", "c")` and
    /// `("a", "bc")` cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0]);
    }

    /// Fold a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Fold an `f64` by exact bit pattern (never by formatted value).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The 32-hex-character key.
    pub fn finish(&self) -> String {
        format!("{:016x}{:016x}", self.a, self.b)
    }
}

/// Digest of a resolved trace: first day, sample count, and the exact
/// bits of every per-second rate.
pub fn trace_digest(trace: &LoadTrace) -> String {
    let mut h = KeyHasher::new();
    h.write_str("trace");
    h.write_u64(u64::from(trace.first_day));
    h.write_u64(trace.rates.len() as u64);
    for &r in &trace.rates {
        h.write_f64(r);
    }
    h.finish()
}

/// Digest of a resolved infrastructure: the `Debug` rendering of its
/// surviving candidate profiles. `ArchProfile` derives `Debug` over every
/// field, so all Table I constants reach the digest; a new profile field
/// reaches it automatically.
pub fn catalog_digest(bml: &BmlInfrastructure) -> String {
    let mut h = KeyHasher::new();
    h.write_str("catalog");
    h.write_str(&format!("{:?}", bml.candidates()));
    h.finish()
}

/// Cell key under explicit version tags — the production path is
/// [`cell_key`]; tests use this to prove that bumping either version
/// moves the key.
pub fn cell_key_versioned(
    rng_version: &str,
    schema: &str,
    trace_digest: &str,
    catalog_digest: &str,
    cell: &CellConfig,
) -> String {
    let mut h = KeyHasher::new();
    h.write_str("cell");
    h.write_str(CACHE_FORMAT);
    h.write_str(rng_version);
    h.write_str(schema);
    h.write_str(trace_digest);
    h.write_str(catalog_digest);
    h.write_str(&cell.stable_descriptor());
    h.finish()
}

/// Content key of one cell result (see the module doc for what it
/// covers).
pub fn cell_key(trace_digest: &str, catalog_digest: &str, cell: &CellConfig) -> String {
    cell_key_versioned(
        bml_core::rng::KEYING_VERSION,
        crate::artifact::SCHEMA,
        trace_digest,
        catalog_digest,
        cell,
    )
}

/// Content key of one offline-optimum solve: the optimum depends only on
/// the trace, the infrastructure, the split policy, and the solver
/// options (hashed via `Debug`, so option changes invalidate).
pub fn opt_key(
    trace_digest: &str,
    catalog_digest: &str,
    split: bml_core::combination::SplitPolicy,
    options: &bml_opt::OptOptions,
) -> String {
    let mut h = KeyHasher::new();
    h.write_str("opt");
    h.write_str(CACHE_FORMAT);
    h.write_str(trace_digest);
    h.write_str(catalog_digest);
    h.write_str(crate::spec::split_label(split));
    h.write_str(&format!("{options:?}"));
    h.finish()
}

/// Hit/lookup counters of one grid run, split by entry kind. The grid
/// binary reports `cells.hits / cells.lookups` on stderr (never in the
/// artifact — stats vary with cache temperature, artifacts must not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cell-result lookups attempted.
    pub lookups: u64,
    /// Cell-result lookups served from the cache.
    pub hits: u64,
    /// Optimum-solve lookups attempted.
    pub opt_lookups: u64,
    /// Optimum-solve lookups served from the cache.
    pub opt_hits: u64,
}

impl CacheStats {
    /// Cell hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Accumulate another run's counters (refinement rounds sum up).
    pub fn absorb(&mut self, other: CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.opt_lookups += other.opt_lookups;
        self.opt_hits += other.opt_hits;
    }
}

/// An open on-disk cell cache rooted at a directory.
#[derive(Debug)]
pub struct CellCache {
    cells: PathBuf,
    opts: PathBuf,
}

impl CellCache {
    /// Open (creating if missing) a cache rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let cells = dir.join("cells");
        let opts = dir.join("opt");
        std::fs::create_dir_all(&cells)?;
        std::fs::create_dir_all(&opts)?;
        Ok(CellCache { cells, opts })
    }

    /// Load a cell summary by key; `None` on miss **or** on any decode
    /// problem (corrupt entries are treated as misses, never errors).
    pub fn load_cell(&self, key: &str) -> Option<CellSummary> {
        let text = std::fs::read_to_string(self.cells.join(key)).ok()?;
        decode_summary(&text)
    }

    /// Store a cell summary under `key`. Optimality fields are stripped
    /// before encoding — optima are cached separately (see [`opt_key`])
    /// and stamped after load, keeping entries valid whichever optimum
    /// pass runs later.
    pub fn store_cell(&self, key: &str, summary: &CellSummary) -> io::Result<()> {
        write_atomic(&self.cells, key, &encode_summary(summary))
    }

    /// Load a cached optimum solve by key.
    pub fn load_opt(&self, key: &str) -> Option<OptEntry> {
        let text = std::fs::read_to_string(self.opts.join(key)).ok()?;
        let mut lines = text.lines();
        if lines.next() != Some(CACHE_FORMAT) {
            return None;
        }
        let entry = OptEntry {
            energy_j: f64::from_bits(parse_hex_field(lines.next()?, "optimal_energy_j")?),
            n_states: parse_dec_field(lines.next()?, "n_states")?,
            n_segments: parse_dec_field(lines.next()?, "n_segments")?,
            n_boundaries: parse_dec_field(lines.next()?, "n_boundaries")?,
            states_pruned: parse_dec_field(lines.next()?, "states_pruned")?,
        };
        if lines.next().is_some() || !entry.energy_j.is_finite() {
            return None;
        }
        Some(entry)
    }

    /// Store an optimum solve under `key`.
    pub fn store_opt(&self, key: &str, entry: &OptEntry) -> io::Result<()> {
        let body = format!(
            "{CACHE_FORMAT}\n\
             optimal_energy_j={:016x}\n\
             n_states={}\n\
             n_segments={}\n\
             n_boundaries={}\n\
             states_pruned={}\n",
            entry.energy_j.to_bits(),
            entry.n_states,
            entry.n_segments,
            entry.n_boundaries,
            entry.states_pruned,
        );
        write_atomic(&self.opts, key, &body)
    }
}

/// One cached offline-optimum solve: the energy the cells are stamped
/// with, plus the solver's deterministic work counters — cached alongside
/// so a warm run's telemetry counter plane is byte-identical to a cold
/// one without re-running the DP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptEntry {
    /// Minimum total energy (J); see [`bml_opt::OptimalSchedule::energy_j`].
    pub energy_j: f64,
    /// DP states considered.
    pub n_states: u64,
    /// Constant-load segments.
    pub n_segments: u64,
    /// Segment boundaries crossed.
    pub n_boundaries: u64,
    /// States beam-pruned in the forward pass (0 for the exact DP).
    pub states_pruned: u64,
}

impl OptEntry {
    /// Build from a solved schedule.
    pub fn from_schedule(s: &bml_opt::OptimalSchedule) -> Self {
        OptEntry {
            energy_j: s.energy_j,
            n_states: s.n_states as u64,
            n_segments: s.n_segments as u64,
            n_boundaries: s.n_boundaries as u64,
            states_pruned: s.states_pruned,
        }
    }
}

/// Write `body` to `dir/key` through a temp file + rename, so readers
/// never observe a partial entry (rename is atomic within a filesystem).
fn write_atomic(dir: &Path, key: &str, body: &str) -> io::Result<()> {
    let tmp = dir.join(format!(".tmp-{key}"));
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, dir.join(key))
}

/// Line-based entry body. Floats are stored as exact hex bit patterns —
/// formatting round-trips are exactly the kind of bug a byte-identity
/// guarantee cannot afford. Shared with `crate::journal`, whose success
/// records carry the same payload (optima stripped, stamped after load).
pub(crate) fn encode_summary(s: &CellSummary) -> String {
    format!(
        "{CACHE_FORMAT}\n\
         total_energy_j={:016x}\n\
         mean_power_w={:016x}\n\
         qos_shortfall={:016x}\n\
         violation_seconds={}\n\
         worst_shortfall={:016x}\n\
         reconfigurations={}\n\
         nodes_switched_on={}\n\
         nodes_switched_off={}\n\
         reconfig_energy_j={:016x}\n\
         instance_migrations={}\n\
         segments_batched={}\n\
         events_skipped={}\n\
         fallback_unsegmented={}\n\
         stepping_effective={}\n",
        s.total_energy_j.to_bits(),
        s.mean_power_w.to_bits(),
        s.qos_shortfall.to_bits(),
        s.violation_seconds,
        s.worst_shortfall.to_bits(),
        s.reconfigurations,
        s.nodes_switched_on,
        s.nodes_switched_off,
        s.reconfig_energy_j.to_bits(),
        s.instance_migrations,
        s.segments_batched,
        s.events_skipped,
        s.fallback_unsegmented,
        crate::spec::stepping_label(s.stepping_effective),
    )
}

fn parse_hex_field(line: &str, name: &str) -> Option<u64> {
    u64::from_str_radix(line.strip_prefix(name)?.strip_prefix('=')?, 16).ok()
}

fn parse_dec_field(line: &str, name: &str) -> Option<u64> {
    line.strip_prefix(name)?.strip_prefix('=')?.parse().ok()
}

pub(crate) fn decode_summary(text: &str) -> Option<CellSummary> {
    let mut lines = text.lines();
    if lines.next() != Some(CACHE_FORMAT) {
        return None;
    }
    let summary = CellSummary {
        total_energy_j: f64::from_bits(parse_hex_field(lines.next()?, "total_energy_j")?),
        mean_power_w: f64::from_bits(parse_hex_field(lines.next()?, "mean_power_w")?),
        qos_shortfall: f64::from_bits(parse_hex_field(lines.next()?, "qos_shortfall")?),
        violation_seconds: parse_dec_field(lines.next()?, "violation_seconds")?,
        worst_shortfall: f64::from_bits(parse_hex_field(lines.next()?, "worst_shortfall")?),
        reconfigurations: parse_dec_field(lines.next()?, "reconfigurations")?,
        nodes_switched_on: parse_dec_field(lines.next()?, "nodes_switched_on")?,
        nodes_switched_off: parse_dec_field(lines.next()?, "nodes_switched_off")?,
        reconfig_energy_j: f64::from_bits(parse_hex_field(lines.next()?, "reconfig_energy_j")?),
        instance_migrations: parse_dec_field(lines.next()?, "instance_migrations")?,
        segments_batched: parse_dec_field(lines.next()?, "segments_batched")?,
        events_skipped: parse_dec_field(lines.next()?, "events_skipped")?,
        fallback_unsegmented: parse_dec_field(lines.next()?, "fallback_unsegmented")?,
        stepping_effective: match lines
            .next()?
            .strip_prefix("stepping_effective")?
            .strip_prefix('=')?
        {
            "event" => Stepping::EventDriven,
            "per-second" => Stepping::PerSecond,
            _ => return None,
        },
        optimal_energy_j: None,
        optimality_gap: None,
    };
    if lines.next().is_some() {
        return None; // trailing garbage: treat as corrupt
    }
    Some(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::catalog;
    use bml_sim::SimConfig;

    fn summary() -> CellSummary {
        CellSummary {
            total_energy_j: 12345.678,
            mean_power_w: 143.25,
            qos_shortfall: 0.001,
            violation_seconds: 17,
            worst_shortfall: 0.25,
            reconfigurations: 9,
            nodes_switched_on: 5,
            nodes_switched_off: 4,
            reconfig_energy_j: 321.0,
            instance_migrations: 2,
            segments_batched: 88,
            events_skipped: 1_234,
            fallback_unsegmented: 0,
            stepping_effective: Stepping::EventDriven,
            optimal_energy_j: Some(12000.0),
            optimality_gap: Some(0.0288),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bml_cell_cache_{tag}"));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn summary_roundtrips_without_optima() {
        let dir = tmp_dir("roundtrip");
        let cache = CellCache::open(&dir).unwrap();
        cache.store_cell("k1", &summary()).unwrap();
        let loaded = cache.load_cell("k1").expect("hit");
        let expected = CellSummary {
            optimal_energy_j: None,
            optimality_gap: None,
            ..summary()
        };
        assert_eq!(loaded, expected, "optima must not be baked into entries");
        assert_eq!(cache.load_cell("absent"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn optimum_roundtrips_exactly() {
        let dir = tmp_dir("opt");
        let cache = CellCache::open(&dir).unwrap();
        let entry = OptEntry {
            energy_j: 98_765.432_109_876_54,
            n_states: 12,
            n_segments: 345,
            n_boundaries: 344,
            states_pruned: 7,
        };
        cache.store_opt("o1", &entry).unwrap();
        let loaded = cache.load_opt("o1").unwrap();
        assert_eq!(loaded.energy_j.to_bits(), entry.energy_j.to_bits());
        assert_eq!(loaded, entry);
        assert_eq!(cache.load_opt("o2"), None);
        // A v1-era entry (energy only) is a miss, not a panic.
        std::fs::write(
            dir.join("opt").join("o1"),
            format!(
                "bml-cell-cache/v1\noptimal_energy_j={:016x}\n",
                entry.energy_j.to_bits()
            ),
        )
        .unwrap();
        assert_eq!(cache.load_opt("o1"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_decode_to_miss_not_panic() {
        let dir = tmp_dir("corrupt");
        let cache = CellCache::open(&dir).unwrap();
        cache.store_cell("k", &summary()).unwrap();
        let path = dir.join("cells").join("k");
        let good = std::fs::read_to_string(&path).unwrap();
        for bad in [
            String::new(),                                   // empty file
            "not-a-cache-entry\n".to_string(),               // foreign format
            good[..good.len() / 2].to_string(),              // truncated
            good.replace("total_energy_j", "totel"),         // renamed field
            format!("{good}extra=1\n"),                      // trailing garbage
            good.replace(CACHE_FORMAT, "bml-cell-cache/v0"), // stale format
        ] {
            std::fs::write(&path, bad).unwrap();
            assert_eq!(cache.load_cell("k"), None);
        }
        // Recompute + store overwrites the rot.
        cache.store_cell("k", &summary()).unwrap();
        assert!(cache.load_cell("k").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Exhaustive corruption fuzz over one stored entry: every possible
    /// truncation length and every single-bit flip. The decoder must
    /// never panic, truncations must always miss (recompute, not rot),
    /// and any flip touching the entry's structure — the format tag, a
    /// field name, a separator — must miss too. Flips confined to a hex
    /// digit can decode to a *different valid* value: the cache is a
    /// private memoization behind content-addressed keys, not a trust
    /// boundary, so that is out of scope here (and why grid artifacts pin
    /// cold-vs-warm byte-identity separately).
    #[test]
    fn fuzz_truncations_and_bit_flips_miss_or_decode_never_panic() {
        let dir = tmp_dir("fuzz");
        let cache = CellCache::open(&dir).unwrap();
        cache.store_cell("k", &summary()).unwrap();
        let path = dir.join("cells").join("k");
        let good = std::fs::read(&path).unwrap();

        for n in 0..good.len() {
            std::fs::write(&path, &good[..n]).unwrap();
            let decoded = cache.load_cell("k");
            if n == good.len() - 1 {
                // Only the trailing newline is gone; `lines()` treats the
                // final line the same either way, so this still decodes.
                assert!(decoded.is_some());
            } else {
                assert_eq!(decoded, None, "truncation at byte {n} must miss");
            }
        }

        let text = String::from_utf8(good.clone()).unwrap();
        let mut structural_hits = 0u32;
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                std::fs::write(&path, &bad).unwrap();
                let decoded = cache.load_cell("k"); // must not panic
                                                    // A flip outside the hex payloads corrupts structure and
                                                    // must be detected as a miss.
                let in_hex_payload = text[..byte]
                    .rfind('\n')
                    .map(|s| &text[s + 1..byte])
                    .is_some_and(|prefix| {
                        prefix.contains('=')
                            && good[byte] != b'\n'
                            && good[byte].is_ascii_hexdigit()
                    });
                if !in_hex_payload && decoded.is_some() {
                    structural_hits += 1;
                }
            }
        }
        assert_eq!(structural_hits, 0, "a structural bit flip decoded as a hit");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digests_track_content() {
        let t1 = LoadTrace::new(0, vec![1.0, 2.0, 3.0]);
        let same = LoadTrace::new(0, vec![1.0, 2.0, 3.0]);
        assert_eq!(trace_digest(&t1), trace_digest(&same));
        for other in [
            LoadTrace::new(1, vec![1.0, 2.0, 3.0]),       // day shift
            LoadTrace::new(0, vec![1.0, 2.0, 3.0, 4.0]),  // longer
            LoadTrace::new(0, vec![1.0, 2.0, 3.0000001]), // one sample off
        ] {
            assert_ne!(trace_digest(&t1), trace_digest(&other));
        }

        let trio = BmlInfrastructure::build(&catalog::table1()).unwrap();
        let trio_again = BmlInfrastructure::build(&catalog::table1()).unwrap();
        assert_eq!(catalog_digest(&trio), catalog_digest(&trio_again));
        let big = BmlInfrastructure::build(&[catalog::by_name("paravance").unwrap()]).unwrap();
        assert_ne!(catalog_digest(&trio), catalog_digest(&big));
        // A Table I constant edit moves the digest.
        let mut tweaked = catalog::by_name("paravance").unwrap();
        tweaked.idle_power += 1.0;
        let tweaked = BmlInfrastructure::build(&[tweaked]).unwrap();
        assert_ne!(catalog_digest(&big), catalog_digest(&tweaked));
    }

    #[test]
    fn version_bumps_move_cell_keys() {
        let cell = CellConfig::from_sim(&SimConfig::default());
        let base = cell_key_versioned("bml-rng/v1", "bml-grid/v5", "t", "c", &cell);
        assert_eq!(base, cell_key("t", "c", &cell), "production tags");
        assert_ne!(
            base,
            cell_key_versioned("bml-rng/v2", "bml-grid/v5", "t", "c", &cell),
            "an RNG keying bump must invalidate"
        );
        assert_ne!(
            base,
            cell_key_versioned("bml-rng/v1", "bml-grid/v6", "t", "c", &cell),
            "an artifact schema bump must invalidate"
        );
        assert_ne!(base, cell_key("t2", "c", &cell));
        assert_ne!(base, cell_key("t", "c2", &cell));
        let noisy = CellConfig {
            noise_sigma: 0.3,
            ..cell.clone()
        };
        assert_ne!(base, cell_key("t", "c", &noisy));
    }

    #[test]
    fn hasher_field_boundaries_do_not_collide() {
        let mut ab_c = KeyHasher::new();
        ab_c.write_str("ab");
        ab_c.write_str("c");
        let mut a_bc = KeyHasher::new();
        a_bc.write_str("a");
        a_bc.write_str("bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
        assert_eq!(KeyHasher::new().finish().len(), 32);
    }
}
