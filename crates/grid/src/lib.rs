//! # bml-grid — parallel experiment orchestration
//!
//! The paper's evaluation is a handful of fixed scenarios; this crate
//! opens the full cross-product. A [`GridSpec`] declares a value list for
//! each of seven experiment dimensions —
//!
//! 1. **trace** — named workload sources from the `bml-trace` registry
//!    (`worldcup`, `diurnal`, `random-walk`, ...), with days and seed;
//! 2. **catalog** — named architecture mixes ([`CatalogSpec::table1`],
//!    [`CatalogSpec::big_medium`], ...);
//! 3. **scheduler** — baseline pro-active or transition-aware;
//! 4. **window** — look-ahead lengths (`None` = the paper's 378 s rule);
//! 5. **noise_sigma** — relative gaussian prediction error (0 = clean);
//! 6. **split** — load-split policy across online machines;
//! 7. **stepping** — event-driven replay or the per-second reference —
//!
//! and a [`GridRunner`] executes every cell of the cross-product
//! rayon-parallel over the shared `bml-sim` cell executor:
//!
//! ```no_run
//! # use bml_grid::{GridRunner, GridSpec, StreamingArtifactWriter};
//! # fn demo(spec: &GridSpec) -> Result<(), String> {
//! let mut sink = StreamingArtifactWriter::create("out".as_ref())
//!     .map_err(|e| e.to_string())?;
//! let run = GridRunner::new(spec)
//!     .threads(8)                    // worker cap (wall clock only)
//!     .cache_dir("/tmp/bml-cache")   // content-addressed cell cache
//!     .sink(&mut sink)               // stream artifacts as cells finish
//!     .run()?;
//! # Ok(())
//! # }
//! ```
//!
//! Completed cells flow through the aggregator (per-dimension bests +
//! the energy-vs-QoS Pareto frontier) into the versioned
//! `BENCH_grid.json` and `BENCH_grid.csv` — streamed incrementally by the
//! [`StreamingArtifactWriter`] or written at once by
//! [`artifact::write_artifacts`]; both produce the same bytes. Repeat
//! cells are served from the [`cache`] (keyed on *content*: trace bits,
//! catalog constants, cell knobs, RNG keying and schema versions — never
//! thread counts or hosts), and [`GridRunner::refine`] replaces
//! exhaustive sweeps with Pareto-guided bisection of the numeric
//! dimensions (see [`refine`]).
//!
//! # Determinism
//!
//! Cell seeds derive splitmix-style from the root seed and the cell's
//! *scenario index* — its enumeration index with the innermost stepping
//! dimension divided out ([`spec::splitmix64`]; see
//! [`spec::GridSpec::cells`]), so stepping twins replay the same noisy
//! scenario — and execution preserves enumeration order whatever the
//! worker count. For a fixed spec the
//! rendered artifacts are therefore **byte-identical at any thread
//! count** — CI verifies this, and `--threads` on the `grid` binary only
//! changes wall-clock time.
//!
//! # Relation to the ablation binaries
//!
//! Each classic ablation is a 1-D slice of this grid (all other
//! dimensions pinned to the paper's defaults):
//!
//! | binary                | grid dimension swept                  |
//! |-----------------------|---------------------------------------|
//! | `ablation_window`     | `windows`                             |
//! | `ablation_prediction` | `noise_sigmas`                        |
//! | `ablation_scheduler`  | `schedulers`                          |
//! | (split-policy sweep)  | `splits`                              |
//! | `fig5_bounds --stepping` | `steppings`                        |
//!
//! Their `sweep_*` entry points in `bml_sim::runner` are thin wrappers
//! over the same cell executor this crate drives, so a grid cell and the
//! matching ablation point are the *same computation*.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod artifact;
pub mod cache;
pub mod chaos;
pub mod executor;
pub mod journal;
pub mod json;
pub mod refine;
pub mod spec;
pub mod stream;

pub use aggregate::{pareto_frontier, per_dimension_bests, DimensionBest};
pub use artifact::{render_csv, render_json, render_json_with, write_artifacts, SCHEMA};
pub use cache::{CacheStats, CellCache, OptEntry};
pub use chaos::ChaosPolicy;
pub use executor::{
    run_grid, CellRecord, FailedCell, GridOutcome, GridRun, GridRunner, RunWarning,
};
pub use journal::{Journal, JOURNAL_NAME};
pub use refine::{RefineBudget, RefineMeta, RefineOutcome};
pub use spec::{
    CatalogSpec, CellCoords, GridSpec, GridSpecBuilder, SchedulerDim, TraceSpec, DIMENSIONS,
};
pub use stream::{CellSink, StreamingArtifactWriter};
