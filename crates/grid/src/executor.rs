//! Grid execution: resolve a [`GridSpec`]'s traces and catalogs once,
//! fan every cell out over the shared `bml-sim` cell executor, and
//! collect per-cell summaries in enumeration order.
//!
//! Determinism: traces and infrastructures are resolved eagerly (so
//! resolution cost is paid once, not per cell), cells carry seeds derived
//! purely from the root seed and their enumeration index, and
//! [`bml_sim::exec::run_cells`] returns results in input order whatever
//! the worker count — so [`run_grid`]'s outcome, and every artifact
//! rendered from it, is identical at 1 thread and at N.

use bml_core::scheduler::paper_window_length;
use bml_sim::exec::{run_cells, CellConfig, CellJob};
use bml_sim::{CellSummary, SimConfig};
use serde::{Deserialize, Serialize};

use crate::spec::{CellCoords, GridSpec};

/// One executed cell: its coordinates, resolved dimension labels (in
/// [`crate::spec::DIMENSIONS`] order), and result summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// The cell's coordinates (flat index + per-dimension indices + seed).
    pub coords: CellCoords,
    /// Dimension labels, aligned with [`crate::spec::DIMENSIONS`].
    pub labels: Vec<String>,
    /// The scenario outcome summary.
    pub summary: CellSummary,
}

/// Outcome of one grid run: the spec that produced it plus every cell in
/// enumeration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridOutcome {
    /// The executed spec.
    pub spec: GridSpec,
    /// Cells, index-aligned with the spec's enumeration.
    pub cells: Vec<CellRecord>,
}

/// Execute every cell of `spec`, `threads`-wide (`None` = rayon default).
///
/// Fails fast on an invalid spec (unknown trace source, unbuildable
/// catalog mix, empty dimension) without running anything.
pub fn run_grid(spec: &GridSpec, threads: Option<usize>) -> Result<GridOutcome, String> {
    spec.validate()?;
    let traces: Vec<_> = spec
        .traces
        .iter()
        .map(|t| t.resolve())
        .collect::<Result<_, _>>()?;
    let catalogs: Vec<_> = spec
        .catalogs
        .iter()
        .map(|c| c.resolve())
        .collect::<Result<_, _>>()?;

    let coords = spec.cells();
    let base = SimConfig::default();
    let jobs: Vec<CellJob<'_>> = coords
        .iter()
        .map(|c| {
            let bml = &catalogs[c.catalog];
            let window = spec.windows[c.window];
            let split = spec.splits[c.split];
            let window_s = window.unwrap_or_else(|| paper_window_length(bml.candidates()));
            CellJob {
                trace: &traces[c.trace],
                bml,
                cell: CellConfig {
                    scheduler: spec.schedulers[c.scheduler].resolve(window_s, split),
                    window,
                    noise_sigma: spec.noise_sigmas[c.sigma],
                    noise_seed: c.seed,
                    split,
                    stepping: spec.steppings[c.stepping],
                    ..CellConfig::from_sim(&base)
                },
            }
        })
        .collect();

    let results = run_cells(&jobs, threads);
    let mut cells: Vec<CellRecord> = coords
        .into_iter()
        .zip(results)
        .map(|(coords, result)| CellRecord {
            labels: spec.cell_labels(&coords),
            coords,
            summary: result.summary(),
        })
        .collect();
    attach_optimal_energies(spec, &traces, &catalogs, &mut cells);
    Ok(GridOutcome {
        spec: spec.clone(),
        cells,
    })
}

/// Solve the offline optimum once per distinct `(trace, catalog, split)`
/// triple — the only dimensions the optimum depends on — replay-verify
/// each schedule through the simulator (`bml_opt::solve_verified` panics
/// on >1e-9 divergence), and stamp `optimal_energy_j` / `optimality_gap`
/// onto every cell sharing the triple. Runs serially after the cell
/// fan-out; solves are deterministic, so artifacts stay byte-identical
/// across thread counts.
fn attach_optimal_energies(
    spec: &GridSpec,
    traces: &[bml_trace::LoadTrace],
    catalogs: &[bml_core::bml::BmlInfrastructure],
    cells: &mut [CellRecord],
) {
    let mut optima: std::collections::BTreeMap<(usize, usize, usize), f64> =
        std::collections::BTreeMap::new();
    for cell in cells.iter_mut() {
        let key = (cell.coords.trace, cell.coords.catalog, cell.coords.split);
        let optimal = *optima.entry(key).or_insert_with(|| {
            let (sched, _) = bml_opt::solve_verified(
                &traces[key.0],
                &catalogs[key.1],
                spec.splits[key.2],
                &bml_opt::OptOptions::default(),
            )
            .expect("exact DP cannot dead-end");
            sched.energy_j
        });
        cell.summary.optimal_energy_j = Some(optimal);
        cell.summary.optimality_gap = if optimal > 0.0 {
            Some((cell.summary.total_energy_j - optimal) / optimal)
        } else {
            None
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CatalogSpec, SchedulerDim, TraceSpec};
    use bml_core::combination::SplitPolicy;
    use bml_sim::Stepping;

    fn small_spec() -> GridSpec {
        GridSpec {
            name: "unit".into(),
            root_seed: 7,
            traces: vec![TraceSpec {
                source: "square-bursts".into(),
                days: 1,
                seed: 0,
            }],
            catalogs: vec![CatalogSpec::paper_trio(), CatalogSpec::big_only()],
            schedulers: vec![SchedulerDim::Baseline],
            windows: vec![None],
            noise_sigmas: vec![0.0],
            splits: vec![SplitPolicy::EfficiencyGreedy],
            steppings: vec![Stepping::EventDriven],
        }
    }

    #[test]
    fn grid_runs_and_aligns_cells_with_enumeration() {
        let spec = small_spec();
        let out = run_grid(&spec, Some(2)).unwrap();
        assert_eq!(out.cells.len(), 2);
        for (i, c) in out.cells.iter().enumerate() {
            assert_eq!(c.coords.index, i);
            assert_eq!(c.labels.len(), crate::spec::DIMENSIONS.len());
            assert!(c.summary.total_energy_j > 0.0);
        }
        // The heterogeneous trio must beat the Big-only mix on a bursty
        // trace with deep lows.
        assert!(out.cells[0].summary.total_energy_j < out.cells[1].summary.total_energy_j);
    }

    #[test]
    fn every_cell_carries_a_verified_optimum() {
        let out = run_grid(&small_spec(), Some(1)).unwrap();
        for c in &out.cells {
            let opt = c.summary.optimal_energy_j.expect("optimum attached");
            let gap = c.summary.optimality_gap.expect("gap attached");
            assert!(opt > 0.0);
            // Noise-free cells serve in full, so the scheduler can never
            // beat the offline optimum.
            assert!(gap >= 0.0, "gap {gap} for {:?}", c.labels);
            assert!(
                (gap - (c.summary.total_energy_j - opt) / opt).abs() < 1e-12,
                "gap is derived from the two energies"
            );
        }
    }

    #[test]
    fn invalid_spec_fails_before_running() {
        let mut spec = small_spec();
        spec.traces[0].source = "bogus".into();
        assert!(run_grid(&spec, None).is_err());
    }
}
