//! Grid execution behind the [`GridRunner`] API.
//!
//! A run resolves the spec's traces and catalogs once, solves the offline
//! optimum per distinct `(trace, catalog, split)` triple up front, then
//! fans the cells out over the shared `bml-sim` cell executor in batches,
//! optionally short-circuiting each cell through the content-addressed
//! [`crate::cache::CellCache`] and streaming each completed record to a
//! [`crate::stream::CellSink`] in enumeration order.
//!
//! Determinism: cells carry seeds derived purely from the root seed and
//! their enumeration index, [`bml_sim::exec::run_cells`] returns results
//! in input order whatever the worker count, cached summaries are stored
//! without (and re-stamped with) their optima — so the outcome, and every
//! artifact rendered or streamed from it, is identical at 1 thread and at
//! N, with a cold cache and a warm one.
//!
//! ```no_run
//! # use bml_grid::{GridRunner, GridSpec};
//! # fn demo(spec: &GridSpec) -> Result<(), String> {
//! let run = GridRunner::new(spec)
//!     .threads(8)
//!     .cache_dir("/tmp/bml-cache")
//!     .run()?;
//! eprintln!("cache: {} hits / {} lookups", run.cache.hits, run.cache.lookups);
//! # Ok(())
//! # }
//! ```
//!
//! The pre-[`GridRunner`] entry point [`run_grid`] remains as a thin
//! wrapper (no cache, no sink) for callers that just want an outcome.

use std::collections::BTreeMap;
use std::path::PathBuf;

use bml_core::scheduler::paper_window_length;
use bml_sim::exec::{run_cells, CellConfig, CellJob};
use bml_sim::{CellSummary, SimConfig};
use serde::{Deserialize, Serialize};

use crate::cache::{self, CacheStats, CellCache};
use crate::refine::RefineMeta;
use crate::spec::{CellCoords, GridSpec};
use crate::stream::CellSink;

/// Cells per fan-out batch: large enough to keep every worker busy,
/// small enough that the streaming sink checkpoints to disk at a steady
/// cadence on 10k+-cell grids.
const STREAM_BATCH: usize = 1024;

/// One executed cell: its coordinates, resolved dimension labels (in
/// [`crate::spec::DIMENSIONS`] order), and result summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// The cell's coordinates (flat index + per-dimension indices + seed).
    pub coords: CellCoords,
    /// Dimension labels, aligned with [`crate::spec::DIMENSIONS`].
    pub labels: Vec<String>,
    /// The scenario outcome summary.
    pub summary: CellSummary,
}

/// Outcome of one grid run: the spec that produced it plus every cell in
/// enumeration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridOutcome {
    /// The executed spec.
    pub spec: GridSpec,
    /// Cells, index-aligned with the spec's enumeration.
    pub cells: Vec<CellRecord>,
}

/// A completed [`GridRunner`] run: the outcome plus the cache counters
/// (all zero when no cache directory was configured).
#[derive(Debug)]
pub struct GridRun {
    /// The executed grid.
    pub outcome: GridOutcome,
    /// Cell/optimum cache hit counters for this run.
    pub cache: CacheStats,
}

/// Configures and executes one grid run (builder-style).
///
/// Replaces the old `run_grid(spec, threads)` positional call, which had
/// no room for the cache directory or the streaming sink without growing
/// a parameter list of `Option`s at every call site.
pub struct GridRunner<'a> {
    spec: &'a GridSpec,
    threads: Option<usize>,
    cache_dir: Option<PathBuf>,
    sink: Option<&'a mut dyn CellSink>,
}

impl<'a> GridRunner<'a> {
    /// A runner for `spec` with no thread cap, no cache, no sink.
    pub fn new(spec: &'a GridSpec) -> Self {
        GridRunner {
            spec,
            threads: None,
            cache_dir: None,
            sink: None,
        }
    }

    /// Cap the worker-thread count (only changes wall-clock time, never
    /// results).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Cap the worker-thread count from an optional CLI flag (`None` =
    /// rayon's default).
    #[must_use]
    pub fn threads_opt(mut self, n: Option<usize>) -> Self {
        self.threads = n;
        self
    }

    /// Enable the content-addressed cell cache rooted at `dir`.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Enable the cache from an optional CLI flag.
    #[must_use]
    pub fn cache_dir_opt(mut self, dir: Option<impl Into<PathBuf>>) -> Self {
        self.cache_dir = dir.map(Into::into);
        self
    }

    /// Stream completed cells (enumeration order) into `sink`.
    #[must_use]
    pub fn sink(mut self, sink: &'a mut dyn CellSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Execute every cell of the spec.
    ///
    /// Fails fast on an invalid spec (unknown trace source, unbuildable
    /// catalog mix, empty dimension) without running anything; cache and
    /// sink I/O errors are reported as strings, like spec errors.
    pub fn run(self) -> Result<GridRun, String> {
        let spec = self.spec;
        let mut sink = self.sink;
        execute(
            spec,
            self.threads,
            self.cache_dir.as_deref(),
            None,
            &mut sink,
        )
    }

    /// Adaptively refine the spec instead of running it exhaustively —
    /// see [`crate::refine`] for the bisection strategy and
    /// [`crate::refine::RefineBudget`] for the caps.
    pub fn refine(
        self,
        budget: &crate::refine::RefineBudget,
    ) -> Result<crate::refine::RefineOutcome, String> {
        crate::refine::drive(
            self.spec,
            self.threads,
            self.cache_dir.as_deref(),
            self.sink,
            budget,
        )
    }
}

/// Execute every cell of `spec`, `threads`-wide (`None` = rayon default),
/// without cache or sink. Thin compatibility wrapper over [`GridRunner`].
pub fn run_grid(spec: &GridSpec, threads: Option<usize>) -> Result<GridOutcome, String> {
    GridRunner::new(spec)
        .threads_opt(threads)
        .run()
        .map(|r| r.outcome)
}

/// The one execution path behind [`GridRunner::run`] and the refinement
/// driver. `refine_meta` is embedded in the streamed prologue when the
/// stream is a refinement's final artifact.
pub(crate) fn execute(
    spec: &GridSpec,
    threads: Option<usize>,
    cache_dir: Option<&std::path::Path>,
    refine_meta: Option<&RefineMeta>,
    sink: &mut Option<&mut dyn CellSink>,
) -> Result<GridRun, String> {
    spec.validate()?;
    let traces: Vec<_> = spec
        .traces
        .iter()
        .map(|t| t.resolve())
        .collect::<Result<_, _>>()?;
    let catalogs: Vec<_> = spec
        .catalogs
        .iter()
        .map(|c| c.resolve())
        .collect::<Result<_, _>>()?;

    let mut stats = CacheStats::default();
    let cache = match cache_dir {
        Some(dir) => {
            Some(CellCache::open(dir).map_err(|e| format!("cache dir {}: {e}", dir.display()))?)
        }
        None => None,
    };
    // Digests are only needed for keying; skip the (trace-length) hashing
    // work entirely on uncached runs.
    let trace_digests: Vec<String> = match &cache {
        Some(_) => traces.iter().map(cache::trace_digest).collect(),
        None => Vec::new(),
    };
    let catalog_digests: Vec<String> = match &cache {
        Some(_) => catalogs.iter().map(cache::catalog_digest).collect(),
        None => Vec::new(),
    };

    // Optima first: one verified solve per distinct (trace, catalog,
    // split) triple — the only dimensions the optimum depends on. Solving
    // before the fan-out lets each record be stamped (and streamed)
    // complete the moment its cell finishes.
    let opt_options = bml_opt::OptOptions::default();
    let mut optima: BTreeMap<(usize, usize, usize), f64> = BTreeMap::new();
    for t in 0..traces.len() {
        for c in 0..catalogs.len() {
            for (s, &split) in spec.splits.iter().enumerate() {
                let cached = cache.as_ref().map(|cache| {
                    stats.opt_lookups += 1;
                    let key =
                        cache::opt_key(&trace_digests[t], &catalog_digests[c], split, &opt_options);
                    let hit = cache.load_opt(&key);
                    if hit.is_some() {
                        stats.opt_hits += 1;
                    }
                    (key, hit)
                });
                let energy = match &cached {
                    Some((_, Some(energy))) => *energy,
                    _ => {
                        let (sched, _) =
                            bml_opt::solve_verified(&traces[t], &catalogs[c], split, &opt_options)
                                .expect("exact DP cannot dead-end");
                        if let (Some(cache), Some((key, None))) = (&cache, &cached) {
                            cache
                                .store_opt(key, sched.energy_j)
                                .map_err(|e| format!("cache write: {e}"))?;
                        }
                        sched.energy_j
                    }
                };
                optima.insert((t, c, s), energy);
            }
        }
    }

    let coords = spec.cells();
    if let Some(sink) = sink.as_deref_mut() {
        sink.begin(spec, coords.len(), refine_meta)
            .map_err(|e| format!("artifact stream: {e}"))?;
    }

    let base = SimConfig::default();
    let mut cells: Vec<CellRecord> = Vec::with_capacity(coords.len());
    for batch in coords.chunks(STREAM_BATCH) {
        // Cache lookups first; the parallel fan-out then only sees the
        // misses (in enumeration order, so results align back by index).
        let configs: Vec<CellConfig> = batch
            .iter()
            .map(|c| {
                let bml = &catalogs[c.catalog];
                let window = spec.windows[c.window];
                let split = spec.splits[c.split];
                let window_s = window.unwrap_or_else(|| paper_window_length(bml.candidates()));
                CellConfig {
                    scheduler: spec.schedulers[c.scheduler].resolve(window_s, split),
                    window,
                    noise_sigma: spec.noise_sigmas[c.sigma],
                    noise_seed: c.seed,
                    split,
                    stepping: spec.steppings[c.stepping],
                    ..CellConfig::from_sim(&base)
                }
            })
            .collect();
        let mut summaries: Vec<Option<CellSummary>> = Vec::with_capacity(batch.len());
        let mut keys: Vec<Option<String>> = Vec::with_capacity(batch.len());
        for (c, config) in batch.iter().zip(&configs) {
            let (key, summary) = match &cache {
                Some(cache) => {
                    stats.lookups += 1;
                    let key = cache::cell_key(
                        &trace_digests[c.trace],
                        &catalog_digests[c.catalog],
                        config,
                    );
                    let hit = cache.load_cell(&key);
                    if hit.is_some() {
                        stats.hits += 1;
                    }
                    (Some(key), hit)
                }
                None => (None, None),
            };
            keys.push(key);
            summaries.push(summary);
        }

        let miss_idx: Vec<usize> = (0..batch.len())
            .filter(|&i| summaries[i].is_none())
            .collect();
        let jobs: Vec<CellJob<'_>> = miss_idx
            .iter()
            .map(|&i| CellJob {
                trace: &traces[batch[i].trace],
                bml: &catalogs[batch[i].catalog],
                cell: configs[i].clone(),
            })
            .collect();
        let results = run_cells(&jobs, threads);
        for (&i, result) in miss_idx.iter().zip(results) {
            let summary = result.summary();
            if let (Some(cache), Some(key)) = (&cache, &keys[i]) {
                cache
                    .store_cell(key, &summary)
                    .map_err(|e| format!("cache write: {e}"))?;
            }
            summaries[i] = Some(summary);
        }

        for (c, summary) in batch.iter().zip(summaries) {
            let mut summary = summary.expect("every cell is either cached or computed");
            let optimal = optima[&(c.trace, c.catalog, c.split)];
            summary.optimal_energy_j = Some(optimal);
            summary.optimality_gap = if optimal > 0.0 {
                Some((summary.total_energy_j - optimal) / optimal)
            } else {
                None
            };
            let record = CellRecord {
                labels: spec.cell_labels(c),
                coords: *c,
                summary,
            };
            if let Some(sink) = sink.as_deref_mut() {
                sink.cell(&record)
                    .map_err(|e| format!("artifact stream: {e}"))?;
            }
            cells.push(record);
        }
    }

    let outcome = GridOutcome {
        spec: spec.clone(),
        cells,
    };
    if let Some(sink) = sink.as_deref_mut() {
        sink.finish(&outcome)
            .map_err(|e| format!("artifact stream: {e}"))?;
    }
    Ok(GridRun {
        outcome,
        cache: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CatalogSpec, SchedulerDim, TraceSpec};
    use bml_core::combination::SplitPolicy;
    use bml_sim::Stepping;

    fn small_spec() -> GridSpec {
        GridSpec {
            name: "unit".into(),
            root_seed: 7,
            traces: vec![TraceSpec {
                source: "square-bursts".into(),
                days: 1,
                seed: 0,
            }],
            catalogs: vec![CatalogSpec::paper_trio(), CatalogSpec::big_only()],
            schedulers: vec![SchedulerDim::Baseline],
            windows: vec![None],
            noise_sigmas: vec![0.0],
            splits: vec![SplitPolicy::EfficiencyGreedy],
            steppings: vec![Stepping::EventDriven],
        }
    }

    #[test]
    fn grid_runs_and_aligns_cells_with_enumeration() {
        let spec = small_spec();
        let out = run_grid(&spec, Some(2)).unwrap();
        assert_eq!(out.cells.len(), 2);
        for (i, c) in out.cells.iter().enumerate() {
            assert_eq!(c.coords.index, i);
            assert_eq!(c.labels.len(), crate::spec::DIMENSIONS.len());
            assert!(c.summary.total_energy_j > 0.0);
        }
        // The heterogeneous trio must beat the Big-only mix on a bursty
        // trace with deep lows.
        assert!(out.cells[0].summary.total_energy_j < out.cells[1].summary.total_energy_j);
    }

    #[test]
    fn every_cell_carries_a_verified_optimum() {
        let out = run_grid(&small_spec(), Some(1)).unwrap();
        for c in &out.cells {
            let opt = c.summary.optimal_energy_j.expect("optimum attached");
            let gap = c.summary.optimality_gap.expect("gap attached");
            assert!(opt > 0.0);
            // Noise-free cells serve in full, so the scheduler can never
            // beat the offline optimum.
            assert!(gap >= 0.0, "gap {gap} for {:?}", c.labels);
            assert!(
                (gap - (c.summary.total_energy_j - opt) / opt).abs() < 1e-12,
                "gap is derived from the two energies"
            );
        }
    }

    #[test]
    fn invalid_spec_fails_before_running() {
        let mut spec = small_spec();
        spec.traces[0].source = "bogus".into();
        assert!(run_grid(&spec, None).is_err());
        assert!(GridRunner::new(&spec).run().is_err());
    }

    #[test]
    fn runner_without_cache_reports_zero_stats() {
        let run = GridRunner::new(&small_spec()).threads(2).run().unwrap();
        assert_eq!(run.cache, CacheStats::default());
        assert_eq!(run.outcome.cells.len(), 2);
    }

    #[test]
    fn cached_run_equals_uncached_run() {
        let dir = std::env::temp_dir().join("bml_grid_executor_cache_test");
        std::fs::remove_dir_all(&dir).ok();
        let spec = small_spec();
        let plain = run_grid(&spec, Some(2)).unwrap();
        let cold = GridRunner::new(&spec)
            .threads(2)
            .cache_dir(&dir)
            .run()
            .unwrap();
        assert_eq!(cold.outcome, plain);
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.lookups, 2);
        let warm = GridRunner::new(&spec)
            .threads(1)
            .cache_dir(&dir)
            .run()
            .unwrap();
        assert_eq!(warm.outcome, plain, "warm cache must not change results");
        assert_eq!(warm.cache.hits, 2);
        assert_eq!(warm.cache.opt_hits, warm.cache.opt_lookups);
        std::fs::remove_dir_all(&dir).ok();
    }
}
