//! Grid execution behind the [`GridRunner`] API.
//!
//! A run resolves the spec's traces and catalogs once, solves the offline
//! optimum per distinct `(trace, catalog, split)` triple up front, then
//! fans the cells out over the shared `bml-sim` cell executor in batches,
//! optionally short-circuiting each cell through the content-addressed
//! [`crate::cache::CellCache`] and streaming each completed record to a
//! [`crate::stream::CellSink`] in enumeration order.
//!
//! Determinism: cells carry seeds derived purely from the root seed and
//! their enumeration index, the parallel fan-out returns results in input
//! order whatever the worker count, cached summaries are stored without
//! (and re-stamped with) their optima — so the outcome, and every
//! artifact rendered or streamed from it, is identical at 1 thread and at
//! N, with a cold cache and a warm one.
//!
//! # Fault tolerance
//!
//! Every cell runs isolated ([`bml_sim::exec::run_cells_checked`]): a
//! panicking cell is retried up to [`GridRunner::max_retries`] extra
//! times with the **same seed** (a deterministic workload that panicked
//! once will panic again — the retry budget exists for injected and
//! environmental faults), and a cell that exhausts its budget is
//! **quarantined** into [`GridOutcome::failed_cells`] (artifact schema
//! `bml-grid/v5`) instead of aborting the run.
//!
//! With a journal directory configured, every decided cell (succeeded
//! *or* quarantined) is appended to a checksummed journal
//! ([`crate::journal`]) before the run moves on; [`GridRunner::resume`]
//! replays it so a killed run continues from the last durable cell and
//! still produces **byte-identical artifacts** to an uninterrupted run.
//!
//! I/O faults degrade instead of failing: a cache, sink, or journal
//! write error disables that component for the rest of the run and is
//! reported in [`GridRun::warnings`] — the run itself completes in
//! memory. Spec validation and trace/catalog resolution stay hard
//! errors (nothing has run yet, and the result could not be right).
//!
//! Seeded fault injection for all of the above lives in
//! [`crate::chaos`].
//!
//! ```no_run
//! # use bml_grid::{GridRunner, GridSpec};
//! # fn demo(spec: &GridSpec) -> Result<(), String> {
//! let run = GridRunner::new(spec)
//!     .threads(8)
//!     .cache_dir("/tmp/bml-cache")
//!     .resume("out") // journal to out/, replaying any prior attempt
//!     .run()?;
//! eprintln!("cache: {} hits / {} lookups", run.cache.hits, run.cache.lookups);
//! for w in &run.warnings {
//!     eprintln!("warning: {}: {}", w.component, w.message);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! The pre-[`GridRunner`] entry point [`run_grid`] remains as a thin
//! wrapper (no cache, no sink) for callers that just want an outcome.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use bml_core::scheduler::paper_window_length;
use bml_obs::{Heartbeat, Recorder};
use bml_sim::exec::{run_cells_checked, CellConfig, CellJob};
use bml_sim::{CellSummary, SimConfig};
use serde::{Deserialize, Serialize};

use crate::cache::{self, CacheStats, CellCache, OptEntry};
use crate::chaos::{panic_digest, ChaosPolicy, STREAM_CACHE_IO, STREAM_SINK_IO};
use crate::journal::{self, CellEntry, Journal};
use crate::refine::RefineMeta;
use crate::spec::{CellCoords, GridSpec};
use crate::stream::CellSink;

/// Cells per fan-out batch: large enough to keep every worker busy,
/// small enough that the streaming sink checkpoints to disk at a steady
/// cadence on 10k+-cell grids.
const STREAM_BATCH: usize = 1024;

/// One executed cell: its coordinates, resolved dimension labels (in
/// [`crate::spec::DIMENSIONS`] order), and result summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// The cell's coordinates (flat index + per-dimension indices + seed).
    pub coords: CellCoords,
    /// Dimension labels, aligned with [`crate::spec::DIMENSIONS`].
    pub labels: Vec<String>,
    /// The scenario outcome summary.
    pub summary: CellSummary,
}

/// A quarantined cell: it exhausted its retry budget without producing a
/// result and was excluded from [`GridOutcome::cells`] instead of
/// aborting the run. Rendered into the artifact's `failed_cells` section
/// (schema `bml-grid/v5`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedCell {
    /// The cell's coordinates (flat index + per-dimension indices + seed).
    pub coords: CellCoords,
    /// Dimension labels, aligned with [`crate::spec::DIMENSIONS`].
    pub labels: Vec<String>,
    /// Execution attempts consumed (the full retry budget).
    pub attempts: u32,
    /// [`crate::chaos::panic_digest`] of the last panic message (the
    /// artifact carries the digest, not the free-form message).
    pub panic_digest: String,
}

/// Outcome of one grid run: the spec that produced it plus every cell in
/// enumeration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridOutcome {
    /// The executed spec.
    pub spec: GridSpec,
    /// Successfully executed cells, in enumeration order. With failures
    /// quarantined, indices into this vec are **not** enumeration
    /// indices — use [`CellRecord::coords`]`.index`.
    pub cells: Vec<CellRecord>,
    /// Quarantined cells, in enumeration order (empty on a clean run).
    /// `cells.len() + failed_cells.len()` always equals the spec's cell
    /// count: no cell is ever silently missing.
    pub failed_cells: Vec<FailedCell>,
}

/// A component degradation that happened during a run: the run completed
/// (in memory where necessary), but the named component stopped
/// persisting. Callers decide whether that is acceptable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunWarning {
    /// The degraded component: `"cache"`, `"sink"`, or `"journal"`.
    pub component: &'static str,
    /// What failed (the underlying I/O error).
    pub message: String,
}

/// A completed [`GridRunner`] run: the outcome plus the cache counters
/// (all zero when no cache directory was configured), any degradation
/// warnings, and the run's two-plane telemetry.
#[derive(Debug)]
pub struct GridRun {
    /// The executed grid.
    pub outcome: GridOutcome,
    /// Cell/optimum cache hit counters for this run.
    pub cache: CacheStats,
    /// Components that degraded during the run (empty = fully healthy).
    pub warnings: Vec<RunWarning>,
    /// Run telemetry (see [`bml_obs`]): the `counters` plane is merged in
    /// enumeration order and byte-identical across thread counts and
    /// cache temperature; everything host-dependent (cache hits, steals,
    /// retries, wall clock) lives on the `timings` plane.
    pub telemetry: Recorder,
}

/// Configures and executes one grid run (builder-style).
///
/// Replaces the old `run_grid(spec, threads)` positional call, which had
/// no room for the cache directory or the streaming sink without growing
/// a parameter list of `Option`s at every call site.
pub struct GridRunner<'a> {
    spec: &'a GridSpec,
    threads: Option<usize>,
    cache_dir: Option<PathBuf>,
    sink: Option<&'a mut dyn CellSink>,
    max_retries: u32,
    journal_dir: Option<PathBuf>,
    resume: bool,
    chaos: Option<ChaosPolicy>,
    kill_after: Option<usize>,
    heartbeat: Option<Duration>,
}

impl<'a> GridRunner<'a> {
    /// A runner for `spec` with no thread cap, no cache, no sink, no
    /// journal, no heartbeat, and one retry per panicking cell.
    pub fn new(spec: &'a GridSpec) -> Self {
        GridRunner {
            spec,
            threads: None,
            cache_dir: None,
            sink: None,
            max_retries: 1,
            journal_dir: None,
            resume: false,
            chaos: None,
            kill_after: None,
            heartbeat: None,
        }
    }

    /// Cap the worker-thread count (only changes wall-clock time, never
    /// results).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Cap the worker-thread count from an optional CLI flag (`None` =
    /// rayon's default).
    #[must_use]
    pub fn threads_opt(mut self, n: Option<usize>) -> Self {
        self.threads = n;
        self
    }

    /// Enable the content-addressed cell cache rooted at `dir`.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Enable the cache from an optional CLI flag.
    #[must_use]
    pub fn cache_dir_opt(mut self, dir: Option<impl Into<PathBuf>>) -> Self {
        self.cache_dir = dir.map(Into::into);
        self
    }

    /// Stream completed cells (enumeration order) into `sink`.
    #[must_use]
    pub fn sink(mut self, sink: &'a mut dyn CellSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Extra execution attempts granted to a panicking cell before it is
    /// quarantined (default 1: two attempts total). Retries replay the
    /// **same seed** — the budget absorbs injected and environmental
    /// faults, not nondeterminism.
    #[must_use]
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Journal every decided cell into `dir/`[`crate::journal::JOURNAL_NAME`],
    /// truncating any previous journal (this run starts from scratch).
    #[must_use]
    pub fn journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self.resume = false;
        self
    }

    /// Resume from the journal in `dir`: cells already decided by a
    /// previous (killed) run with the same spec, retry budget, and chaos
    /// schedule are replayed from disk instead of recomputed, and the
    /// journal keeps growing from there. An absent, corrupt-tailed, or
    /// mismatched journal degrades to a fresh run, never an error.
    #[must_use]
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self.resume = true;
        self
    }

    /// Inject faults on `policy`'s seeded schedule (see [`crate::chaos`]).
    #[must_use]
    pub fn chaos(mut self, policy: ChaosPolicy) -> Self {
        self.chaos = Some(policy);
        self
    }

    /// Abort the run (an `Err`, after journaling) once `n` cells have
    /// been emitted — a deterministic stand-in for `kill -9` at a record
    /// boundary, used by the crash-resume tests and the CI chaos job.
    #[must_use]
    pub fn kill_after_cells(mut self, n: usize) -> Self {
        self.kill_after = Some(n);
        self
    }

    /// Emit a throttled progress heartbeat — one single-line JSON event
    /// on stderr at most every `interval`, carrying cells done / total
    /// and the cells-per-second rate. Off by default (tests and library
    /// callers stay silent); the `grid` binary turns it on.
    #[must_use]
    pub fn heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = Some(interval);
        self
    }

    /// Execute every cell of the spec.
    ///
    /// Fails fast on an invalid spec (unknown trace source, unbuildable
    /// catalog mix, empty dimension) without running anything. Cell
    /// panics are retried and quarantined, I/O faults degrade with
    /// warnings (see the module docs); the only mid-run `Err` left is
    /// the deliberate [`GridRunner::kill_after_cells`] crash.
    pub fn run(self) -> Result<GridRun, String> {
        let spec = self.spec;
        let mut sink = self.sink;
        execute(
            spec,
            ExecOptions {
                threads: self.threads,
                cache_dir: self.cache_dir.as_deref(),
                refine_meta: None,
                max_retries: self.max_retries,
                journal_dir: self.journal_dir.as_deref(),
                resume: self.resume,
                chaos: self.chaos,
                kill_after: self.kill_after,
                heartbeat: self.heartbeat,
            },
            &mut sink,
        )
    }

    /// Adaptively refine the spec instead of running it exhaustively —
    /// see [`crate::refine`] for the bisection strategy and
    /// [`crate::refine::RefineBudget`] for the caps.
    pub fn refine(
        self,
        budget: &crate::refine::RefineBudget,
    ) -> Result<crate::refine::RefineOutcome, String> {
        crate::refine::drive(
            self.spec,
            self.threads,
            self.cache_dir.as_deref(),
            self.sink,
            budget,
        )
    }
}

/// Execute every cell of `spec`, `threads`-wide (`None` = rayon default),
/// without cache or sink. Thin compatibility wrapper over [`GridRunner`].
pub fn run_grid(spec: &GridSpec, threads: Option<usize>) -> Result<GridOutcome, String> {
    GridRunner::new(spec)
        .threads_opt(threads)
        .run()
        .map(|r| r.outcome)
}

/// Options of one [`execute`] call. The refinement driver uses the
/// defaults for everything past the cache (intermediate rounds are
/// re-entrant by construction — the cell cache makes them cheap — so the
/// journal, chaos, and kill knobs are not threaded through `refine`).
pub(crate) struct ExecOptions<'a> {
    pub threads: Option<usize>,
    pub cache_dir: Option<&'a std::path::Path>,
    pub refine_meta: Option<&'a RefineMeta>,
    pub max_retries: u32,
    pub journal_dir: Option<&'a std::path::Path>,
    pub resume: bool,
    pub chaos: Option<ChaosPolicy>,
    pub kill_after: Option<usize>,
    pub heartbeat: Option<Duration>,
}

impl Default for ExecOptions<'_> {
    fn default() -> Self {
        ExecOptions {
            threads: None,
            cache_dir: None,
            refine_meta: None,
            max_retries: 1,
            journal_dir: None,
            resume: false,
            chaos: None,
            kill_after: None,
            heartbeat: None,
        }
    }
}

/// The one execution path behind [`GridRunner::run`] and the refinement
/// driver. `opts.refine_meta` is embedded in the streamed prologue when
/// the stream is a refinement's final artifact.
pub(crate) fn execute(
    spec: &GridSpec,
    opts: ExecOptions<'_>,
    sink: &mut Option<&mut dyn CellSink>,
) -> Result<GridRun, String> {
    let threads = opts.threads;
    spec.validate()?;
    let traces: Vec<_> = spec
        .traces
        .iter()
        .map(|t| t.resolve())
        .collect::<Result<_, _>>()?;
    let catalogs: Vec<_> = spec
        .catalogs
        .iter()
        .map(|c| c.resolve())
        .collect::<Result<_, _>>()?;

    let mut stats = CacheStats::default();
    let mut telemetry = Recorder::new();
    let mut warnings: Vec<RunWarning> = Vec::new();
    // Disabled components stay disabled: after a write error there is no
    // telling what state the backing store is in, so the run degrades to
    // memory once and reports it, instead of hammering a dead disk.
    let mut cache_writes = true;
    let cache = match opts.cache_dir {
        Some(dir) => match CellCache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                warnings.push(RunWarning {
                    component: "cache",
                    message: format!("cache dir {}: {e}; running uncached", dir.display()),
                });
                None
            }
        },
        None => None,
    };
    // Digests are only needed for keying; skip the (trace-length) hashing
    // work entirely on uncached runs.
    let trace_digests: Vec<String> = match &cache {
        Some(_) => traces.iter().map(cache::trace_digest).collect(),
        None => Vec::new(),
    };
    let catalog_digests: Vec<String> = match &cache {
        Some(_) => catalogs.iter().map(cache::catalog_digest).collect(),
        None => Vec::new(),
    };

    // Optima first: one verified solve per distinct (trace, catalog,
    // split) triple — the only dimensions the optimum depends on. Solving
    // before the fan-out lets each record be stamped (and streamed)
    // complete the moment its cell finishes. Solver statistics travel
    // with the cached entry, so the merged `opt.*` counters are identical
    // on cold and warm caches (the triple order `(t, c, s)` never moves).
    let opt_t0 = Instant::now();
    let opt_options = bml_opt::OptOptions::default();
    let mut optima: BTreeMap<(usize, usize, usize), f64> = BTreeMap::new();
    for t in 0..traces.len() {
        for c in 0..catalogs.len() {
            for (s, &split) in spec.splits.iter().enumerate() {
                let cached = cache.as_ref().map(|cache| {
                    stats.opt_lookups += 1;
                    let key =
                        cache::opt_key(&trace_digests[t], &catalog_digests[c], split, &opt_options);
                    let hit = cache.load_opt(&key);
                    if hit.is_some() {
                        stats.opt_hits += 1;
                    }
                    (key, hit)
                });
                let entry = match &cached {
                    Some((_, Some(entry))) => *entry,
                    _ => {
                        let (sched, _) =
                            bml_opt::solve_verified(&traces[t], &catalogs[c], split, &opt_options)
                                .expect("exact DP cannot dead-end");
                        let entry = OptEntry::from_schedule(&sched);
                        if let (Some(cache), Some((key, None))) = (&cache, &cached) {
                            if cache_writes {
                                if let Err(e) = cache.store_opt(key, &entry) {
                                    warnings.push(RunWarning {
                                        component: "cache",
                                        message: format!("cache write: {e}; caching disabled"),
                                    });
                                    cache_writes = false;
                                }
                            }
                        }
                        entry
                    }
                };
                telemetry.count("opt.solves", 1);
                telemetry.count("opt.states", entry.n_states);
                telemetry.count("opt.segments", entry.n_segments);
                telemetry.count("opt.boundaries", entry.n_boundaries);
                telemetry.count("opt.states_pruned", entry.states_pruned);
                optima.insert((t, c, s), entry.energy_j);
            }
        }
    }
    telemetry.span("phase.opt_solve", opt_t0.elapsed());

    // The journal replays decisions from a killed run with the same
    // fingerprint (spec + schema + RNG keying + retry budget + chaos
    // schedule); anything else starts fresh. Journal I/O failures
    // degrade — the run still completes, it just loses resumability.
    let fingerprint = journal::run_fingerprint(spec, opts.chaos.as_ref(), opts.max_retries);
    let mut journaled: BTreeMap<usize, CellEntry> = BTreeMap::new();
    let mut journal: Option<Journal> = match opts.journal_dir {
        Some(dir) if opts.resume => match Journal::resume(dir, &fingerprint, opts.chaos) {
            Ok((j, entries)) => {
                journaled = entries;
                Some(j)
            }
            Err(e) => {
                warnings.push(RunWarning {
                    component: "journal",
                    message: format!("journal resume: {e}; running unjournaled"),
                });
                None
            }
        },
        Some(dir) => match Journal::create(dir, &fingerprint, opts.chaos) {
            Ok(j) => Some(j),
            Err(e) => {
                warnings.push(RunWarning {
                    component: "journal",
                    message: format!("journal create: {e}; running unjournaled"),
                });
                None
            }
        },
        None => None,
    };
    if !journaled.is_empty() {
        telemetry.host_count("journal.replayed_cells", journaled.len() as u64);
    }

    let coords = spec.cells();
    telemetry.count("cells.total", coords.len() as u64);
    if let Some(s) = sink.as_deref_mut() {
        if let Err(e) = s.begin(spec, coords.len(), opts.refine_meta) {
            warnings.push(RunWarning {
                component: "sink",
                message: format!("artifact stream: {e}; streaming disabled"),
            });
            *sink = None;
        }
    }

    let max_attempts = opts.max_retries + 1;
    let base = SimConfig::default();
    let mut cells: Vec<CellRecord> = Vec::with_capacity(coords.len());
    let mut failed_cells: Vec<FailedCell> = Vec::new();
    let mut emitted = 0usize;
    // Work-steal accounting is process-global in the vendored pool, so
    // snapshot around the fan-out and report the delta (host plane: the
    // numbers move with thread count and machine load by design).
    let pool_before = rayon::pool_stats();
    let cells_t0 = Instant::now();
    let mut heartbeat = opts.heartbeat.map(Heartbeat::new);
    for batch in coords.chunks(STREAM_BATCH) {
        let batch_t0 = Instant::now();
        // Journal and cache lookups first; the parallel fan-out then only
        // sees undecided cells (in enumeration order, so results align
        // back by index).
        let configs: Vec<CellConfig> = batch
            .iter()
            .map(|c| {
                let bml = &catalogs[c.catalog];
                let window = spec.windows[c.window];
                let split = spec.splits[c.split];
                let window_s = window.unwrap_or_else(|| paper_window_length(bml.candidates()));
                CellConfig {
                    scheduler: spec.schedulers[c.scheduler].resolve(window_s, split),
                    window,
                    noise_sigma: spec.noise_sigmas[c.sigma],
                    noise_seed: c.seed,
                    split,
                    stepping: spec.steppings[c.stepping],
                    ..CellConfig::from_sim(&base)
                }
            })
            .collect();
        let mut summaries: Vec<Option<CellSummary>> = vec![None; batch.len()];
        // Quarantine decisions: (attempts consumed, panic digest).
        let mut failures: Vec<Option<(u32, String)>> = vec![None; batch.len()];
        let mut keys: Vec<Option<String>> = vec![None; batch.len()];
        // Journal-replayed decisions are already durable; everything
        // decided *this* run gets appended.
        let mut from_journal: Vec<bool> = vec![false; batch.len()];
        for (i, (c, config)) in batch.iter().zip(&configs).enumerate() {
            if let Some(entry) = journaled.get(&c.index) {
                from_journal[i] = true;
                match entry {
                    CellEntry::Done(summary) => summaries[i] = Some(summary.clone()),
                    CellEntry::Failed {
                        attempts,
                        panic_digest,
                    } => failures[i] = Some((*attempts, panic_digest.clone())),
                }
                continue;
            }
            if let Some(cache) = &cache {
                stats.lookups += 1;
                let key =
                    cache::cell_key(&trace_digests[c.trace], &catalog_digests[c.catalog], config);
                let hit = cache.load_cell(&key);
                if hit.is_some() {
                    stats.hits += 1;
                }
                keys[i] = Some(key);
                summaries[i] = hit;
            }
        }

        // Isolated execution with bounded retry: every attempt replays
        // the same seed, and the chaos panic schedule is keyed on the
        // cell's enumeration index + attempt number — thread counts and
        // batch shapes can never move an injected fault.
        let mut pending: Vec<usize> = (0..batch.len())
            .filter(|&i| summaries[i].is_none() && failures[i].is_none())
            .collect();
        let mut computed: Vec<bool> = vec![false; batch.len()];
        let mut last_panic: Vec<Option<String>> = vec![None; batch.len()];
        for attempt in 1..=max_attempts {
            if pending.is_empty() {
                break;
            }
            let jobs: Vec<CellJob<'_>> = pending
                .iter()
                .map(|&i| CellJob {
                    trace: &traces[batch[i].trace],
                    bml: &catalogs[batch[i].catalog],
                    cell: configs[i].clone(),
                })
                .collect();
            let global: Vec<u64> = pending.iter().map(|&i| batch[i].index as u64).collect();
            if attempt > 1 {
                telemetry.host_count("retry.attempts", jobs.len() as u64);
            }
            if let Some(chaos) = opts.chaos.as_ref() {
                // The panic schedule is a pure function of (cell index,
                // attempt), so injections are countable without touching
                // the worker threads.
                let injected = global
                    .iter()
                    .filter(|&&g| chaos.should_panic(g, attempt).is_some())
                    .count();
                if injected > 0 {
                    telemetry.host_count("chaos.injections", injected as u64);
                }
            }
            let inject = opts
                .chaos
                .as_ref()
                .map(|chaos| move |pos: usize| chaos.should_panic(global[pos], attempt));
            let results = run_cells_checked(
                &jobs,
                threads,
                inject
                    .as_ref()
                    .map(|f| f as &(dyn Fn(usize) -> Option<String> + Sync)),
            );
            let mut still: Vec<usize> = Vec::new();
            for (pos, result) in results.into_iter().enumerate() {
                let i = pending[pos];
                match result {
                    Ok(r) => {
                        summaries[i] = Some(r.summary());
                        computed[i] = true;
                    }
                    Err(p) => {
                        last_panic[i] = Some(p.message);
                        still.push(i);
                    }
                }
            }
            pending = still;
        }
        for i in pending {
            let message = last_panic[i].take().unwrap_or_default();
            failures[i] = Some((max_attempts, panic_digest(&message)));
        }

        for (i, c) in batch.iter().enumerate() {
            // Persist computed results to the cache (journal hits and
            // cache hits are already durable there).
            if computed[i] && cache_writes {
                if let (Some(cache), Some(key), Some(summary)) = (&cache, &keys[i], &summaries[i]) {
                    let store = match opts
                        .chaos
                        .as_ref()
                        .and_then(|ch| ch.io_error(STREAM_CACHE_IO, c.index as u64))
                    {
                        Some(e) => Err(e),
                        None => cache.store_cell(key, summary),
                    };
                    if let Err(e) = store {
                        warnings.push(RunWarning {
                            component: "cache",
                            message: format!("cache write: {e}; caching disabled"),
                        });
                        cache_writes = false;
                    }
                }
            }
            // Journal the decision before emitting it anywhere else: once
            // appended, a kill cannot lose this cell.
            if !from_journal[i] {
                if let Some(j) = journal.as_mut() {
                    let entry = match (&summaries[i], &failures[i]) {
                        (Some(summary), _) => CellEntry::Done(summary.clone()),
                        (None, Some((attempts, digest))) => CellEntry::Failed {
                            attempts: *attempts,
                            panic_digest: digest.clone(),
                        },
                        (None, None) => unreachable!("every cell is decided by now"),
                    };
                    match j.append(c.index, &entry) {
                        Ok(bytes) => {
                            telemetry.host_count("journal.bytes_written", bytes as u64);
                        }
                        Err(e) => {
                            warnings.push(RunWarning {
                                component: "journal",
                                message: format!("journal write: {e}; journaling disabled"),
                            });
                            journal = None;
                        }
                    }
                }
            }

            match (summaries[i].take(), &failures[i]) {
                (Some(mut summary), _) => {
                    // Engine counters merge in enumeration order from the
                    // summary — which rides through cache and journal —
                    // so the totals are byte-identical whether the cell
                    // was computed, cache-served, or journal-replayed.
                    telemetry.count("cells.ok", 1);
                    telemetry.count("engine.reconfigurations", summary.reconfigurations);
                    telemetry.count("engine.nodes_switched_on", summary.nodes_switched_on);
                    telemetry.count("engine.nodes_switched_off", summary.nodes_switched_off);
                    telemetry.count("engine.instance_migrations", summary.instance_migrations);
                    telemetry.count("engine.violation_seconds", summary.violation_seconds);
                    telemetry.count("engine.segments_batched", summary.segments_batched);
                    telemetry.count("engine.events_skipped", summary.events_skipped);
                    telemetry.count("engine.fallback_unsegmented", summary.fallback_unsegmented);
                    let optimal = optima[&(c.trace, c.catalog, c.split)];
                    summary.optimal_energy_j = Some(optimal);
                    summary.optimality_gap = if optimal > 0.0 {
                        Some((summary.total_energy_j - optimal) / optimal)
                    } else {
                        None
                    };
                    let record = CellRecord {
                        labels: spec.cell_labels(c),
                        coords: *c,
                        summary,
                    };
                    if let Some(s) = sink.as_deref_mut() {
                        let write = match opts
                            .chaos
                            .as_ref()
                            .and_then(|ch| ch.io_error(STREAM_SINK_IO, c.index as u64))
                        {
                            Some(e) => Err(e),
                            None => s.cell(&record),
                        };
                        if let Err(e) = write {
                            warnings.push(RunWarning {
                                component: "sink",
                                message: format!("artifact stream: {e}; streaming disabled"),
                            });
                            *sink = None;
                        }
                    }
                    cells.push(record);
                }
                (None, Some((attempts, digest))) => {
                    telemetry.count("cells.failed", 1);
                    failed_cells.push(FailedCell {
                        labels: spec.cell_labels(c),
                        coords: *c,
                        attempts: *attempts,
                        panic_digest: digest.clone(),
                    });
                }
                (None, None) => unreachable!("every cell is decided by now"),
            }
            emitted += 1;
            if let Some(hb) = heartbeat.as_mut() {
                if hb.ready() {
                    let ms = u64::try_from(hb.elapsed().as_millis())
                        .unwrap_or(u64::MAX)
                        .max(1);
                    let rate = (emitted as u64).saturating_mul(1000) / ms;
                    eprintln!(
                        "{{\"event\":\"heartbeat\",\"cells_done\":{emitted},\"cells_total\":{},\"elapsed_ms\":{ms},\"cells_per_s\":{rate}}}",
                        coords.len()
                    );
                }
            }
            if opts.kill_after == Some(emitted) {
                return Err(format!(
                    "simulated crash: killed after {emitted} of {} cells (journal durable at {})",
                    coords.len(),
                    journal
                        .as_ref()
                        .map(|j| j.path().display().to_string())
                        .unwrap_or_else(|| "<none>".into()),
                ));
            }
        }
        telemetry.timings.observe_us(
            "batch.wall_us",
            u64::try_from(batch_t0.elapsed().as_micros()).unwrap_or(u64::MAX),
        );
    }
    telemetry.span("phase.cells", cells_t0.elapsed());
    let pool_after = rayon::pool_stats();
    telemetry.host_count(
        "pool.tasks",
        pool_after.tasks.saturating_sub(pool_before.tasks),
    );
    telemetry.host_count(
        "pool.steals",
        pool_after.steals.saturating_sub(pool_before.steals),
    );
    telemetry.host_count("cache.cell_lookups", stats.lookups);
    telemetry.host_count("cache.cell_hits", stats.hits);
    telemetry.host_count("cache.opt_lookups", stats.opt_lookups);
    telemetry.host_count("cache.opt_hits", stats.opt_hits);

    let outcome = GridOutcome {
        spec: spec.clone(),
        cells,
        failed_cells,
    };
    if let Some(s) = sink.as_deref_mut() {
        if let Err(e) = s.finish(&outcome) {
            warnings.push(RunWarning {
                component: "sink",
                message: format!("artifact stream: {e}; streaming disabled"),
            });
            *sink = None;
        }
    }
    Ok(GridRun {
        outcome,
        cache: stats,
        warnings,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CatalogSpec, SchedulerDim, TraceSpec};
    use bml_core::combination::SplitPolicy;
    use bml_sim::Stepping;

    fn small_spec() -> GridSpec {
        GridSpec {
            name: "unit".into(),
            root_seed: 7,
            traces: vec![TraceSpec {
                source: "square-bursts".into(),
                days: 1,
                seed: 0,
            }],
            catalogs: vec![CatalogSpec::paper_trio(), CatalogSpec::big_only()],
            schedulers: vec![SchedulerDim::Baseline],
            windows: vec![None],
            noise_sigmas: vec![0.0],
            splits: vec![SplitPolicy::EfficiencyGreedy],
            steppings: vec![Stepping::EventDriven],
        }
    }

    #[test]
    fn grid_runs_and_aligns_cells_with_enumeration() {
        let spec = small_spec();
        let out = run_grid(&spec, Some(2)).unwrap();
        assert_eq!(out.cells.len(), 2);
        for (i, c) in out.cells.iter().enumerate() {
            assert_eq!(c.coords.index, i);
            assert_eq!(c.labels.len(), crate::spec::DIMENSIONS.len());
            assert!(c.summary.total_energy_j > 0.0);
        }
        // The heterogeneous trio must beat the Big-only mix on a bursty
        // trace with deep lows.
        assert!(out.cells[0].summary.total_energy_j < out.cells[1].summary.total_energy_j);
    }

    #[test]
    fn every_cell_carries_a_verified_optimum() {
        let out = run_grid(&small_spec(), Some(1)).unwrap();
        for c in &out.cells {
            let opt = c.summary.optimal_energy_j.expect("optimum attached");
            let gap = c.summary.optimality_gap.expect("gap attached");
            assert!(opt > 0.0);
            // Noise-free cells serve in full, so the scheduler can never
            // beat the offline optimum.
            assert!(gap >= 0.0, "gap {gap} for {:?}", c.labels);
            assert!(
                (gap - (c.summary.total_energy_j - opt) / opt).abs() < 1e-12,
                "gap is derived from the two energies"
            );
        }
    }

    #[test]
    fn invalid_spec_fails_before_running() {
        let mut spec = small_spec();
        spec.traces[0].source = "bogus".into();
        assert!(run_grid(&spec, None).is_err());
        assert!(GridRunner::new(&spec).run().is_err());
    }

    #[test]
    fn runner_without_cache_reports_zero_stats() {
        let run = GridRunner::new(&small_spec()).threads(2).run().unwrap();
        assert_eq!(run.cache, CacheStats::default());
        assert_eq!(run.outcome.cells.len(), 2);
    }

    #[test]
    fn cached_run_equals_uncached_run() {
        let dir = std::env::temp_dir().join("bml_grid_executor_cache_test");
        std::fs::remove_dir_all(&dir).ok();
        let spec = small_spec();
        let plain = run_grid(&spec, Some(2)).unwrap();
        let cold = GridRunner::new(&spec)
            .threads(2)
            .cache_dir(&dir)
            .run()
            .unwrap();
        assert_eq!(cold.outcome, plain);
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.lookups, 2);
        let warm = GridRunner::new(&spec)
            .threads(1)
            .cache_dir(&dir)
            .run()
            .unwrap();
        assert_eq!(warm.outcome, plain, "warm cache must not change results");
        assert_eq!(warm.cache.hits, 2);
        assert_eq!(warm.cache.opt_hits, warm.cache.opt_lookups);
        // The deterministic telemetry plane must not notice the cache
        // temperature; the host plane is where the hits show up.
        assert_eq!(
            cold.telemetry.render_counters(),
            warm.telemetry.render_counters(),
            "counters are cache-temperature-blind"
        );
        assert_eq!(warm.telemetry.counters.get("cells.ok"), 2);
        assert_eq!(warm.telemetry.counters.get("cells.failed"), 0);
        assert_eq!(warm.telemetry.counters.get("cells.total"), 2);
        assert!(warm.telemetry.counters.get("engine.segments_batched") > 0);
        assert_eq!(warm.telemetry.timings.host_get("cache.cell_hits"), 2);
        assert_eq!(cold.telemetry.timings.host_get("cache.cell_hits"), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
