//! Deterministic chaos harness: seeded fault injection for grid runs.
//!
//! The simulation already injects machine crashes with a counter-based
//! `FailureModel` (`bml_sim`); this module applies the same discipline to
//! the **orchestration layer**. A [`ChaosPolicy`] injects three fault
//! classes on a seeded schedule:
//!
//! * **cell panics** — a cell's execution panics instead of returning,
//!   exercising the isolate/retry/quarantine path in the executor;
//! * **I/O errors** — cache, sink, or journal writes fail with an
//!   injected error, exercising graceful degradation to in-memory
//!   execution;
//! * **torn writes** — a journal record is cut short mid-write
//!   (simulated power loss), exercising the checksummed-framing recovery
//!   on resume.
//!
//! # Keying scheme
//!
//! Every decision is a pure function of `(seed, fault stream, cell
//! index, attempt)` via [`bml_core::rng::mix`] — the keying scheme the
//! whole workspace shares ([`bml_core::rng::KEYING_VERSION`]). Each
//! fault class draws from its own stream (the `STREAM_*` salts), so
//! enabling one class never shifts another's schedule. Nothing depends
//! on thread count, scheduling order, or wall clock: a chaos run is
//! exactly reproducible from its seed, which is what lets the
//! integration suite assert byte-identical artifacts at 1 and 8 threads
//! *with faults firing*.
//!
//! Cell-panic draws are keyed on the cell's **enumeration index** and
//! the **attempt number**, so a cell doomed on attempt 1 may succeed on
//! attempt 2 (transient fault) or keep failing (quarantine) — determined
//! by the seed, not by luck.

use std::io;

use bml_core::rng::{mix, splitmix64, unit_f64};

/// Fault stream of injected cell panics.
pub const STREAM_CELL_PANIC: u64 = 0x4345_4C4C; // "CELL"
/// Fault stream of injected artifact-sink write errors.
pub const STREAM_SINK_IO: u64 = 0x5349_4E4B; // "SINK"
/// Fault stream of injected cell-cache write errors.
pub const STREAM_CACHE_IO: u64 = 0x4341_4348; // "CACH"
/// Fault stream of injected journal write errors.
pub const STREAM_JOURNAL_IO: u64 = 0x4A52_4E4C; // "JRNL"
/// Fault stream of torn (short) journal writes.
pub const STREAM_TORN_WRITE: u64 = 0x544F_524E; // "TORN"

/// A seeded fault-injection schedule. All probabilities are per
/// opportunity (per cell attempt, per write) in `[0, 1]`; the default
/// policy injects nothing — enable classes explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Root seed every fault stream derives from.
    pub seed: u64,
    /// Probability that a cell execution attempt panics.
    pub panic_prob: f64,
    /// Probability that a cache/sink/journal write errors.
    pub io_error_prob: f64,
    /// Probability that a journal record write is torn short.
    pub torn_write_prob: f64,
}

impl ChaosPolicy {
    /// A policy with every fault class disabled; switch classes on with
    /// the builder methods.
    pub fn new(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            panic_prob: 0.0,
            io_error_prob: 0.0,
            torn_write_prob: 0.0,
        }
    }

    /// Enable cell-panic injection at probability `p` per attempt.
    #[must_use]
    pub fn panic_prob(mut self, p: f64) -> Self {
        self.panic_prob = p;
        self
    }

    /// Enable I/O-error injection at probability `p` per write.
    #[must_use]
    pub fn io_error_prob(mut self, p: f64) -> Self {
        self.io_error_prob = p;
        self
    }

    /// Enable torn journal writes at probability `p` per record.
    #[must_use]
    pub fn torn_write_prob(mut self, p: f64) -> Self {
        self.torn_write_prob = p;
        self
    }

    /// The uniform `[0, 1)` draw of `(stream, a, b)` — pure, so every
    /// decision is reproducible from the policy alone.
    fn roll(&self, stream: u64, a: u64, b: u64) -> f64 {
        unit_f64(mix(mix(self.seed ^ splitmix64(stream), a), b))
    }

    /// Should attempt `attempt` (1-based) of the cell at enumeration
    /// index `cell_index` panic? Returns the panic message to raise.
    pub fn should_panic(&self, cell_index: u64, attempt: u32) -> Option<String> {
        (self.roll(STREAM_CELL_PANIC, cell_index, u64::from(attempt)) < self.panic_prob)
            .then(|| format!("chaos: injected panic in cell {cell_index} (attempt {attempt})"))
    }

    /// Should write `counter` on fault stream `stream` fail? Returns the
    /// injected error.
    pub fn io_error(&self, stream: u64, counter: u64) -> Option<io::Error> {
        (self.roll(stream, counter, 0) < self.io_error_prob).then(|| {
            io::Error::other(format!(
                "chaos: injected I/O error (stream {stream:#x}, write {counter})"
            ))
        })
    }

    /// Should the journal record for cell `counter` be torn? Returns the
    /// number of bytes (strictly less than `full_len`) that reach disk.
    pub fn torn_len(&self, full_len: usize, counter: u64) -> Option<usize> {
        if full_len == 0 || self.roll(STREAM_TORN_WRITE, counter, 0) >= self.torn_write_prob {
            return None;
        }
        let frac = self.roll(STREAM_TORN_WRITE, counter, 1);
        Some(((full_len as f64 * frac) as usize).min(full_len - 1))
    }

    /// Canonical description folded into the journal fingerprint: a
    /// resumed run under a *different* chaos schedule would decide cells
    /// differently, so its journal must not be replayed.
    pub fn descriptor(&self) -> String {
        format!("{self:?}")
    }
}

/// 16-hex-character FNV-1a digest of a panic message. Artifacts carry
/// the digest rather than the raw message: panic text can contain
/// payload-dependent noise (addresses, paths), and the quarantine
/// section must stay byte-identical across hosts for identical faults.
pub fn panic_digest(message: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in message.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_the_policy() {
        let p = ChaosPolicy::new(42)
            .panic_prob(0.3)
            .io_error_prob(0.2)
            .torn_write_prob(0.5);
        for cell in 0..50u64 {
            for attempt in 1..=3u32 {
                assert_eq!(
                    p.should_panic(cell, attempt).is_some(),
                    p.should_panic(cell, attempt).is_some()
                );
            }
            assert_eq!(
                p.io_error(STREAM_SINK_IO, cell).is_some(),
                p.io_error(STREAM_SINK_IO, cell).is_some()
            );
            assert_eq!(p.torn_len(100, cell), p.torn_len(100, cell));
        }
    }

    #[test]
    fn probabilities_gate_each_class_independently() {
        let none = ChaosPolicy::new(7);
        let all = ChaosPolicy::new(7)
            .panic_prob(1.0)
            .io_error_prob(1.0)
            .torn_write_prob(1.0);
        for cell in 0..20u64 {
            assert!(none.should_panic(cell, 1).is_none());
            assert!(none.io_error(STREAM_CACHE_IO, cell).is_none());
            assert!(none.torn_len(64, cell).is_none());
            assert!(all.should_panic(cell, 1).is_some());
            assert!(all.io_error(STREAM_CACHE_IO, cell).is_some());
            let torn = all.torn_len(64, cell).unwrap();
            assert!(torn < 64, "a torn write must lose at least one byte");
        }
        // Zero-length writes cannot tear.
        assert_eq!(all.torn_len(0, 0), None);
    }

    #[test]
    fn panic_schedule_varies_by_cell_attempt_and_seed() {
        let p = ChaosPolicy::new(1).panic_prob(0.5);
        let per_cell: Vec<bool> = (0..64).map(|c| p.should_panic(c, 1).is_some()).collect();
        assert!(per_cell.iter().any(|&b| b) && per_cell.iter().any(|&b| !b));
        // Some doomed cell recovers on a later attempt (transient fault).
        let doomed: Vec<u64> = (0..64)
            .filter(|&c| p.should_panic(c, 1).is_some())
            .collect();
        assert!(
            doomed.iter().any(|&c| p.should_panic(c, 2).is_none()),
            "attempt number must reach the key"
        );
        // A different seed reshuffles the schedule.
        let q = ChaosPolicy::new(2).panic_prob(0.5);
        let other: Vec<bool> = (0..64).map(|c| q.should_panic(c, 1).is_some()).collect();
        assert_ne!(per_cell, other);
    }

    #[test]
    fn fault_streams_are_decorrelated() {
        let p = ChaosPolicy::new(9).io_error_prob(0.5);
        let sink: Vec<bool> = (0..64)
            .map(|c| p.io_error(STREAM_SINK_IO, c).is_some())
            .collect();
        let cache: Vec<bool> = (0..64)
            .map(|c| p.io_error(STREAM_CACHE_IO, c).is_some())
            .collect();
        let journal: Vec<bool> = (0..64)
            .map(|c| p.io_error(STREAM_JOURNAL_IO, c).is_some())
            .collect();
        assert_ne!(sink, cache);
        assert_ne!(cache, journal);
    }

    #[test]
    fn digest_is_stable_and_message_sensitive() {
        let d = panic_digest("chaos: injected panic in cell 3 (attempt 1)");
        assert_eq!(d.len(), 16);
        assert_eq!(
            d,
            panic_digest("chaos: injected panic in cell 3 (attempt 1)")
        );
        assert_ne!(
            d,
            panic_digest("chaos: injected panic in cell 4 (attempt 1)")
        );
        // Pinned: the digest is part of the artifact contract.
        assert_eq!(panic_digest(""), "cbf29ce484222325");
    }
}
