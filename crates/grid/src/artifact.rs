//! Versioned grid artifacts: `BENCH_grid.json` and `BENCH_grid.csv`.
//!
//! # Schema (`bml-grid/v5`)
//!
//! ```text
//! {
//!   "schema":   "bml-grid/v5",
//!   "name":     <spec name>,
//!   "root_seed": <u64>,
//!   "n_cells":  <usize>,
//!   "dimensions": { <dimension>: [<value label>, ...], ... },   // spec order
//!   "refine":   null | { "rounds", "budget_cells",
//!                        "seeded_cells", "final_cells" },
//!   "cells": [ { "index", "seed" (decimal string — full-range u64),
//!                <7 dimension labels>,
//!                "total_energy_j", "mean_power_w", "qos_shortfall",
//!                "violation_seconds", "worst_shortfall",
//!                "reconfigurations", "nodes_switched_on",
//!                "nodes_switched_off", "reconfig_energy_j",
//!                "instance_migrations",
//!                "stepping_effective",
//!                "optimal_energy_j", "optimality_gap" }, ... ], // enumeration order
//!   "failed_cells": [ { "index", "seed" (decimal string),
//!                       <7 dimension labels>, "status": "failed",
//!                       "attempts", "panic_digest" }, ... ],    // enumeration order
//!   "best_by_dimension": [ { "dimension", "value", "cell",
//!                            "total_energy_j", "qos_shortfall" }, ... ],
//!   "pareto_energy_vs_qos": [ <cell enumeration index>, ... ]  // ascending energy
//! }
//! ```
//!
//! `cells` holds every cell that produced a result; cells that exhausted
//! their retry budget are **quarantined** into `failed_cells` (empty on a
//! clean run) with the digest of their last panic message — together the
//! two arrays account for every cell of the spec. Accordingly,
//! `pareto_energy_vs_qos` and `best_by_dimension.cell` refer to cells by
//! **enumeration index** (the `index` field), not by position in the
//! `cells` array.
//!
//! The artifact deliberately records **no** wall-clock times, thread
//! counts, hostnames or dates: for a fixed spec and root seed the
//! rendered bytes are identical on any machine at any `--threads`
//! setting, with a cold or warm cell cache. Perf telemetry belongs next
//! to the artifact (CI logs, the grid binary's stderr), not inside it.
//! Bump the `schema` string on any field change; consumers match on it.
//!
//! # Streaming
//!
//! The render is factored into three byte-exact parts so the
//! [`crate::stream::StreamingArtifactWriter`] can append cells as they
//! complete instead of assembling the whole document at the end:
//! [`json_prologue`] (everything before the cells, known from the spec
//! alone), [`render_cell_json`] / [`render_cell_csv`] (one cell, no
//! separators), and [`json_epilogue`] (aggregates — they need every
//! cell, so they close the document). [`render_json`] and [`render_csv`]
//! are defined as the concatenation of those parts, which is what makes
//! "streamed file == in-memory render" a structural identity rather than
//! a test hope (the test pins it anyway).

use std::io;
use std::path::{Path, PathBuf};

use crate::aggregate::{pareto_frontier, per_dimension_bests};
use crate::executor::{CellRecord, FailedCell, GridOutcome};
use crate::json::Object;
use crate::refine::RefineMeta;
use crate::spec::{GridSpec, DIMENSIONS};

/// Current artifact schema identifier. v5 added the `failed_cells`
/// quarantine section (`[]` on clean runs) and redefined
/// `pareto_energy_vs_qos` entries as cell **enumeration** indices (on
/// clean runs the two coincide) — cell rows are byte-identical to v4.
/// v4 added the top-level `refine`
/// field (`null` for exhaustive runs; round/budget provenance for
/// artifacts produced by adaptive refinement) and is the first schema
/// emitted by the streaming writer — cell rows and all v3 fields are
/// unchanged. v3 added `optimal_energy_j` / `optimality_gap` (the
/// replay-verified offline optimum from `bml-opt`). v2 added
/// `stepping_effective` (the loop the engine actually ran).
pub const SCHEMA: &str = "bml-grid/v5";

/// JSON artifact file name.
pub const JSON_NAME: &str = "BENCH_grid.json";

/// CSV artifact file name.
pub const CSV_NAME: &str = "BENCH_grid.csv";

/// Everything before the first cell object: document header, dimension
/// value lists, refinement provenance, and the opening `"cells":[`.
/// Computable from the spec alone, so the streaming writer emits it
/// before any cell has run.
pub fn json_prologue(spec: &GridSpec, n_cells: usize, refine: Option<&RefineMeta>) -> String {
    let mut dims = Object::new();
    for (d, name) in DIMENSIONS.iter().enumerate() {
        dims = dims.strs(name, &spec.dimension_values(d));
    }
    let head = Object::new()
        .str("schema", SCHEMA)
        .str("name", &spec.name)
        .int("root_seed", spec.root_seed)
        .int("n_cells", n_cells as u64);
    let head = match refine {
        None => head.obj("dimensions", dims).null("refine"),
        Some(m) => head.obj("dimensions", dims).obj(
            "refine",
            Object::new()
                .int("rounds", m.rounds)
                .int("budget_cells", m.budget_cells)
                .int("seeded_cells", m.seeded_cells)
                .int("final_cells", m.final_cells),
        ),
    }
    .render();
    // Reopen the rendered header object to splice the cells array in.
    format!("{},\"cells\":[", &head[..head.len() - 1])
}

/// One cell as a JSON object (no surrounding separators).
pub fn render_cell_json(c: &CellRecord) -> String {
    // The seed is a full-range u64; emitted as a decimal string
    // because values above 2^53 silently lose precision in
    // double-based JSON consumers, and the seed's whole purpose
    // is exact cell reproduction.
    let mut o = Object::new()
        .int("index", c.coords.index as u64)
        .str("seed", &c.coords.seed.to_string());
    for (name, label) in DIMENSIONS.iter().zip(&c.labels) {
        o = o.str(name, label);
    }
    let s = &c.summary;
    o.num("total_energy_j", s.total_energy_j)
        .num("mean_power_w", s.mean_power_w)
        .num("qos_shortfall", s.qos_shortfall)
        .int("violation_seconds", s.violation_seconds)
        .num("worst_shortfall", s.worst_shortfall)
        .int("reconfigurations", s.reconfigurations)
        .int("nodes_switched_on", s.nodes_switched_on)
        .int("nodes_switched_off", s.nodes_switched_off)
        .num("reconfig_energy_j", s.reconfig_energy_j)
        .int("instance_migrations", s.instance_migrations)
        .str(
            "stepping_effective",
            crate::spec::stepping_label(s.stepping_effective),
        )
        // `num` renders non-finite as null, so absent optima
        // (and zero-optimum gaps) come out as JSON null.
        .num("optimal_energy_j", s.optimal_energy_j.unwrap_or(f64::NAN))
        .num("optimality_gap", s.optimality_gap.unwrap_or(f64::NAN))
        .render()
}

/// One quarantined cell as a JSON object for the `failed_cells` section:
/// coordinates and labels like a cell row, then the quarantine record
/// (attempts consumed and the digest of the last panic message).
pub fn render_failed_cell_json(f: &FailedCell) -> String {
    let mut o = Object::new()
        .int("index", f.coords.index as u64)
        .str("seed", &f.coords.seed.to_string());
    for (name, label) in DIMENSIONS.iter().zip(&f.labels) {
        o = o.str(name, label);
    }
    o.str("status", "failed")
        .int("attempts", u64::from(f.attempts))
        .str("panic_digest", &f.panic_digest)
        .render()
}

/// Everything after the last cell: the quarantine section and the
/// aggregates (per-dimension bests and the Pareto frontier — they need
/// the full cell set, which is why they close the streamed document) and
/// the closing brace.
pub fn json_epilogue(out: &GridOutcome) -> String {
    let failed: Vec<String> = out
        .failed_cells
        .iter()
        .map(render_failed_cell_json)
        .collect();
    let bests = per_dimension_bests(out)
        .into_iter()
        .map(|b| {
            Object::new()
                .str("dimension", &b.dimension)
                .str("value", &b.value)
                .int("cell", b.cell as u64)
                .num("total_energy_j", b.total_energy_j)
                .num("qos_shortfall", b.qos_shortfall)
        })
        .collect();
    // The frontier is positions into `cells`; publish enumeration indices
    // so quarantined cells can never shift what the entries refer to.
    let pareto: Vec<f64> = pareto_frontier(out)
        .iter()
        .map(|&i| out.cells[i].coords.index as f64)
        .collect();
    let tail = Object::new()
        .objs("best_by_dimension", bests)
        .nums("pareto_energy_vs_qos", &pareto)
        .render();
    // Close the cells array, then splice the quarantine + aggregate
    // fields in.
    format!("],\"failed_cells\":[{}],{}", failed.join(","), &tail[1..])
}

/// Render the versioned JSON artifact (no trailing newline) with
/// refinement provenance.
pub fn render_json_with(out: &GridOutcome, refine: Option<&RefineMeta>) -> String {
    let cells: Vec<String> = out.cells.iter().map(render_cell_json).collect();
    format!(
        "{}{}{}",
        json_prologue(&out.spec, out.cells.len(), refine),
        cells.join(","),
        json_epilogue(out)
    )
}

/// Render the versioned JSON artifact of an exhaustive run
/// (`"refine":null`; no trailing newline).
pub fn render_json(out: &GridOutcome) -> String {
    render_json_with(out, None)
}

/// CSV column headers: coordinates, labels, then the summary fields.
const CSV_HEADER: &str = "index,seed,trace,catalog,scheduler,window,noise_sigma,split,stepping,\
                          total_energy_j,mean_power_w,qos_shortfall,violation_seconds,\
                          worst_shortfall,reconfigurations,nodes_switched_on,nodes_switched_off,\
                          reconfig_energy_j,instance_migrations,stepping_effective,\
                          optimal_energy_j,optimality_gap";

/// The CSV header row, newline-terminated (the streaming prologue).
pub fn csv_header_line() -> String {
    format!("{CSV_HEADER}\n")
}

/// RFC-4180 field quoting: labels are free-form (custom catalog names may
/// hold commas or quotes), so any field containing a delimiter, quote or
/// newline is wrapped in quotes with inner quotes doubled.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One cell as a newline-terminated CSV row.
pub fn render_cell_csv(c: &CellRecord) -> String {
    let m = &c.summary;
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
        c.coords.index,
        c.coords.seed,
        csv_field(&c.labels[0]),
        csv_field(&c.labels[1]),
        csv_field(&c.labels[2]),
        csv_field(&c.labels[3]),
        csv_field(&c.labels[4]),
        csv_field(&c.labels[5]),
        csv_field(&c.labels[6]),
        m.total_energy_j,
        m.mean_power_w,
        m.qos_shortfall,
        m.violation_seconds,
        m.worst_shortfall,
        m.reconfigurations,
        m.nodes_switched_on,
        m.nodes_switched_off,
        m.reconfig_energy_j,
        m.instance_migrations,
        crate::spec::stepping_label(m.stepping_effective),
        // Empty cells (no optimality pass / zero optimum) stay empty —
        // CSV readers parse them as missing, not as zero.
        m.optimal_energy_j.map_or(String::new(), |v| v.to_string()),
        m.optimality_gap.map_or(String::new(), |v| v.to_string()),
    )
}

/// Render the flat per-cell CSV artifact (header + one row per cell).
pub fn render_csv(out: &GridOutcome) -> String {
    let mut s = csv_header_line();
    for c in &out.cells {
        s.push_str(&render_cell_csv(c));
    }
    s
}

/// Write both artifacts into `dir` (created if missing); returns the two
/// paths (JSON, CSV). The JSON gets a trailing newline, like every other
/// `BENCH_*.json` this repo emits. This is the one-shot path; long runs
/// stream instead (see [`crate::stream::StreamingArtifactWriter`], which
/// produces the same bytes incrementally).
pub fn write_artifacts(out: &GridOutcome, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(JSON_NAME);
    let csv_path = dir.join(CSV_NAME);
    std::fs::write(&json_path, render_json(out) + "\n")?;
    std::fs::write(&csv_path, render_csv(out))?;
    Ok((json_path, csv_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_grid;
    use crate::spec::{CatalogSpec, GridSpec, SchedulerDim, TraceSpec};
    use bml_core::combination::SplitPolicy;
    use bml_sim::Stepping;

    fn outcome() -> GridOutcome {
        let spec = GridSpec {
            name: "artifact-unit".into(),
            root_seed: 3,
            traces: vec![TraceSpec {
                source: "constant".into(),
                days: 1,
                seed: 0,
            }],
            catalogs: vec![CatalogSpec::paper_trio()],
            schedulers: vec![SchedulerDim::Baseline],
            windows: vec![None, Some(378)],
            noise_sigmas: vec![0.0],
            splits: vec![SplitPolicy::EfficiencyGreedy],
            steppings: vec![Stepping::EventDriven],
        };
        run_grid(&spec, Some(2)).unwrap()
    }

    #[test]
    fn json_has_schema_and_every_cell() {
        let out = outcome();
        let j = render_json(&out);
        assert!(j.starts_with("{\"schema\":\"bml-grid/v5\""));
        assert!(j.contains("\"name\":\"artifact-unit\""));
        assert!(j.contains("\"n_cells\":2"));
        assert!(j.contains("\"refine\":null"));
        assert!(
            j.contains("\"failed_cells\":[]"),
            "clean run: empty quarantine: {j}"
        );
        assert!(j.contains("\"pareto_energy_vs_qos\":["));
        // One energy field per cell plus one per best-by-dimension entry.
        let n_bests = per_dimension_bests(&out).len();
        assert_eq!(j.matches("\"total_energy_j\":").count(), 2 + n_bests);
    }

    #[test]
    fn render_is_the_concatenation_of_the_streaming_parts() {
        let out = outcome();
        let mut streamed = json_prologue(&out.spec, out.cells.len(), None);
        for (i, c) in out.cells.iter().enumerate() {
            if i > 0 {
                streamed.push(',');
            }
            streamed.push_str(&render_cell_json(c));
        }
        streamed.push_str(&json_epilogue(&out));
        assert_eq!(streamed, render_json(&out));
        let mut csv = csv_header_line();
        for c in &out.cells {
            csv.push_str(&render_cell_csv(c));
        }
        assert_eq!(csv, render_csv(&out));
    }

    #[test]
    fn refine_provenance_is_embedded_when_present() {
        let out = outcome();
        let meta = RefineMeta {
            rounds: 3,
            budget_cells: 10_000,
            seeded_cells: 144,
            final_cells: out.cells.len() as u64,
        };
        let j = render_json_with(&out, Some(&meta));
        assert!(j.contains(
            "\"refine\":{\"rounds\":3,\"budget_cells\":10000,\"seeded_cells\":144,\"final_cells\":2}"
        ));
        assert!(!j.contains("\"refine\":null"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_cell() {
        let out = outcome();
        let csv = render_csv(&out);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + out.cells.len());
        assert!(lines[0].starts_with("index,seed,trace,"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and rows must align"
        );
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn csv_quotes_labels_containing_delimiters() {
        let mut out = outcome();
        // Free-form catalog names are supported; a comma must not shift
        // the row's columns.
        out.cells[0].labels[1] = "big,medium \"custom\"".into();
        let csv = render_csv(&out);
        let row = csv.lines().nth(1).unwrap();
        assert!(
            row.contains("\"big,medium \"\"custom\"\"\""),
            "label not quoted: {row}"
        );
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn artifact_records_effective_stepping() {
        let out = outcome();
        let j = render_json(&out);
        assert_eq!(
            j.matches("\"stepping_effective\":\"event\"").count(),
            out.cells.len(),
            "every event-requested cell must report the event path: {j}"
        );
        let csv = render_csv(&out);
        let col = CSV_HEADER
            .split(',')
            .position(|h| h == "stepping_effective")
            .unwrap();
        for row in csv.lines().skip(1) {
            assert_eq!(
                row.split(',').nth(col),
                Some("event"),
                "unexpected fallback row: {row}"
            );
        }
    }

    #[test]
    fn v4_carries_the_optimality_columns() {
        let out = outcome();
        let j = render_json(&out);
        assert_eq!(
            j.matches("\"optimal_energy_j\":").count(),
            out.cells.len(),
            "one optimum per cell: {j}"
        );
        assert_eq!(j.matches("\"optimality_gap\":").count(), out.cells.len());
        assert!(
            !j.contains("\"optimal_energy_j\":null"),
            "run_grid attaches an optimum to every cell"
        );
        let csv = render_csv(&out);
        let header: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
        assert_eq!(header[header.len() - 2], "optimal_energy_j");
        assert_eq!(header[header.len() - 1], "optimality_gap");
        for row in csv.lines().skip(1) {
            let fields: Vec<&str> = row.split(',').collect();
            assert_eq!(fields.len(), header.len());
            let opt: f64 = fields[fields.len() - 2].parse().unwrap();
            let gap: f64 = fields[fields.len() - 1].parse().unwrap();
            assert!(opt > 0.0);
            assert!(gap >= 0.0, "noise-free cells cannot beat the optimum");
        }
    }

    #[test]
    fn v5_quarantine_section_and_index_based_pareto() {
        let mut out = outcome();
        // Quarantine the first cell: it moves from `cells` to
        // `failed_cells`, and the frontier must keep referring to the
        // surviving cell by its enumeration index (1), not its new
        // position in the array (0).
        let gone = out.cells.remove(0);
        out.failed_cells.push(FailedCell {
            coords: gone.coords,
            labels: gone.labels.clone(),
            attempts: 2,
            panic_digest: crate::chaos::panic_digest("boom"),
        });
        let j = render_json(&out);
        assert!(j.contains("\"failed_cells\":[{\"index\":0,"), "{j}");
        assert!(j.contains("\"status\":\"failed\",\"attempts\":2,\"panic_digest\":\""));
        assert!(
            j.contains("\"pareto_energy_vs_qos\":[1]"),
            "frontier must publish enumeration indices: {j}"
        );
        // Both arrays together account for every cell of the spec.
        assert_eq!(out.cells.len() + out.failed_cells.len(), 2);
        // The quarantined row carries the full label set, like a cell row.
        let failed = render_failed_cell_json(&out.failed_cells[0]);
        for name in DIMENSIONS {
            assert!(failed.contains(&format!("\"{name}\":\"")), "{failed}");
        }
    }

    #[test]
    fn json_seed_is_a_decimal_string() {
        let out = outcome();
        let j = render_json(&out);
        let expected = format!("\"seed\":\"{}\"", out.cells[0].coords.seed);
        assert!(j.contains(&expected), "{j}");
    }

    #[test]
    fn artifacts_write_to_directory() {
        let out = outcome();
        let dir = std::env::temp_dir().join("bml_grid_artifact_test");
        let (j, c) = write_artifacts(&out, &dir).unwrap();
        let bytes = std::fs::read_to_string(&j).unwrap();
        assert_eq!(bytes, render_json(&out) + "\n");
        assert_eq!(std::fs::read_to_string(&c).unwrap(), render_csv(&out));
        std::fs::remove_dir_all(&dir).ok();
    }
}
