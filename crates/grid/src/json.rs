//! Minimal ordered-JSON emission for the `BENCH_*` artifacts.
//!
//! The vendored serde stand-in deliberately does not serialize, so the
//! artifact writers (the grid's `BENCH_grid.json`, the bench binaries'
//! perf-trajectory summaries) render JSON by hand through this ordered
//! object builder. Field order is the insertion order and every value is
//! formatted deterministically — two renders of equal data are equal
//! *bytes*, which is what the grid's thread-count-independence guarantee
//! is stated against. Lives here (rather than in `bml-bench`) so both the
//! grid artifact writer and the bench binaries can use it; `bml-bench`
//! re-exports it as `bml_bench::json`.

/// An ordered JSON object under construction.
#[derive(Debug, Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a string field (escaped).
    #[must_use]
    pub fn str(mut self, key: &str, v: &str) -> Self {
        let escaped = escape(v);
        self.fields.push((key.into(), format!("\"{escaped}\"")));
        self
    }

    /// Add an integer field.
    #[must_use]
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.into(), v.to_string()));
        self
    }

    /// Add a number field (`null` when not finite).
    #[must_use]
    pub fn num(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.into(), fmt_f64(v)));
        self
    }

    /// Add an array of numbers.
    #[must_use]
    pub fn nums(mut self, key: &str, vs: &[f64]) -> Self {
        let body: Vec<String> = vs.iter().map(|&v| fmt_f64(v)).collect();
        self.fields
            .push((key.into(), format!("[{}]", body.join(","))));
        self
    }

    /// Add an array of strings (each escaped).
    #[must_use]
    pub fn strs(mut self, key: &str, vs: &[String]) -> Self {
        let body: Vec<String> = vs.iter().map(|v| format!("\"{}\"", escape(v))).collect();
        self.fields
            .push((key.into(), format!("[{}]", body.join(","))));
        self
    }

    /// Add a literal `null` field.
    #[must_use]
    pub fn null(mut self, key: &str) -> Self {
        self.fields.push((key.into(), "null".into()));
        self
    }

    /// Add a nested object.
    #[must_use]
    pub fn obj(mut self, key: &str, v: Object) -> Self {
        self.fields.push((key.into(), v.render()));
        self
    }

    /// Add an array of nested objects.
    #[must_use]
    pub fn objs(mut self, key: &str, vs: Vec<Object>) -> Self {
        let body: Vec<String> = vs.into_iter().map(|o| o.render()).collect();
        self.fields
            .push((key.into(), format!("[{}]", body.join(","))));
        self
    }

    /// Serialize to a JSON string.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Write to `path` with a trailing newline.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render() + "\n")
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_ordered_fields() {
        let o = Object::new()
            .str("name", "fig5 \"smoke\"")
            .int("days", 2)
            .num("energy", 1.5)
            .num("bad", f64::NAN)
            .null("refine")
            .nums("daily", &[1.0, 2.5])
            .strs("tags", &["a".into(), "b\"c".into()])
            .obj("stats", Object::new().num("mean", 0.25))
            .objs("rows", vec![Object::new().int("d", 0)]);
        assert_eq!(
            o.render(),
            "{\"name\":\"fig5 \\\"smoke\\\"\",\"days\":2,\"energy\":1.5,\"bad\":null,\
             \"refine\":null,\"daily\":[1,2.5],\"tags\":[\"a\",\"b\\\"c\"],\
             \"stats\":{\"mean\":0.25},\"rows\":[{\"d\":0}]}"
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\nb\tc\u{1}"), "a\\nb\\tc\\u0001");
    }
}
