//! Grid aggregation: per-dimension bests and the energy-vs-QoS Pareto
//! frontier.
//!
//! Both aggregations are pure functions of the cell summaries and fully
//! deterministic (ties broken by cell index), so they can be embedded in
//! the byte-stable artifact.

use bml_sim::CellSummary;
use serde::{Deserialize, Serialize};

use crate::executor::GridOutcome;
use crate::spec::DIMENSIONS;

/// The best cell (lowest total energy, QoS shortfall as tie-break) among
/// all cells sharing one value of one dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionBest {
    /// Dimension name (one of [`DIMENSIONS`]).
    pub dimension: String,
    /// The dimension value this entry covers.
    pub value: String,
    /// Flat index of the winning cell.
    pub cell: usize,
    /// The winning cell's total energy (J).
    pub total_energy_j: f64,
    /// The winning cell's QoS shortfall fraction.
    pub qos_shortfall: f64,
}

/// Ordering key: energy, then shortfall, then index — a total order even
/// with equal floats, so winners are unique and deterministic.
fn better(a: &CellSummary, ai: usize, b: &CellSummary, bi: usize) -> bool {
    (a.total_energy_j, a.qos_shortfall, ai) < (b.total_energy_j, b.qos_shortfall, bi)
}

/// For every value of every dimension, the best cell carrying that value.
/// Entries are ordered dimension-major, values in spec order.
pub fn per_dimension_bests(out: &GridOutcome) -> Vec<DimensionBest> {
    let mut bests = Vec::new();
    for (d, name) in DIMENSIONS.iter().enumerate() {
        for value in out.spec.dimension_values(d) {
            let mut winner: Option<&crate::executor::CellRecord> = None;
            for c in out.cells.iter().filter(|c| c.labels[d] == value) {
                let replace = match winner {
                    None => true,
                    Some(w) => better(&c.summary, c.coords.index, &w.summary, w.coords.index),
                };
                if replace {
                    winner = Some(c);
                }
            }
            if let Some(w) = winner {
                bests.push(DimensionBest {
                    dimension: (*name).into(),
                    value,
                    cell: w.coords.index,
                    total_energy_j: w.summary.total_energy_j,
                    qos_shortfall: w.summary.qos_shortfall,
                });
            }
        }
    }
    bests
}

/// The Pareto frontier of the energy-vs-QoS trade-off: cells not
/// dominated by any other cell (dominated = some cell is no worse on both
/// total energy and QoS shortfall and strictly better on at least one).
/// Returned as positions into `out.cells`, sorted by ascending energy
/// (shortfall, then position, as tie-breaks). Positions equal enumeration
/// indices only when no cell is quarantined — artifact renderers map
/// through `coords.index` before publishing.
pub fn pareto_frontier(out: &GridOutcome) -> Vec<usize> {
    let cells = &out.cells;
    let mut frontier: Vec<usize> = (0..cells.len())
        .filter(|&i| {
            let si = &cells[i].summary;
            !cells.iter().enumerate().any(|(j, cj)| {
                let sj = &cj.summary;
                j != i
                    && sj.total_energy_j <= si.total_energy_j
                    && sj.qos_shortfall <= si.qos_shortfall
                    && (sj.total_energy_j < si.total_energy_j
                        || sj.qos_shortfall < si.qos_shortfall)
            })
        })
        .collect();
    frontier.sort_by(|&a, &b| {
        let (sa, sb) = (&cells[a].summary, &cells[b].summary);
        (sa.total_energy_j, sa.qos_shortfall, a)
            .partial_cmp(&(sb.total_energy_j, sb.qos_shortfall, b))
            .expect("summaries hold finite floats")
    });
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::CellRecord;
    use crate::spec::{CatalogSpec, GridSpec, SchedulerDim, TraceSpec};
    use bml_core::combination::SplitPolicy;
    use bml_sim::Stepping;

    /// Hand-build an outcome with known energies/shortfalls along a
    /// 1 x 1 x 1 x 2 x 2 x 1 x 1 grid (windows x sigmas).
    fn outcome(points: [(f64, f64); 4]) -> GridOutcome {
        let spec = GridSpec {
            name: "agg".into(),
            root_seed: 0,
            traces: vec![TraceSpec {
                source: "constant".into(),
                days: 1,
                seed: 0,
            }],
            catalogs: vec![CatalogSpec::paper_trio()],
            schedulers: vec![SchedulerDim::Baseline],
            windows: vec![None, Some(60)],
            noise_sigmas: vec![0.0, 0.1],
            splits: vec![SplitPolicy::EfficiencyGreedy],
            steppings: vec![Stepping::EventDriven],
        };
        let cells = spec
            .cells()
            .into_iter()
            .map(|coords| {
                let (e, q) = points[coords.index];
                CellRecord {
                    labels: spec.cell_labels(&coords),
                    coords,
                    summary: bml_sim::CellSummary {
                        total_energy_j: e,
                        mean_power_w: 0.0,
                        qos_shortfall: q,
                        violation_seconds: 0,
                        worst_shortfall: 0.0,
                        reconfigurations: 0,
                        nodes_switched_on: 0,
                        nodes_switched_off: 0,
                        reconfig_energy_j: 0.0,
                        instance_migrations: 0,
                        segments_batched: 0,
                        events_skipped: 0,
                        fallback_unsegmented: 0,
                        stepping_effective: Stepping::EventDriven,
                        optimal_energy_j: None,
                        optimality_gap: None,
                    },
                }
            })
            .collect();
        GridOutcome {
            spec,
            cells,
            failed_cells: Vec::new(),
        }
    }

    #[test]
    fn pareto_keeps_only_non_dominated() {
        // Cell 0: cheap but lossy; cell 1: dominated by 0 (worse on
        // both); cell 2: expensive and perfect; cell 3: dominated by 2.
        let out = outcome([(10.0, 0.5), (11.0, 0.6), (30.0, 0.0), (31.0, 0.2)]);
        assert_eq!(pareto_frontier(&out), vec![0, 2]);
    }

    #[test]
    fn pareto_duplicates_both_survive_in_index_order() {
        let out = outcome([(10.0, 0.1), (10.0, 0.1), (50.0, 0.0), (9.0, 0.4)]);
        assert_eq!(pareto_frontier(&out), vec![3, 0, 1, 2]);
    }

    #[test]
    fn bests_cover_every_dimension_value() {
        let out = outcome([(10.0, 0.5), (11.0, 0.6), (8.0, 0.0), (31.0, 0.2)]);
        let bests = per_dimension_bests(&out);
        // One entry per (dimension, value): 5 single-valued dimensions +
        // windows (2) + sigmas (2) = 9.
        assert_eq!(bests.len(), 9);
        // Window "paper" covers cells {0, 1} -> best is 0; window "60s"
        // covers {2, 3} -> best is 2 (also the global best).
        let windows: Vec<_> = bests.iter().filter(|b| b.dimension == "window").collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].value, "paper");
        assert_eq!(windows[0].cell, 0);
        assert_eq!(windows[1].value, "60s");
        assert_eq!(windows[1].cell, 2);
        // Single-valued dimensions all elect the global best (cell 2).
        let trace_best = bests.iter().find(|b| b.dimension == "trace").unwrap();
        assert_eq!(trace_best.cell, 2);
    }

    #[test]
    fn bests_tie_break_on_shortfall_then_index() {
        let out = outcome([(10.0, 0.3), (10.0, 0.1), (10.0, 0.1), (99.0, 0.0)]);
        let trace_best = per_dimension_bests(&out)
            .into_iter()
            .find(|b| b.dimension == "trace")
            .unwrap();
        assert_eq!(trace_best.cell, 1);
    }
}
