//! Adaptive grid refinement: spend the cell budget near the Pareto
//! frontier instead of carpeting the cross-product.
//!
//! An exhaustive grid over fine-grained window and noise dimensions
//! wastes most of its cells deep inside dominated regions. The
//! refinement driver starts from a **coarse seed grid**, then repeats:
//!
//! 1. run the current grid (through the shared executor, so the cell
//!    cache makes revisited cells free);
//! 2. find the energy-vs-QoS Pareto frontier (duplicate frontier points
//!    collapse to one representative — ties carry no signal);
//! 3. for each *numeric* dimension (windows in seconds, noise sigmas):
//!    keep the values that appear on the frontier plus their immediate
//!    sorted-order neighbors, **drop everything else** (dominated
//!    regions), and **bisect** each frontier-to-neighbor interval by
//!    inserting its midpoint;
//! 4. stop when the dimensions stop changing (convergence), the round
//!    cap is hit, or the next grid would exceed the cell budget.
//!
//! The paper's `None` window (the 2x-longest-boot rule) is categorical,
//! not numeric — it is never dropped or bisected. Everything is
//! deterministic: same seed spec + budget → same rounds, same final
//! spec, same artifact bytes.
//!
//! # Caching caveat
//!
//! Per-cell seeds derive from enumeration *position* (bml-grid/v1
//! compatibility; stepping twins must share seeds), and refinement
//! reshapes the grid between rounds — so a **noisy** cell that survives
//! into a differently-shaped round draws a new seed and misses the
//! cache. Clean cells (sigma 0) canonicalize the unused seed away (see
//! [`bml_sim::exec::CellConfig::stable_descriptor`]) and always hit.

use std::collections::BTreeSet;

use crate::aggregate::pareto_frontier;
use crate::cache::CacheStats;
use crate::executor::{execute, ExecOptions, GridOutcome};
use crate::spec::GridSpec;
use crate::stream::CellSink;

/// Caps on one refinement drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineBudget {
    /// Maximum refinement rounds after the seed run.
    pub rounds: u32,
    /// Hard cap on any single round's cell count: a refined grid whose
    /// cross-product would exceed this is not run (the drive stops with
    /// the last completed round's outcome).
    pub max_cells: usize,
}

impl Default for RefineBudget {
    fn default() -> Self {
        RefineBudget {
            rounds: 4,
            max_cells: 20_000,
        }
    }
}

/// Refinement provenance embedded in the final artifact's `refine` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineMeta {
    /// Refinement rounds executed after the seed run.
    pub rounds: u64,
    /// The configured per-round cell cap.
    pub budget_cells: u64,
    /// Cell count of the seed grid.
    pub seeded_cells: u64,
    /// Cell count of the final grid (the artifact's cells).
    pub final_cells: u64,
}

/// One executed round's shape, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    /// Round number (0 = the seed grid).
    pub round: u32,
    /// Cells in this round's grid.
    pub n_cells: usize,
    /// Window-dimension values in this round's grid.
    pub n_windows: usize,
    /// Sigma-dimension values in this round's grid.
    pub n_sigmas: usize,
}

/// A completed refinement drive.
#[derive(Debug)]
pub struct RefineOutcome {
    /// The final round's grid outcome (what the artifact renders).
    pub outcome: GridOutcome,
    /// Provenance for the artifact's `refine` field.
    pub meta: RefineMeta,
    /// Cache counters accumulated across every round.
    pub cache: CacheStats,
    /// Telemetry accumulated across every round (both planes absorbed in
    /// round order; see [`bml_obs::Recorder::absorb`]).
    pub telemetry: bml_obs::Recorder,
    /// Shape of each executed round, seed first.
    pub rounds: Vec<RoundReport>,
}

/// The drive loop behind [`crate::executor::GridRunner::refine`].
///
/// Intermediate rounds run without a sink; the final outcome is replayed
/// through `sink` (begin → cells in enumeration order → finish) with the
/// [`RefineMeta`] embedded, so the streamed artifact carries its own
/// provenance and is byte-identical to an in-memory render of the final
/// outcome.
pub(crate) fn drive(
    seed: &GridSpec,
    threads: Option<usize>,
    cache_dir: Option<&std::path::Path>,
    sink: Option<&mut dyn CellSink>,
    budget: &RefineBudget,
) -> Result<RefineOutcome, String> {
    let mut no_sink: Option<&mut dyn CellSink> = None;
    let mut spec = seed.clone();
    let mut run = execute(
        &spec,
        ExecOptions {
            threads,
            cache_dir,
            ..ExecOptions::default()
        },
        &mut no_sink,
    )?;
    let seeded_cells = run.outcome.cells.len() as u64;
    let mut stats = run.cache;
    let mut telemetry = std::mem::take(&mut run.telemetry);
    let mut rounds = vec![RoundReport {
        round: 0,
        n_cells: run.outcome.cells.len(),
        n_windows: spec.windows.len(),
        n_sigmas: spec.noise_sigmas.len(),
    }];

    while rounds.len() as u32 <= budget.rounds {
        let Some(next) = refine_spec(&spec, &run.outcome) else {
            break; // converged: the frontier no longer moves the dims
        };
        if next.n_cells() > budget.max_cells {
            break; // over budget: keep the last completed round
        }
        spec = next;
        let r = execute(
            &spec,
            ExecOptions {
                threads,
                cache_dir,
                ..ExecOptions::default()
            },
            &mut no_sink,
        )?;
        stats.absorb(r.cache);
        telemetry.absorb(&r.telemetry);
        run = r;
        rounds.push(RoundReport {
            round: rounds.len() as u32,
            n_cells: run.outcome.cells.len(),
            n_windows: spec.windows.len(),
            n_sigmas: spec.noise_sigmas.len(),
        });
    }

    let meta = RefineMeta {
        rounds: rounds.len() as u64 - 1,
        budget_cells: budget.max_cells as u64,
        seeded_cells,
        final_cells: run.outcome.cells.len() as u64,
    };
    if let Some(sink) = sink {
        sink.begin(&run.outcome.spec, run.outcome.cells.len(), Some(&meta))
            .map_err(|e| format!("artifact stream: {e}"))?;
        for record in &run.outcome.cells {
            sink.cell(record)
                .map_err(|e| format!("artifact stream: {e}"))?;
        }
        sink.finish(&run.outcome)
            .map_err(|e| format!("artifact stream: {e}"))?;
    }
    Ok(RefineOutcome {
        outcome: run.outcome,
        meta,
        cache: stats,
        telemetry,
        rounds,
    })
}

/// The refined spec for the next round, or `None` when the numeric
/// dimensions are already stable (convergence).
fn refine_spec(spec: &GridSpec, outcome: &GridOutcome) -> Option<GridSpec> {
    // Duplicate frontier points (identical energy AND shortfall) are
    // mutually non-dominating, so `pareto_frontier` keeps them all — but
    // they carry no refinement signal: on a flat objective every value
    // ties onto the frontier and "keep + bisect everything" would grow
    // the grid instead of shrinking it. Collapse each distinct objective
    // point to its first cell and let those guide the bisection.
    let mut seen_points: BTreeSet<(u64, u64)> = BTreeSet::new();
    let guides: Vec<usize> = pareto_frontier(outcome)
        .into_iter()
        .filter(|&i| {
            let s = &outcome.cells[i].summary;
            seen_points.insert((s.total_energy_j.to_bits(), s.qos_shortfall.to_bits()))
        })
        .collect();
    let frontier_windows: BTreeSet<Option<u64>> = guides
        .iter()
        .map(|&i| spec.windows[outcome.cells[i].coords.window])
        .collect();
    let frontier_sigmas: BTreeSet<u64> = guides
        .iter()
        .map(|&i| spec.noise_sigmas[outcome.cells[i].coords.sigma].to_bits())
        .collect();

    let windows = refine_windows(&spec.windows, &frontier_windows);
    let sigmas = refine_sigmas(&spec.noise_sigmas, &frontier_sigmas);

    let same_windows: bool =
        windows.iter().collect::<BTreeSet<_>>() == spec.windows.iter().collect::<BTreeSet<_>>();
    let same_sigmas: bool = sigmas.iter().map(|s| s.to_bits()).collect::<BTreeSet<_>>()
        == spec.noise_sigmas.iter().map(|s| s.to_bits()).collect();
    if same_windows && same_sigmas {
        return None;
    }
    Some(GridSpec {
        windows,
        noise_sigmas: sigmas,
        ..spec.clone()
    })
}

/// Keep frontier window values and their sorted neighbors, drop the
/// rest, bisect frontier-adjacent intervals (integer midpoints). `None`
/// (the paper's rule) is categorical: kept when present, never bisected.
fn refine_windows(old: &[Option<u64>], frontier: &BTreeSet<Option<u64>>) -> Vec<Option<u64>> {
    let nums: BTreeSet<u64> = old.iter().filter_map(|&w| w).collect();
    let nums: Vec<u64> = nums.into_iter().collect();
    let frontier_nums: BTreeSet<u64> = frontier.iter().filter_map(|&w| w).collect();
    let mut keep: BTreeSet<u64> = BTreeSet::new();
    for &v in &frontier_nums {
        let i = nums
            .binary_search(&v)
            .expect("frontier value is in the grid");
        keep.insert(v);
        for n in [i.checked_sub(1).map(|j| nums[j]), nums.get(i + 1).copied()]
            .into_iter()
            .flatten()
        {
            keep.insert(n);
            let mid = v.midpoint(n);
            if mid != v && mid != n {
                keep.insert(mid);
            }
        }
    }
    let mut out: Vec<Option<u64>> = Vec::new();
    if old.contains(&None) {
        out.push(None);
    }
    out.extend(keep.into_iter().map(Some));
    if out.is_empty() {
        // Frontier entirely on `None` with no `None` in the dim cannot
        // happen, but never return an empty dimension.
        return old.to_vec();
    }
    out
}

/// Sigma counterpart of [`refine_windows`]: all values are numeric;
/// midpoints only when the interval is meaningfully wide.
fn refine_sigmas(old: &[f64], frontier_bits: &BTreeSet<u64>) -> Vec<f64> {
    let nums: BTreeSet<u64> = old.iter().map(|s| s.to_bits()).collect();
    let nums: Vec<f64> = nums.into_iter().map(f64::from_bits).collect();
    // Validated sigmas are finite and non-negative, so bit order == value
    // order and a sorted Vec<f64> is safe to binary-search by bits.
    let mut keep: BTreeSet<u64> = BTreeSet::new();
    for &vb in frontier_bits {
        let v = f64::from_bits(vb);
        let i = nums
            .iter()
            .position(|&s| s.to_bits() == vb)
            .expect("frontier value is in the grid");
        keep.insert(vb);
        for n in [i.checked_sub(1).map(|j| nums[j]), nums.get(i + 1).copied()]
            .into_iter()
            .flatten()
        {
            keep.insert(n.to_bits());
            if (n - v).abs() > 1e-6 {
                keep.insert(((v + n) / 2.0).to_bits());
            }
        }
    }
    if keep.is_empty() {
        return old.to_vec();
    }
    keep.into_iter().map(f64::from_bits).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::GridRunner;
    use crate::spec::{CatalogSpec, SchedulerDim, TraceSpec};
    use bml_core::combination::SplitPolicy;
    use bml_sim::Stepping;

    #[test]
    fn windows_refine_drops_dominated_and_bisects() {
        let old = vec![None, Some(100), Some(200), Some(400), Some(800)];
        // Frontier sits on 200 only: 100 and 400 survive as neighbors,
        // 800 is a dropped dominated region, midpoints 150 and 300 appear.
        let frontier: BTreeSet<Option<u64>> = [Some(200)].into_iter().collect();
        assert_eq!(
            refine_windows(&old, &frontier),
            vec![None, Some(100), Some(150), Some(200), Some(300), Some(400)]
        );
        // A frontier entirely on the categorical `None` keeps only it.
        let none_only: BTreeSet<Option<u64>> = [None].into_iter().collect();
        assert_eq!(refine_windows(&old, &none_only), vec![None]);
        // Adjacent integers have no midpoint to insert.
        let tight = vec![Some(10), Some(11)];
        let f: BTreeSet<Option<u64>> = [Some(10)].into_iter().collect();
        assert_eq!(refine_windows(&tight, &f), vec![Some(10), Some(11)]);
    }

    #[test]
    fn sigmas_refine_bisects_wide_intervals_only() {
        let old = vec![0.0, 0.2, 0.4];
        let frontier: BTreeSet<u64> = [0.0f64.to_bits()].into_iter().collect();
        assert_eq!(refine_sigmas(&old, &frontier), vec![0.0, 0.1, 0.2]);
        // Sub-epsilon intervals stop splitting (convergence in the limit).
        let narrow = vec![0.1, 0.1 + 5e-7];
        let f: BTreeSet<u64> = [0.1f64.to_bits()].into_iter().collect();
        assert_eq!(refine_sigmas(&narrow, &f), narrow);
    }

    fn seed_spec() -> GridSpec {
        GridSpec {
            name: "refine-unit".into(),
            root_seed: 11,
            traces: vec![TraceSpec {
                source: "constant".into(),
                days: 1,
                seed: 0,
            }],
            catalogs: vec![CatalogSpec::paper_trio()],
            schedulers: vec![SchedulerDim::Baseline],
            windows: vec![None, Some(189), Some(756)],
            noise_sigmas: vec![0.0, 0.4],
            splits: vec![SplitPolicy::EfficiencyGreedy],
            steppings: vec![Stepping::EventDriven],
        }
    }

    #[test]
    fn drive_is_deterministic_and_respects_caps() {
        let budget = RefineBudget {
            rounds: 2,
            max_cells: 500,
        };
        let a = GridRunner::new(&seed_spec())
            .threads(2)
            .refine(&budget)
            .unwrap();
        let b = GridRunner::new(&seed_spec())
            .threads(1)
            .refine(&budget)
            .unwrap();
        assert_eq!(a.outcome, b.outcome, "refinement must be deterministic");
        assert_eq!(a.meta, b.meta);
        assert_eq!(a.rounds, b.rounds);
        assert!(a.meta.rounds <= 2);
        assert_eq!(a.meta.seeded_cells, 6);
        assert_eq!(a.meta.budget_cells, 500);
        assert_eq!(a.meta.final_cells as usize, a.outcome.cells.len());
        assert_eq!(a.rounds[0].n_cells, 6);
        for r in &a.rounds[1..] {
            assert!(r.n_cells <= budget.max_cells);
        }
    }

    #[test]
    fn one_value_dimensions_converge_immediately() {
        let spec = GridSpec {
            windows: vec![None],
            noise_sigmas: vec![0.0],
            ..seed_spec()
        };
        let out = GridRunner::new(&spec)
            .threads(1)
            .refine(&RefineBudget::default())
            .unwrap();
        assert_eq!(out.meta.rounds, 0, "nothing to bisect");
        assert_eq!(out.meta.seeded_cells, out.meta.final_cells);
    }
}
