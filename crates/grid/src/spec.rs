//! Declarative grid specifications: the seven experiment dimensions, cell
//! enumeration, and deterministic per-cell seeding.
//!
//! A [`GridSpec`] names a value list for every dimension; the grid is
//! their full cross-product. Enumeration order is fixed and documented
//! (see [`GridSpec::cells`]) so a spec plus a root seed pins every cell's
//! index, seed, and coordinates forever — artifacts are comparable across
//! runs, machines, and thread counts.

use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_core::combination::SplitPolicy;
use bml_core::profile::ArchProfile;
use bml_sim::{SchedulerKind, Stepping};
use bml_trace::LoadTrace;
use serde::{Deserialize, Serialize};

/// The seven dimension names, in enumeration-nesting order (outermost
/// first). Artifact columns and aggregation reports use these names.
pub const DIMENSIONS: [&str; 7] = [
    "trace",
    "catalog",
    "scheduler",
    "window",
    "noise_sigma",
    "split",
    "stepping",
];

/// Scheduler dimension value: which reconfiguration scheduler drives the
/// cell. Resolved to a concrete [`SchedulerKind`] per cell, because the
/// transition-aware scheduler's horizon comes from the cell's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerDim {
    /// The paper's pro-active scheduler.
    Baseline,
    /// The future-work transition-aware scheduler (Sec. VI).
    TransitionAware,
}

impl SchedulerDim {
    /// Stable label used in artifacts and aggregation.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerDim::Baseline => "baseline",
            SchedulerDim::TransitionAware => "transition-aware",
        }
    }

    /// Concrete scheduler for a cell with look-ahead `window_s` and load
    /// split `split` — the same construction `sweep_scheduler` has always
    /// used.
    pub fn resolve(self, window_s: u64, split: SplitPolicy) -> SchedulerKind {
        match self {
            SchedulerDim::Baseline => SchedulerKind::Baseline,
            SchedulerDim::TransitionAware => {
                SchedulerKind::TransitionAware(bml_core::transition_aware::TransitionAwareConfig {
                    horizon_s: window_s as f64,
                    split,
                    consider_keep_variants: true,
                })
            }
        }
    }
}

/// Catalog dimension value: a named mix of architecture profiles, by
/// catalog codename (resolved through [`bml_core::catalog::by_name`]).
/// Construction runs the paper's Steps 1-3 filtering, so a mix listing
/// dominated machines (e.g. the full Table I) still builds the same
/// infrastructure as its surviving subset — the *label* records intent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogSpec {
    /// Stable label used in artifacts and aggregation.
    pub name: String,
    /// Profile codenames composing the mix.
    pub profiles: Vec<String>,
}

impl CatalogSpec {
    /// All five Table I machines (filters down to the paper's trio).
    pub fn table1() -> Self {
        CatalogSpec {
            name: "table1".into(),
            profiles: vec![
                "paravance".into(),
                "taurus".into(),
                "graphene".into(),
                "chromebook".into(),
                "raspberry".into(),
            ],
        }
    }

    /// The paper's surviving Big/Medium/Little trio.
    pub fn paper_trio() -> Self {
        CatalogSpec {
            name: "big-medium-little".into(),
            profiles: vec!["paravance".into(), "chromebook".into(), "raspberry".into()],
        }
    }

    /// Big + Medium only (no Little tier).
    pub fn big_medium() -> Self {
        CatalogSpec {
            name: "big-medium".into(),
            profiles: vec!["paravance".into(), "chromebook".into()],
        }
    }

    /// Big + Little only (no Medium tier).
    pub fn big_little() -> Self {
        CatalogSpec {
            name: "big-little".into(),
            profiles: vec!["paravance".into(), "raspberry".into()],
        }
    }

    /// Big only — the homogeneous baseline as a BML degenerate case.
    pub fn big_only() -> Self {
        CatalogSpec {
            name: "big-only".into(),
            profiles: vec!["paravance".into()],
        }
    }

    /// The Section-IV illustrative A-D catalog.
    pub fn illustrative() -> Self {
        CatalogSpec {
            name: "illustrative".into(),
            profiles: vec!["A".into(), "B".into(), "C".into(), "D".into()],
        }
    }

    /// Build the infrastructure this mix describes.
    pub fn resolve(&self) -> Result<BmlInfrastructure, String> {
        let profiles: Vec<ArchProfile> = self
            .profiles
            .iter()
            .map(|n| {
                catalog::by_name(n)
                    .ok_or_else(|| format!("catalog '{}': unknown profile '{n}'", self.name))
            })
            .collect::<Result<_, _>>()?;
        BmlInfrastructure::build(&profiles)
            .map_err(|e| format!("catalog '{}' does not build: {e}", self.name))
    }
}

/// Trace dimension value: a named source from the `bml-trace` registry
/// plus the two knobs all sources share.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Registry source name (see [`bml_trace::registry::NAMES`]).
    pub source: String,
    /// Days of trace to generate.
    pub days: u32,
    /// Generator seed (ignored by unseeded sources).
    pub seed: u64,
}

impl TraceSpec {
    /// Stable label used in artifacts and aggregation.
    pub fn label(&self) -> String {
        format!("{}-{}d-s{}", self.source, self.days, self.seed)
    }

    /// Generate the trace.
    pub fn resolve(&self) -> Result<LoadTrace, String> {
        bml_trace::registry::generate(&self.source, self.days, self.seed).ok_or_else(|| {
            format!(
                "unknown trace source '{}' (registered: {})",
                self.source,
                bml_trace::registry::NAMES.join(", ")
            )
        })
    }
}

/// Stable label of a stepping-mode dimension value.
pub fn stepping_label(s: Stepping) -> &'static str {
    match s {
        Stepping::PerSecond => "per-second",
        Stepping::EventDriven => "event",
    }
}

/// Stable label of a split-policy dimension value.
pub fn split_label(s: SplitPolicy) -> &'static str {
    match s {
        SplitPolicy::EfficiencyGreedy => "efficiency-greedy",
        SplitPolicy::ProportionalToCapacity => "proportional",
    }
}

/// Stable label of a window dimension value (`None` = the paper's rule).
pub fn window_label(w: Option<u64>) -> String {
    match w {
        None => "paper".into(),
        Some(s) => format!("{s}s"),
    }
}

/// A declarative multi-dimensional experiment grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Grid name, recorded in the artifact.
    pub name: String,
    /// Root seed all per-cell seeds derive from (splitmix-style).
    pub root_seed: u64,
    /// Trace sources (outermost enumeration dimension).
    pub traces: Vec<TraceSpec>,
    /// Catalog mixes.
    pub catalogs: Vec<CatalogSpec>,
    /// Schedulers.
    pub schedulers: Vec<SchedulerDim>,
    /// Look-ahead windows (`None` = the paper's 2x-longest-boot rule).
    pub windows: Vec<Option<u64>>,
    /// Prediction-noise sigmas (0 = clean look-ahead-max prediction).
    pub noise_sigmas: Vec<f64>,
    /// Load-split policies.
    pub splits: Vec<SplitPolicy>,
    /// Engine stepping modes (innermost enumeration dimension).
    pub steppings: Vec<Stepping>,
}

/// Coordinates of one cell: an index into each dimension's value list,
/// the cell's flat enumeration index, and its derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellCoords {
    /// Flat enumeration index (0-based, enumeration order).
    pub index: usize,
    /// Deterministic per-cell seed: `splitmix64` of the root seed and the
    /// cell's *scenario index* — its enumeration index with the stepping
    /// dimension projected out. Feeds the cell's noise injection.
    /// Stepping twins share the seed on purpose: the two modes must
    /// replay the *same* noisy scenario for the equivalence gate to
    /// compare them.
    pub seed: u64,
    /// Index into [`GridSpec::traces`].
    pub trace: usize,
    /// Index into [`GridSpec::catalogs`].
    pub catalog: usize,
    /// Index into [`GridSpec::schedulers`].
    pub scheduler: usize,
    /// Index into [`GridSpec::windows`].
    pub window: usize,
    /// Index into [`GridSpec::noise_sigmas`].
    pub sigma: usize,
    /// Index into [`GridSpec::splits`].
    pub split: usize,
    /// Index into [`GridSpec::steppings`].
    pub stepping: usize,
}

/// The splitmix64 mixing function used to expand one root seed into a
/// stream of decorrelated per-cell seeds. Now lives in
/// [`bml_core::rng`] so the engine's counter-based samplers share the
/// exact construction; re-exported here because grid specs and artifacts
/// have always documented it at this path. The derivation
/// `splitmix64(root_seed ^ splitmix64(scenario))` is byte-identical to
/// every bml-grid/v1 artifact ever emitted.
pub use bml_core::rng::splitmix64;

/// Fluent constructor for [`GridSpec`] — see [`GridSpec::builder`].
///
/// Dimension setters replace the whole value list; [`build`] runs
/// [`GridSpec::validate`], so a builder that returns `Ok` has already
/// proven its trace sources registered, its catalog mixes buildable, and
/// every dimension non-empty. Unset dimensions stay empty and fail
/// validation with a named-dimension error rather than panicking later.
///
/// [`build`]: GridSpecBuilder::build
#[derive(Debug, Clone)]
pub struct GridSpecBuilder {
    spec: GridSpec,
}

impl GridSpecBuilder {
    /// Grid name recorded in the artifact (default `"grid"`).
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Root seed all per-cell seeds derive from (default 1998, the
    /// workspace-wide default seed).
    #[must_use]
    pub fn root_seed(mut self, seed: u64) -> Self {
        self.spec.root_seed = seed;
        self
    }

    /// Set the trace dimension.
    #[must_use]
    pub fn traces(mut self, traces: Vec<TraceSpec>) -> Self {
        self.spec.traces = traces;
        self
    }

    /// Append one trace built from the registry-source triple.
    #[must_use]
    pub fn trace(mut self, source: impl Into<String>, days: u32, seed: u64) -> Self {
        self.spec.traces.push(TraceSpec {
            source: source.into(),
            days,
            seed,
        });
        self
    }

    /// Set the catalog dimension.
    #[must_use]
    pub fn catalogs(mut self, catalogs: Vec<CatalogSpec>) -> Self {
        self.spec.catalogs = catalogs;
        self
    }

    /// Set the scheduler dimension.
    #[must_use]
    pub fn schedulers(mut self, schedulers: Vec<SchedulerDim>) -> Self {
        self.spec.schedulers = schedulers;
        self
    }

    /// Set the window dimension (`None` = the paper's rule).
    #[must_use]
    pub fn windows(mut self, windows: Vec<Option<u64>>) -> Self {
        self.spec.windows = windows;
        self
    }

    /// Set the noise-sigma dimension.
    #[must_use]
    pub fn noise_sigmas(mut self, sigmas: Vec<f64>) -> Self {
        self.spec.noise_sigmas = sigmas;
        self
    }

    /// Set the split-policy dimension.
    #[must_use]
    pub fn splits(mut self, splits: Vec<SplitPolicy>) -> Self {
        self.spec.splits = splits;
        self
    }

    /// Set the stepping dimension.
    #[must_use]
    pub fn steppings(mut self, steppings: Vec<Stepping>) -> Self {
        self.spec.steppings = steppings;
        self
    }

    /// Validate and produce the spec ([`GridSpec::validate`] errors pass
    /// through, so an `Ok` spec is runnable).
    pub fn build(self) -> Result<GridSpec, String> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

impl GridSpec {
    /// Start a validated fluent construction. Defaults: name `"grid"`,
    /// root seed 1998, every dimension empty (set each before `build`).
    pub fn builder() -> GridSpecBuilder {
        GridSpecBuilder {
            spec: GridSpec {
                name: "grid".into(),
                root_seed: 1998,
                traces: Vec::new(),
                catalogs: Vec::new(),
                schedulers: Vec::new(),
                windows: Vec::new(),
                noise_sigmas: Vec::new(),
                splits: Vec::new(),
                steppings: Vec::new(),
            },
        }
    }

    /// Number of cells in the cross-product.
    pub fn n_cells(&self) -> usize {
        self.traces.len()
            * self.catalogs.len()
            * self.schedulers.len()
            * self.windows.len()
            * self.noise_sigmas.len()
            * self.splits.len()
            * self.steppings.len()
    }

    /// Validate the spec: every dimension non-empty, sigmas finite and
    /// non-negative, every trace source registered, every catalog mix
    /// buildable.
    pub fn validate(&self) -> Result<(), String> {
        let dims: [(&str, usize); 7] = [
            ("traces", self.traces.len()),
            ("catalogs", self.catalogs.len()),
            ("schedulers", self.schedulers.len()),
            ("windows", self.windows.len()),
            ("noise_sigmas", self.noise_sigmas.len()),
            ("splits", self.splits.len()),
            ("steppings", self.steppings.len()),
        ];
        for (name, len) in dims {
            if len == 0 {
                return Err(format!("grid '{}': dimension '{name}' is empty", self.name));
            }
        }
        for &s in &self.noise_sigmas {
            if !s.is_finite() || s < 0.0 {
                return Err(format!("grid '{}': bad noise sigma {s}", self.name));
            }
        }
        for t in &self.traces {
            if !bml_trace::registry::NAMES.contains(&t.source.as_str()) {
                return Err(format!(
                    "grid '{}': unknown trace source '{}' (registered: {})",
                    self.name,
                    t.source,
                    bml_trace::registry::NAMES.join(", ")
                ));
            }
            if t.days == 0 {
                // The registry would clamp to one day; reject instead so
                // artifact labels never misdescribe the simulated span.
                return Err(format!(
                    "grid '{}': trace '{}' has days: 0 (want >= 1)",
                    self.name, t.source
                ));
            }
        }
        for c in &self.catalogs {
            c.resolve().map(|_| ())?;
        }
        Ok(())
    }

    /// Enumerate every cell, in the fixed grid order: traces outermost,
    /// then catalogs, schedulers, windows, noise sigmas, splits, and
    /// steppings innermost — the dimension nesting of [`DIMENSIONS`].
    ///
    /// Cell `i` gets seed `splitmix64(root_seed XOR splitmix64(s))` where
    /// `s = i / steppings.len()` is the stepping-independent *scenario
    /// index* (stepping is the innermost dimension, so integer division
    /// projects it out). Stepping twins thereby share their seed — they
    /// are two replays of one scenario, and must stay comparable.
    pub fn cells(&self) -> Vec<CellCoords> {
        let mut out = Vec::with_capacity(self.n_cells());
        let mut index = 0usize;
        let n_steppings = self.steppings.len() as u64;
        for trace in 0..self.traces.len() {
            for catalog in 0..self.catalogs.len() {
                for scheduler in 0..self.schedulers.len() {
                    for window in 0..self.windows.len() {
                        for sigma in 0..self.noise_sigmas.len() {
                            for split in 0..self.splits.len() {
                                for stepping in 0..self.steppings.len() {
                                    let scenario = index as u64 / n_steppings;
                                    out.push(CellCoords {
                                        index,
                                        seed: splitmix64(self.root_seed ^ splitmix64(scenario)),
                                        trace,
                                        catalog,
                                        scheduler,
                                        window,
                                        sigma,
                                        split,
                                        stepping,
                                    });
                                    index += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The label of cell coordinate `coords` along dimension `dim`
    /// (an index into [`DIMENSIONS`]).
    pub fn dimension_label(&self, dim: usize, coords: &CellCoords) -> String {
        match dim {
            0 => self.traces[coords.trace].label(),
            1 => self.catalogs[coords.catalog].name.clone(),
            2 => self.schedulers[coords.scheduler].label().into(),
            3 => window_label(self.windows[coords.window]),
            4 => format!("{}", self.noise_sigmas[coords.sigma]),
            5 => split_label(self.splits[coords.split]).into(),
            6 => stepping_label(self.steppings[coords.stepping]).into(),
            _ => unreachable!("dimension index out of range"),
        }
    }

    /// All seven dimension labels of one cell, in [`DIMENSIONS`] order.
    pub fn cell_labels(&self, coords: &CellCoords) -> Vec<String> {
        (0..DIMENSIONS.len())
            .map(|d| self.dimension_label(d, coords))
            .collect()
    }

    /// The distinct value labels of dimension `dim`, in spec order.
    pub fn dimension_values(&self, dim: usize) -> Vec<String> {
        match dim {
            0 => self.traces.iter().map(TraceSpec::label).collect(),
            1 => self.catalogs.iter().map(|c| c.name.clone()).collect(),
            2 => self
                .schedulers
                .iter()
                .map(|s| s.label().to_string())
                .collect(),
            3 => self.windows.iter().map(|&w| window_label(w)).collect(),
            4 => self.noise_sigmas.iter().map(|s| format!("{s}")).collect(),
            5 => self
                .splits
                .iter()
                .map(|&s| split_label(s).to_string())
                .collect(),
            6 => self
                .steppings
                .iter()
                .map(|&s| stepping_label(s).to_string())
                .collect(),
            _ => unreachable!("dimension index out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> GridSpec {
        GridSpec {
            name: "tiny".into(),
            root_seed: 1998,
            traces: vec![TraceSpec {
                source: "constant".into(),
                days: 1,
                seed: 0,
            }],
            catalogs: vec![CatalogSpec::paper_trio(), CatalogSpec::big_medium()],
            schedulers: vec![SchedulerDim::Baseline, SchedulerDim::TransitionAware],
            windows: vec![None, Some(189)],
            noise_sigmas: vec![0.0, 0.2],
            splits: vec![SplitPolicy::EfficiencyGreedy],
            steppings: vec![Stepping::EventDriven],
        }
    }

    #[test]
    fn cell_count_is_cross_product() {
        let s = tiny_spec();
        // 1 trace x 2 catalogs x 2 schedulers x 2 windows x 2 sigmas.
        assert_eq!(s.n_cells(), 16);
        assert_eq!(s.cells().len(), s.n_cells());
    }

    #[test]
    fn enumeration_is_dense_ordered_and_seeded() {
        let s = tiny_spec();
        let cells = s.cells();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.seed, splitmix64(s.root_seed ^ splitmix64(i as u64)));
        }
        // Innermost dimension with >1 value (sigma here) varies fastest
        // among the first cells.
        assert_eq!(cells[0].sigma, 0);
        assert_eq!(cells[1].sigma, 1);
        assert_eq!(cells[0].window, cells[1].window);
        // Outermost >1 dimension (catalog) splits the enumeration in two.
        assert_eq!(cells[0].catalog, 0);
        assert_eq!(cells[cells.len() - 1].catalog, 1);
    }

    #[test]
    fn per_cell_seeds_are_distinct() {
        let s = tiny_spec();
        let mut seeds: Vec<u64> = s.cells().iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), s.n_cells());
    }

    #[test]
    fn stepping_twins_share_their_scenario_seed() {
        let mut s = tiny_spec();
        s.steppings = vec![Stepping::EventDriven, Stepping::PerSecond];
        let cells = s.cells();
        for pair in cells.chunks(2) {
            assert_eq!(pair[0].seed, pair[1].seed, "twins must share a seed");
            assert_ne!(pair[0].stepping, pair[1].stepping);
            // Everything but stepping matches within a pair.
            assert_eq!(
                (pair[0].trace, pair[0].catalog, pair[0].scheduler),
                (pair[1].trace, pair[1].catalog, pair[1].scheduler)
            );
            assert_eq!(
                (pair[0].window, pair[0].sigma, pair[0].split),
                (pair[1].window, pair[1].sigma, pair[1].split)
            );
        }
        // Across scenarios seeds still differ.
        assert_ne!(cells[0].seed, cells[2].seed);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let ok = tiny_spec();
        assert!(ok.validate().is_ok());
        let mut empty = tiny_spec();
        empty.windows.clear();
        assert!(empty.validate().unwrap_err().contains("windows"));
        let mut bad_sigma = tiny_spec();
        bad_sigma.noise_sigmas = vec![-0.1];
        assert!(bad_sigma.validate().is_err());
        let mut bad_trace = tiny_spec();
        bad_trace.traces[0].source = "nope".into();
        assert!(bad_trace.validate().unwrap_err().contains("nope"));
        let mut zero_days = tiny_spec();
        zero_days.traces[0].days = 0;
        assert!(zero_days.validate().unwrap_err().contains("days: 0"));
        let mut bad_catalog = tiny_spec();
        bad_catalog.catalogs[0].profiles.push("phantom".into());
        assert!(bad_catalog.validate().unwrap_err().contains("phantom"));
    }

    #[test]
    fn labels_are_stable() {
        let s = tiny_spec();
        let cells = s.cells();
        let labels = s.cell_labels(&cells[1]);
        assert_eq!(
            labels,
            vec![
                "constant-1d-s0",
                "big-medium-little",
                "baseline",
                "paper",
                "0.2",
                "efficiency-greedy",
                "event",
            ]
        );
        assert_eq!(s.dimension_values(3), vec!["paper", "189s"]);
        assert_eq!(s.dimension_values(4), vec!["0", "0.2"]);
    }

    #[test]
    fn catalog_mixes_resolve() {
        for c in [
            CatalogSpec::table1(),
            CatalogSpec::paper_trio(),
            CatalogSpec::big_medium(),
            CatalogSpec::big_little(),
            CatalogSpec::big_only(),
            CatalogSpec::illustrative(),
        ] {
            let infra = c.resolve().unwrap_or_else(|e| panic!("{e}"));
            assert!(infra.n_archs() >= 1, "{}", c.name);
        }
        // Table I filters down to the paper's trio.
        assert_eq!(CatalogSpec::table1().resolve().unwrap().n_archs(), 3);
    }

    #[test]
    fn builder_builds_validated_specs() {
        let spec = GridSpec::builder()
            .name("built")
            .root_seed(7)
            .trace("constant", 1, 0)
            .trace("diurnal", 2, 5)
            .catalogs(vec![CatalogSpec::paper_trio()])
            .schedulers(vec![SchedulerDim::Baseline])
            .windows(vec![None, Some(189)])
            .noise_sigmas(vec![0.0])
            .splits(vec![SplitPolicy::EfficiencyGreedy])
            .steppings(vec![Stepping::EventDriven])
            .build()
            .unwrap();
        assert_eq!(spec.name, "built");
        assert_eq!(spec.n_cells(), 4);
        assert_eq!(spec.traces[1].label(), "diurnal-2d-s5");

        // Defaults: name "grid", root seed 1998.
        let defaulted = GridSpec::builder()
            .trace("constant", 1, 0)
            .catalogs(vec![CatalogSpec::paper_trio()])
            .schedulers(vec![SchedulerDim::Baseline])
            .windows(vec![None])
            .noise_sigmas(vec![0.0])
            .splits(vec![SplitPolicy::EfficiencyGreedy])
            .steppings(vec![Stepping::EventDriven])
            .build()
            .unwrap();
        assert_eq!(defaulted.name, "grid");
        assert_eq!(defaulted.root_seed, 1998);
    }

    #[test]
    fn builder_rejects_invalid_specs_at_build() {
        // An unset dimension fails with its name, not a later panic.
        let err = GridSpec::builder()
            .trace("constant", 1, 0)
            .build()
            .unwrap_err();
        assert!(err.contains("catalogs"), "{err}");
        // Validation runs in full: bad sigmas are caught too.
        let err = GridSpec::builder()
            .trace("constant", 1, 0)
            .catalogs(vec![CatalogSpec::paper_trio()])
            .schedulers(vec![SchedulerDim::Baseline])
            .windows(vec![None])
            .noise_sigmas(vec![-1.0])
            .splits(vec![SplitPolicy::EfficiencyGreedy])
            .steppings(vec![Stepping::EventDriven])
            .build()
            .unwrap_err();
        assert!(err.contains("sigma"), "{err}");
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values from the canonical splitmix64 (seed 1234567).
        assert_eq!(splitmix64(1234567), 6457827717110365317);
        assert_eq!(splitmix64(0), 16294208416658607535);
    }
}
