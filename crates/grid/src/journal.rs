//! Crash-resume journal: a durable log of per-cell decisions.
//!
//! The streaming artifact writer already checkpoints rendered rows, but
//! a rendered row cannot be *resumed from*: it carries formatted values,
//! not the exact summary bits, and the JSON document is only valid once
//! the epilogue lands. The journal is the machine-readable counterpart —
//! one checksummed record per **decided** cell (succeeded or
//! quarantined), appended and flushed before the run moves on — so a
//! killed run restarts from the last durable cell instead of from zero,
//! and the resumed artifact is byte-identical to an uninterrupted one.
//!
//! # Record framing
//!
//! ```text
//! [u32 LE payload length][payload bytes][u64 LE FNV-1a(payload)]
//! ```
//!
//! The first record is a header carrying the journal format tag and the
//! **run fingerprint** ([`run_fingerprint`]): a hash of everything that
//! determines cell results — the spec, the artifact schema, the RNG
//! keying version, the retry budget, and the chaos schedule. A journal
//! whose fingerprint does not match the resuming run is ignored (fresh
//! start), never replayed into wrong results.
//!
//! Success payloads reuse the cell cache's summary encoding (optima
//! stripped, stamped after load — see [`crate::cache`]); failure
//! payloads carry the attempt count and panic digest that feed the
//! artifact's `failed_cells` section.
//!
//! # Integrity
//!
//! Replay walks records in order and stops at the first violation —
//! short length prefix, checksum mismatch, undecodable payload — then
//! **truncates the file back to the last good record** and resumes
//! appending from there. A torn tail (kill mid-write, torn chaos write)
//! therefore costs recomputing the cells after the tear, never an error
//! and never a wrong artifact.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use bml_sim::CellSummary;

use crate::cache::{self, KeyHasher};
use crate::chaos::{ChaosPolicy, STREAM_JOURNAL_IO};
use crate::spec::GridSpec;

/// Journal file name, next to the artifacts in the output directory.
pub const JOURNAL_NAME: &str = "BENCH_grid.journal";

/// Version tag of the journal encoding. Bump on any framing or payload
/// change; old journals then fingerprint-mismatch and are ignored.
///
/// v2: success payloads carry the engine batching counters
/// (`segments_batched`, `events_skipped`, `fallback_unsegmented`) via
/// the cell cache's v2 summary encoding.
pub const JOURNAL_FORMAT: &str = "bml-grid-journal/v2";

/// One durable per-cell decision.
#[derive(Debug, Clone, PartialEq)]
pub enum CellEntry {
    /// The cell completed; its summary (optima stripped, re-stamped by
    /// the executor after load, exactly like a cache hit).
    Done(CellSummary),
    /// The cell exhausted its retry budget and was quarantined.
    Failed {
        /// Execution attempts consumed (the full budget).
        attempts: u32,
        /// [`crate::chaos::panic_digest`] of the last panic message.
        panic_digest: String,
    },
}

/// Fingerprint of everything that determines a run's per-cell results.
/// Two runs with equal fingerprints decide every cell identically, so
/// replaying one's journal into the other is sound.
pub fn run_fingerprint(spec: &GridSpec, chaos: Option<&ChaosPolicy>, max_retries: u32) -> String {
    let mut h = KeyHasher::new();
    h.write_str("journal");
    h.write_str(JOURNAL_FORMAT);
    h.write_str(bml_core::rng::KEYING_VERSION);
    h.write_str(crate::artifact::SCHEMA);
    h.write_str(&format!("{spec:?}"));
    h.write_str(&chaos.map(ChaosPolicy::descriptor).unwrap_or_default());
    h.write_u64(u64::from(max_retries));
    h.finish()
}

/// An open journal, ready to append decisions.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    chaos: Option<ChaosPolicy>,
}

impl Journal {
    /// Start a fresh journal in `dir` (created if missing), truncating
    /// any previous one, and write the header record.
    pub fn create(
        dir: &Path,
        fingerprint: &str,
        chaos: Option<ChaosPolicy>,
    ) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_NAME);
        let mut journal = Journal {
            file: File::create(&path)?,
            path,
            chaos,
        };
        // The header is never chaos-torn: a torn header would just void
        // the whole journal, which the per-record faults already cover.
        journal.file.write_all(&frame(&header(fingerprint)))?;
        Ok(journal)
    }

    /// Resume from the journal in `dir`: replay every valid record,
    /// truncate any corrupt tail, and return the journal (open for
    /// append) plus the decisions already on disk.
    ///
    /// An absent journal, a foreign format, or a fingerprint mismatch
    /// all mean "nothing durable to reuse": the journal is recreated
    /// fresh and the map comes back empty.
    pub fn resume(
        dir: &Path,
        fingerprint: &str,
        chaos: Option<ChaosPolicy>,
    ) -> io::Result<(Journal, BTreeMap<usize, CellEntry>)> {
        let path = dir.join(JOURNAL_NAME);
        let bytes = std::fs::read(&path).unwrap_or_default();
        let mut entries = BTreeMap::new();
        let mut offset = 0usize;
        let mut header_ok = false;
        while let Some((payload, next)) = read_record(&bytes, offset) {
            if offset == 0 {
                if payload != header(fingerprint) {
                    break; // foreign or stale journal: ignore entirely
                }
                header_ok = true;
            } else {
                match decode_entry(&payload) {
                    Some((index, entry)) => {
                        entries.insert(index, entry);
                    }
                    None => break, // corrupt payload: drop from here on
                }
            }
            offset = next;
        }
        if !header_ok {
            let journal = Journal::create(dir, fingerprint, chaos)?;
            return Ok((journal, BTreeMap::new()));
        }
        // Drop the bad tail (if any) and append after the last good
        // record.
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(offset as u64)?;
        drop(file);
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((Journal { file, path, chaos }, entries))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one decided cell and push it to the OS — the decision is
    /// durable (up to a crash mid-write, which replay recovers from)
    /// before the executor moves on. Returns the bytes written (fed to
    /// the telemetry host plane; host-dependent under resume, so never
    /// a deterministic counter).
    ///
    /// Chaos faults apply here: an injected I/O error surfaces as `Err`
    /// (the executor degrades), a torn write silently persists only a
    /// prefix (discovered by the next resume's checksum walk).
    pub fn append(&mut self, index: usize, entry: &CellEntry) -> io::Result<usize> {
        if let Some(chaos) = &self.chaos {
            if let Some(e) = chaos.io_error(STREAM_JOURNAL_IO, index as u64) {
                return Err(e);
            }
        }
        let record = frame(&encode_entry(index, entry));
        let keep = self
            .chaos
            .as_ref()
            .and_then(|c| c.torn_len(record.len(), index as u64))
            .unwrap_or(record.len());
        self.file.write_all(&record[..keep])?;
        Ok(keep)
    }
}

/// The header payload for a given fingerprint.
fn header(fingerprint: &str) -> String {
    format!("{JOURNAL_FORMAT}\nfingerprint={fingerprint}\n")
}

/// 64-bit FNV-1a of a payload (the record checksum).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frame a payload: length prefix + bytes + checksum.
fn frame(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() + 12);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    out.extend_from_slice(&fnv64(bytes).to_le_bytes());
    out
}

/// Read the record at `offset`: `Some((payload, next_offset))` when the
/// length prefix, payload, and checksum are all intact, `None` on any
/// truncation or corruption (the caller stops there).
fn read_record(bytes: &[u8], offset: usize) -> Option<(String, usize)> {
    let len_end = offset.checked_add(4)?;
    let len = u32::from_le_bytes(bytes.get(offset..len_end)?.try_into().ok()?) as usize;
    let payload_end = len_end.checked_add(len)?;
    let sum_end = payload_end.checked_add(8)?;
    let payload = bytes.get(len_end..payload_end)?;
    let sum = u64::from_le_bytes(bytes.get(payload_end..sum_end)?.try_into().ok()?);
    if fnv64(payload) != sum {
        return None;
    }
    Some((String::from_utf8(payload.to_vec()).ok()?, sum_end))
}

/// Encode one decision payload.
fn encode_entry(index: usize, entry: &CellEntry) -> String {
    match entry {
        CellEntry::Done(summary) => format!(
            "cell={index}\nstatus=done\n{}",
            cache::encode_summary(summary)
        ),
        CellEntry::Failed {
            attempts,
            panic_digest,
        } => format!(
            "cell={index}\nstatus=failed\nattempts={attempts}\npanic_digest={panic_digest}\n"
        ),
    }
}

/// Decode one decision payload; `None` on any malformation.
fn decode_entry(payload: &str) -> Option<(usize, CellEntry)> {
    let mut lines = payload.lines();
    let index: usize = lines.next()?.strip_prefix("cell=")?.parse().ok()?;
    match lines.next()?.strip_prefix("status=")? {
        "done" => {
            let body = payload.splitn(3, '\n').nth(2)?;
            Some((index, CellEntry::Done(cache::decode_summary(body)?)))
        }
        "failed" => {
            let attempts: u32 = lines.next()?.strip_prefix("attempts=")?.parse().ok()?;
            let digest = lines.next()?.strip_prefix("panic_digest=")?;
            if lines.next().is_some() || digest.len() != 16 {
                return None;
            }
            Some((
                index,
                CellEntry::Failed {
                    attempts,
                    panic_digest: digest.to_string(),
                },
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_sim::Stepping;

    fn summary(energy: f64) -> CellSummary {
        CellSummary {
            total_energy_j: energy,
            mean_power_w: 100.0,
            qos_shortfall: 0.0,
            violation_seconds: 0,
            worst_shortfall: 0.0,
            reconfigurations: 3,
            nodes_switched_on: 2,
            nodes_switched_off: 1,
            reconfig_energy_j: 50.0,
            instance_migrations: 0,
            segments_batched: 88,
            events_skipped: 1_234,
            fallback_unsegmented: 0,
            stepping_effective: Stepping::EventDriven,
            optimal_energy_j: None,
            optimality_gap: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bml_grid_journal_{tag}"));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn failed(attempts: u32) -> CellEntry {
        CellEntry::Failed {
            attempts,
            panic_digest: crate::chaos::panic_digest("boom"),
        }
    }

    #[test]
    fn decisions_roundtrip_through_resume() {
        let dir = tmp_dir("roundtrip");
        let mut j = Journal::create(&dir, "fp1", None).unwrap();
        j.append(0, &CellEntry::Done(summary(100.0))).unwrap();
        j.append(1, &failed(2)).unwrap();
        j.append(2, &CellEntry::Done(summary(250.5))).unwrap();
        drop(j);
        let (_, entries) = Journal::resume(&dir, "fp1", None).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[&0], CellEntry::Done(summary(100.0)));
        assert_eq!(entries[&1], failed(2));
        assert_eq!(entries[&2], CellEntry::Done(summary(250.5)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh() {
        let dir = tmp_dir("fingerprint");
        let mut j = Journal::create(&dir, "fp1", None).unwrap();
        j.append(0, &CellEntry::Done(summary(100.0))).unwrap();
        drop(j);
        let (_, entries) = Journal::resume(&dir, "fp2", None).unwrap();
        assert!(entries.is_empty(), "a stale journal must not replay");
        // The fresh journal carries the new fingerprint.
        let (_, entries) = Journal::resume(&dir, "fp2", None).unwrap();
        assert!(entries.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tails_are_dropped_not_fatal() {
        let dir = tmp_dir("torn");
        let mut j = Journal::create(&dir, "fp", None).unwrap();
        j.append(0, &CellEntry::Done(summary(1.0))).unwrap();
        j.append(1, &CellEntry::Done(summary(2.0))).unwrap();
        let path = j.path().to_path_buf();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Cut the file at every byte boundary inside the final record:
        // record 0 must survive, record 1 must drop, never an error.
        let after_first = {
            // Walk the framing to find record 1's start.
            let mut off = 0;
            for _ in 0..2 {
                let (_, next) = read_record(&full, off).unwrap();
                off = next;
            }
            off
        };
        for cut in after_first..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, entries) = Journal::resume(&dir, "fp", None).unwrap();
            assert_eq!(
                entries.len(),
                1,
                "cut at {cut}: only the intact record replays"
            );
            assert_eq!(entries[&0], CellEntry::Done(summary(1.0)));
            // Resume truncated the tail: the file now ends at the last
            // good record.
            assert_eq!(std::fs::read(&path).unwrap(), full[..after_first]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflipped_records_stop_the_replay() {
        let dir = tmp_dir("bitflip");
        let mut j = Journal::create(&dir, "fp", None).unwrap();
        j.append(0, &CellEntry::Done(summary(1.0))).unwrap();
        j.append(1, &CellEntry::Done(summary(2.0))).unwrap();
        let path = j.path().to_path_buf();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let (_, after_header) = read_record(&full, 0).unwrap();
        // Flip one bit inside record 0's payload: its checksum fails, so
        // BOTH records drop (framing past a bad record is untrusted).
        let mut bad = full.clone();
        bad[after_header + 6] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        let (_, entries) = Journal::resume(&dir, "fp", None).unwrap();
        assert!(entries.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_appends_after_the_last_good_record() {
        let dir = tmp_dir("append");
        let mut j = Journal::create(&dir, "fp", None).unwrap();
        j.append(0, &CellEntry::Done(summary(1.0))).unwrap();
        drop(j);
        let (mut j, entries) = Journal::resume(&dir, "fp", None).unwrap();
        assert_eq!(entries.len(), 1);
        j.append(1, &failed(3)).unwrap();
        drop(j);
        let (_, entries) = Journal::resume(&dir, "fp", None).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[&1], failed(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_torn_writes_recover_on_resume() {
        let dir = tmp_dir("chaos_torn");
        let chaos = ChaosPolicy::new(5).torn_write_prob(1.0);
        let mut j = Journal::create(&dir, "fp", Some(chaos)).unwrap();
        j.append(0, &CellEntry::Done(summary(1.0))).unwrap();
        drop(j);
        // Every record was torn: nothing replays, resume recovers fresh.
        let (mut j, entries) = Journal::resume(&dir, "fp", None).unwrap();
        assert!(entries.is_empty());
        j.append(0, &CellEntry::Done(summary(1.0))).unwrap();
        drop(j);
        let (_, entries) = Journal::resume(&dir, "fp", None).unwrap();
        assert_eq!(entries.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_io_errors_surface_as_errors() {
        let dir = tmp_dir("chaos_io");
        let chaos = ChaosPolicy::new(5).io_error_prob(1.0);
        let mut j = Journal::create(&dir, "fp", Some(chaos)).unwrap();
        let err = j.append(0, &CellEntry::Done(summary(1.0))).unwrap_err();
        assert!(err.to_string().contains("chaos"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_fingerprint_tracks_the_deciding_inputs() {
        let spec = GridSpec::builder()
            .name("fp-unit")
            .root_seed(1)
            .trace("constant", 1, 0)
            .catalogs(vec![crate::spec::CatalogSpec::paper_trio()])
            .schedulers(vec![crate::spec::SchedulerDim::Baseline])
            .windows(vec![None])
            .noise_sigmas(vec![0.0])
            .splits(vec![bml_core::combination::SplitPolicy::EfficiencyGreedy])
            .steppings(vec![Stepping::EventDriven])
            .build()
            .unwrap();
        let base = run_fingerprint(&spec, None, 1);
        assert_eq!(base, run_fingerprint(&spec, None, 1), "deterministic");
        let mut other = spec.clone();
        other.root_seed = 2;
        assert_ne!(base, run_fingerprint(&other, None, 1), "spec reaches it");
        assert_ne!(base, run_fingerprint(&spec, None, 2), "retry budget too");
        let chaos = ChaosPolicy::new(3).panic_prob(0.5);
        assert_ne!(
            base,
            run_fingerprint(&spec, Some(&chaos), 1),
            "chaos schedule too"
        );
        std::fs::remove_dir_all(std::env::temp_dir().join("bml_grid_journal_fp")).ok();
    }
}
