//! Streaming artifact emission.
//!
//! `write_artifacts` assembles the whole document in memory and writes it
//! at the end — fine at 144 cells, hostile at 10k+: a crash loses
//! everything and memory holds every rendered row. A [`CellSink`]
//! receives cells **as they complete, in enumeration order**, so the
//! [`StreamingArtifactWriter`] appends each record to `BENCH_grid.json` /
//! `BENCH_grid.csv` incrementally and only the aggregate epilogue waits
//! for the end.
//!
//! The byte-identity guarantee survives streaming by construction: the
//! writer emits exactly [`crate::artifact::json_prologue`] + the
//! `","`-joined [`crate::artifact::render_cell_json`] outputs +
//! [`crate::artifact::json_epilogue`] (and the CSV equivalents), and
//! `render_json` is *defined* as that concatenation — a streamed file and
//! an in-memory render of the same outcome are the same bytes, cold or
//! warm cache, 1 thread or N.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::artifact::{
    csv_header_line, json_epilogue, json_prologue, render_cell_csv, render_cell_json, CSV_NAME,
    JSON_NAME,
};
use crate::executor::{CellRecord, GridOutcome};
use crate::refine::RefineMeta;
use crate::spec::GridSpec;

/// A consumer of grid cells in enumeration order. The executor calls
/// `begin` once before any cell, `cell` once per record (index order),
/// and `finish` once with the complete outcome (the aggregates need every
/// cell, so they anchor the end of the stream).
pub trait CellSink {
    /// The run is starting: the spec, total cell count, and refinement
    /// provenance (when the stream is a refinement's final artifact) are
    /// known before any cell executes.
    fn begin(
        &mut self,
        spec: &GridSpec,
        n_cells: usize,
        refine: Option<&RefineMeta>,
    ) -> io::Result<()>;

    /// One completed cell, in enumeration order.
    fn cell(&mut self, record: &CellRecord) -> io::Result<()>;

    /// The run is complete; `out` holds every cell for aggregation.
    fn finish(&mut self, out: &GridOutcome) -> io::Result<()>;
}

/// Streams both versioned artifacts to disk as cells complete.
#[derive(Debug)]
pub struct StreamingArtifactWriter {
    json: BufWriter<File>,
    csv: BufWriter<File>,
    json_path: PathBuf,
    csv_path: PathBuf,
    cells_emitted: usize,
}

impl StreamingArtifactWriter {
    /// Create `BENCH_grid.json` / `BENCH_grid.csv` in `dir` (created if
    /// missing), truncating previous artifacts.
    pub fn create(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(JSON_NAME);
        let csv_path = dir.join(CSV_NAME);
        Ok(StreamingArtifactWriter {
            json: BufWriter::new(File::create(&json_path)?),
            csv: BufWriter::new(File::create(&csv_path)?),
            json_path,
            csv_path,
            cells_emitted: 0,
        })
    }

    /// The two artifact paths (JSON, CSV).
    pub fn paths(&self) -> (&Path, &Path) {
        (&self.json_path, &self.csv_path)
    }
}

impl CellSink for StreamingArtifactWriter {
    fn begin(
        &mut self,
        spec: &GridSpec,
        n_cells: usize,
        refine: Option<&RefineMeta>,
    ) -> io::Result<()> {
        self.json
            .write_all(json_prologue(spec, n_cells, refine).as_bytes())?;
        self.csv.write_all(csv_header_line().as_bytes())
    }

    fn cell(&mut self, record: &CellRecord) -> io::Result<()> {
        if self.cells_emitted > 0 {
            self.json.write_all(b",")?;
        }
        self.cells_emitted += 1;
        self.json.write_all(render_cell_json(record).as_bytes())?;
        self.csv.write_all(render_cell_csv(record).as_bytes())?;
        // Every appended cell is a durable checkpoint: flush so a killed
        // run leaves everything already streamed on disk.
        self.json.flush()?;
        self.csv.flush()
    }

    fn finish(&mut self, out: &GridOutcome) -> io::Result<()> {
        // Trailing newline, like every BENCH_*.json this repo emits.
        self.json.write_all(json_epilogue(out).as_bytes())?;
        self.json.write_all(b"\n")?;
        self.json.flush()?;
        self.csv.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{render_csv, render_json};
    use crate::executor::GridRunner;
    use crate::spec::{CatalogSpec, GridSpec, SchedulerDim, TraceSpec};
    use bml_core::combination::SplitPolicy;
    use bml_sim::Stepping;

    fn spec() -> GridSpec {
        GridSpec {
            name: "stream-unit".into(),
            root_seed: 5,
            traces: vec![TraceSpec {
                source: "constant".into(),
                days: 1,
                seed: 0,
            }],
            catalogs: vec![CatalogSpec::paper_trio()],
            schedulers: vec![SchedulerDim::Baseline],
            windows: vec![None, Some(189), Some(378)],
            noise_sigmas: vec![0.0, 0.1],
            splits: vec![SplitPolicy::EfficiencyGreedy],
            steppings: vec![Stepping::EventDriven],
        }
    }

    #[test]
    fn streamed_bytes_equal_in_memory_render() {
        let dir = std::env::temp_dir().join("bml_grid_stream_test");
        std::fs::remove_dir_all(&dir).ok();
        let mut sink = StreamingArtifactWriter::create(&dir).unwrap();
        let run = GridRunner::new(&spec())
            .threads(2)
            .sink(&mut sink)
            .run()
            .unwrap();
        let (json_path, csv_path) = sink.paths();
        assert_eq!(
            std::fs::read_to_string(json_path).unwrap(),
            render_json(&run.outcome) + "\n"
        );
        assert_eq!(
            std::fs::read_to_string(csv_path).unwrap(),
            render_csv(&run.outcome)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
