//! The grid's headline guarantee: for a fixed spec and root seed, the
//! rendered artifacts are byte-identical at 1 worker thread and at N —
//! and, since the cell cache landed, with a cold cache and a warm one.
//! Parallelism and caching change wall-clock time, never results.

use bml_core::combination::SplitPolicy;
use bml_grid::spec::{CatalogSpec, GridSpec, SchedulerDim};
use bml_grid::{pareto_frontier, render_csv, render_json, run_grid, GridRunner};
use bml_sim::Stepping;

/// A spec small enough for debug-mode CI but covering every dimension
/// with >1 value somewhere, noise cells included (noise exercises the
/// per-cell seeds, the part that could plausibly leak thread order).
fn spec() -> GridSpec {
    GridSpec::builder()
        .name("determinism")
        .root_seed(1998)
        .trace("square-bursts", 1, 5)
        .catalogs(vec![CatalogSpec::paper_trio(), CatalogSpec::big_medium()])
        .schedulers(vec![SchedulerDim::Baseline, SchedulerDim::TransitionAware])
        .windows(vec![None])
        .noise_sigmas(vec![0.0, 0.15])
        .splits(vec![SplitPolicy::EfficiencyGreedy])
        .steppings(vec![Stepping::EventDriven])
        .build()
        .unwrap()
}

#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let spec = spec();
    let one = GridRunner::new(&spec).threads(1).run().unwrap().outcome;
    let many = GridRunner::new(&spec).threads(8).run().unwrap().outcome;
    let default = GridRunner::new(&spec).run().unwrap().outcome;
    assert_eq!(one, many, "outcomes diverged between 1 and 8 threads");
    assert_eq!(render_json(&one), render_json(&many));
    assert_eq!(render_json(&one), render_json(&default));
    assert_eq!(render_csv(&one), render_csv(&many));
}

#[test]
fn reruns_reproduce_the_same_bytes() {
    let spec = spec();
    let a = run_grid(&spec, Some(4)).unwrap();
    let b = run_grid(&spec, Some(4)).unwrap();
    assert_eq!(render_json(&a), render_json(&b));
}

#[test]
fn root_seed_reaches_the_noise_cells() {
    let base = spec();
    let mut reseeded = spec();
    reseeded.root_seed = 2024;
    let a = run_grid(&base, Some(4)).unwrap();
    let b = run_grid(&reseeded, Some(4)).unwrap();
    // Clean cells are seed-independent; some noisy cell must move.
    assert_ne!(
        render_json(&a),
        render_json(&b),
        "root seed had no effect on noisy cells"
    );
}

#[test]
fn cold_and_warm_cache_render_the_same_bytes_across_thread_counts() {
    let dir = std::env::temp_dir().join("bml_grid_determinism_cache");
    std::fs::remove_dir_all(&dir).ok();
    let spec = spec();
    let uncached = run_grid(&spec, Some(4)).unwrap();
    let cold = GridRunner::new(&spec)
        .threads(8)
        .cache_dir(&dir)
        .run()
        .unwrap();
    assert_eq!(cold.cache.hits, 0, "first run must be all misses");
    assert_eq!(cold.cache.lookups as usize, uncached.cells.len());
    // Warm re-run at a *different* thread count: full hits, same bytes.
    let warm = GridRunner::new(&spec)
        .threads(1)
        .cache_dir(&dir)
        .run()
        .unwrap();
    assert_eq!(
        warm.cache.hits, warm.cache.lookups,
        "warm run must fully hit"
    );
    for out in [&cold.outcome, &warm.outcome] {
        assert_eq!(render_json(out), render_json(&uncached));
        assert_eq!(render_csv(out), render_csv(&uncached));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_counters_are_byte_identical_across_thread_counts() {
    let spec = spec();
    let one = GridRunner::new(&spec).threads(1).run().unwrap();
    let many = GridRunner::new(&spec).threads(8).run().unwrap();
    // The deterministic plane renders the same bytes whatever the worker
    // count; the timing plane is explicitly excluded from the comparison
    // (wall clock and steal counts legitimately differ).
    assert_eq!(
        one.telemetry.render_counters(),
        many.telemetry.render_counters(),
        "counters diverged between 1 and 8 threads"
    );
    // Sanity on the content: the ok/failed partition covers the grid.
    let c = &one.telemetry.counters;
    assert_eq!(
        c.get("cells.ok") + c.get("cells.failed"),
        c.get("cells.total")
    );
    assert_eq!(c.get("cells.total") as usize, spec.n_cells());
    assert!(c.get("engine.segments_batched") > 0, "event path counted");
    assert!(c.get("opt.solves") > 0, "optima loop counted");
}

#[test]
fn telemetry_counters_are_cache_temperature_blind() {
    let dir = std::env::temp_dir().join("bml_grid_determinism_telemetry_cache");
    std::fs::remove_dir_all(&dir).ok();
    let spec = spec();
    let cold = GridRunner::new(&spec)
        .threads(8)
        .cache_dir(&dir)
        .run()
        .unwrap();
    let warm = GridRunner::new(&spec)
        .threads(1)
        .cache_dir(&dir)
        .run()
        .unwrap();
    assert_eq!(
        warm.cache.hits, warm.cache.lookups,
        "warm run must fully hit"
    );
    assert_eq!(
        cold.telemetry.render_counters(),
        warm.telemetry.render_counters(),
        "counters diverged between cold and warm cache"
    );
    // The cache temperature is visible exactly where it belongs: on the
    // host plane.
    assert_eq!(cold.telemetry.timings.host_get("cache.cell_hits"), 0);
    assert_eq!(
        warm.telemetry.timings.host_get("cache.cell_hits"),
        warm.cache.hits
    );
    // An uncached run merges the same counter bytes too.
    let plain = GridRunner::new(&spec).threads(4).run().unwrap();
    assert_eq!(
        plain.telemetry.render_counters(),
        cold.telemetry.render_counters(),
        "counters diverged between cached and uncached runs"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_keys_are_content_addressed_not_positional() {
    // Same cells reached through different spec shapes (value order
    // swapped) must hit the same entries: keys hash content, not the
    // enumeration index. Clean cells only — noisy cells draw positional
    // seeds, the documented refinement caveat.
    let dir = std::env::temp_dir().join("bml_grid_determinism_cache_shape");
    std::fs::remove_dir_all(&dir).ok();
    let forward = GridSpec::builder()
        .name("shape-a")
        .trace("constant", 1, 0)
        .catalogs(vec![CatalogSpec::paper_trio()])
        .schedulers(vec![SchedulerDim::Baseline])
        .windows(vec![Some(189), Some(756)])
        .noise_sigmas(vec![0.0])
        .splits(vec![SplitPolicy::EfficiencyGreedy])
        .steppings(vec![Stepping::EventDriven])
        .build()
        .unwrap();
    let reversed = GridSpec {
        name: "shape-b".into(),
        windows: vec![Some(756), Some(189)],
        ..forward.clone()
    };
    let cold = GridRunner::new(&forward).cache_dir(&dir).run().unwrap();
    assert_eq!(cold.cache.hits, 0);
    let warm = GridRunner::new(&reversed).cache_dir(&dir).run().unwrap();
    assert_eq!(
        warm.cache.hits, 2,
        "reordered dimensions must still hit: keys are content-addressed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aggregates_reference_valid_cells() {
    let out = run_grid(&spec(), None).unwrap();
    let frontier = pareto_frontier(&out);
    assert!(!frontier.is_empty());
    for &i in &frontier {
        assert!(i < out.cells.len());
    }
    // Frontier is sorted by ascending energy.
    for w in frontier.windows(2) {
        assert!(out.cells[w[0]].summary.total_energy_j <= out.cells[w[1]].summary.total_energy_j);
    }
}
