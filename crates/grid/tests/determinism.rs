//! The grid's headline guarantee: for a fixed spec and root seed, the
//! rendered artifacts are byte-identical at 1 worker thread and at N —
//! parallelism changes wall-clock time, never results.

use bml_core::combination::SplitPolicy;
use bml_grid::spec::{CatalogSpec, GridSpec, SchedulerDim, TraceSpec};
use bml_grid::{pareto_frontier, render_csv, render_json, run_grid};
use bml_sim::Stepping;

/// A spec small enough for debug-mode CI but covering every dimension
/// with >1 value somewhere, noise cells included (noise exercises the
/// per-cell seeds, the part that could plausibly leak thread order).
fn spec() -> GridSpec {
    GridSpec {
        name: "determinism".into(),
        root_seed: 1998,
        traces: vec![TraceSpec {
            source: "square-bursts".into(),
            days: 1,
            seed: 5,
        }],
        catalogs: vec![CatalogSpec::paper_trio(), CatalogSpec::big_medium()],
        schedulers: vec![SchedulerDim::Baseline, SchedulerDim::TransitionAware],
        windows: vec![None],
        noise_sigmas: vec![0.0, 0.15],
        splits: vec![SplitPolicy::EfficiencyGreedy],
        steppings: vec![Stepping::EventDriven],
    }
}

#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let spec = spec();
    let one = run_grid(&spec, Some(1)).unwrap();
    let many = run_grid(&spec, Some(8)).unwrap();
    let default = run_grid(&spec, None).unwrap();
    assert_eq!(one, many, "outcomes diverged between 1 and 8 threads");
    assert_eq!(render_json(&one), render_json(&many));
    assert_eq!(render_json(&one), render_json(&default));
    assert_eq!(render_csv(&one), render_csv(&many));
}

#[test]
fn reruns_reproduce_the_same_bytes() {
    let spec = spec();
    let a = run_grid(&spec, Some(4)).unwrap();
    let b = run_grid(&spec, Some(4)).unwrap();
    assert_eq!(render_json(&a), render_json(&b));
}

#[test]
fn root_seed_reaches_the_noise_cells() {
    let base = spec();
    let mut reseeded = spec();
    reseeded.root_seed = 2024;
    let a = run_grid(&base, Some(4)).unwrap();
    let b = run_grid(&reseeded, Some(4)).unwrap();
    // Clean cells are seed-independent; some noisy cell must move.
    assert_ne!(
        render_json(&a),
        render_json(&b),
        "root seed had no effect on noisy cells"
    );
}

#[test]
fn aggregates_reference_valid_cells() {
    let out = run_grid(&spec(), None).unwrap();
    let frontier = pareto_frontier(&out);
    assert!(!frontier.is_empty());
    for &i in &frontier {
        assert!(i < out.cells.len());
    }
    // Frontier is sorted by ascending energy.
    for w in frontier.windows(2) {
        assert!(out.cells[w[0]].summary.total_energy_j <= out.cells[w[1]].summary.total_energy_j);
    }
}
