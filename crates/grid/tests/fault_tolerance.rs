//! Fault-tolerance gate: kill-resume byte-identity, deterministic chaos,
//! quarantine accounting, and graceful degradation.
//!
//! Everything here leans on two invariants the grid stack maintains:
//!
//! * **Determinism** — for a fixed spec (and chaos policy), artifacts are
//!   byte-identical at any thread count, cache temperature, or
//!   kill/resume split;
//! * **No lost cells** — every cell of the spec ends up in exactly one of
//!   `cells` or `failed_cells`, whatever faults fired along the way.

use bml_core::combination::SplitPolicy;
use bml_grid::spec::{CatalogSpec, GridSpec, SchedulerDim};
use bml_grid::{ChaosPolicy, GridRunner, StreamingArtifactWriter};
use bml_sim::Stepping;
use std::path::{Path, PathBuf};

/// 2 schedulers x 3 windows x 2 sigmas x 2 steppings = 24 cells — small
/// enough for a debug test run, wide enough that kill points and chaos
/// schedules land in the middle of real work.
fn spec() -> GridSpec {
    GridSpec::builder()
        .name("fault-tolerance")
        .root_seed(1998)
        .trace("constant", 1, 0)
        .catalogs(vec![CatalogSpec::paper_trio()])
        .schedulers(vec![SchedulerDim::Baseline, SchedulerDim::TransitionAware])
        .windows(vec![None, Some(378), Some(3600)])
        .noise_sigmas(vec![0.0, 0.1])
        .splits(vec![SplitPolicy::EfficiencyGreedy])
        .steppings(vec![Stepping::EventDriven, Stepping::PerSecond])
        .build()
        .unwrap()
}

const N_CELLS: usize = 24;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bml_grid_ft_{tag}"));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Run the spec into `dir` (streaming sink + journal in the same
/// directory) and return the artifact JSON bytes.
fn run_to_dir(
    spec: &GridSpec,
    dir: &Path,
    threads: usize,
    configure: impl FnOnce(GridRunner<'_>) -> GridRunner<'_>,
) -> Result<(bml_grid::GridRun, String), String> {
    let mut sink = StreamingArtifactWriter::create(dir).map_err(|e| e.to_string())?;
    let runner = configure(GridRunner::new(spec).threads(threads).sink(&mut sink));
    let run = runner.run()?;
    let (json_path, _) = sink.paths();
    let json = std::fs::read_to_string(json_path).map_err(|e| e.to_string())?;
    Ok((run, json))
}

#[test]
fn kill_and_resume_artifacts_match_the_cold_run_byte_for_byte() {
    let spec = spec();
    let cold_dir = tmp_dir("cold");
    let (cold_run, cold_json) = run_to_dir(&spec, &cold_dir, 2, |r| r).unwrap();
    assert_eq!(cold_run.outcome.cells.len(), N_CELLS);
    assert!(cold_run.outcome.failed_cells.is_empty());
    assert!(cold_run.warnings.is_empty());

    for kill_at in [6, 18] {
        for threads in [1, 8] {
            let dir = tmp_dir(&format!("kill{kill_at}t{threads}"));
            let err = run_to_dir(&spec, &dir, threads, |r| {
                r.journal_dir(&dir).kill_after_cells(kill_at)
            })
            .expect_err("kill_after must abort the run");
            assert!(err.contains("simulated crash"), "{err}");
            assert!(
                dir.join(bml_grid::JOURNAL_NAME).exists(),
                "the kill must leave a journal behind"
            );

            // Resume: journaled cells replay from disk, the rest compute,
            // and the streamed artifact is re-rendered from scratch.
            let (run, json) = run_to_dir(&spec, &dir, threads, |r| r.resume(&dir)).unwrap();
            assert_eq!(run.outcome.cells.len(), N_CELLS);
            assert!(run.warnings.is_empty(), "{:?}", run.warnings);
            assert_eq!(
                json, cold_json,
                "kill at {kill_at}/{N_CELLS}, {threads} threads: resume must be byte-identical"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    std::fs::remove_dir_all(&cold_dir).ok();
}

#[test]
fn resume_of_a_torn_journal_tail_recovers() {
    let spec = spec();
    let clean_dir = tmp_dir("torn_clean");
    let (_, clean_json) = run_to_dir(&spec, &clean_dir, 2, |r| r).unwrap();

    // Kill mid-run with torn journal writes firing: some records reach
    // disk incomplete (simulated power loss). Resume must drop the torn
    // tail, recompute what it lost, and still match the clean bytes —
    // torn writes cost work, never correctness.
    let chaos = ChaosPolicy::new(11).torn_write_prob(0.4);
    let dir = tmp_dir("torn");
    let err = run_to_dir(&spec, &dir, 2, |r| {
        r.journal_dir(&dir).chaos(chaos).kill_after_cells(13)
    })
    .expect_err("kill_after must abort the run");
    assert!(err.contains("simulated crash"), "{err}");

    let (run, json) = run_to_dir(&spec, &dir, 2, |r| r.resume(&dir).chaos(chaos)).unwrap();
    assert_eq!(run.outcome.cells.len(), N_CELLS);
    assert_eq!(json, clean_json);
    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_panics_quarantine_deterministically_across_thread_counts() {
    let spec = spec();
    // Deterministically pick a seed whose schedule dooms some (not all)
    // cells through both attempts — chaos decisions are pure functions of
    // the policy, so the scan is as reproducible as the run itself.
    let seed = (0..500u64)
        .find(|&s| {
            let p = ChaosPolicy::new(s).panic_prob(0.35);
            let doomed = (0..N_CELLS as u64)
                .filter(|&c| p.should_panic(c, 1).is_some() && p.should_panic(c, 2).is_some())
                .count();
            (2..N_CELLS / 2).contains(&doomed)
        })
        .expect("some seed in range dooms a few cells");
    let chaos = ChaosPolicy::new(seed).panic_prob(0.35);

    let mut renders = Vec::new();
    for threads in [1, 8] {
        let dir = tmp_dir(&format!("chaos_t{threads}"));
        let (run, json) = run_to_dir(&spec, &dir, threads, |r| r.chaos(chaos)).unwrap();
        // Zero lost cells: every cell is either a result or a quarantine
        // entry, and the artifact says which.
        assert_eq!(
            run.outcome.cells.len() + run.outcome.failed_cells.len(),
            N_CELLS
        );
        assert!(!run.outcome.failed_cells.is_empty());
        assert!(run.outcome.failed_cells.len() < N_CELLS);
        for f in &run.outcome.failed_cells {
            assert_eq!(f.attempts, 2, "default budget: one retry");
            assert_eq!(f.panic_digest.len(), 16);
        }
        assert!(json.contains("\"failed_cells\":[{\"index\":"));
        renders.push(json);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(
        renders[0], renders[1],
        "a chaos run must be byte-identical at 1 and 8 threads"
    );
}

#[test]
fn certain_panics_quarantine_every_cell_without_aborting() {
    let spec = spec();
    let dir = tmp_dir("all_fail");
    let chaos = ChaosPolicy::new(3).panic_prob(1.0);
    let (run, json) = run_to_dir(&spec, &dir, 4, |r| r.chaos(chaos).max_retries(2)).unwrap();
    assert!(run.outcome.cells.is_empty());
    assert_eq!(run.outcome.failed_cells.len(), N_CELLS);
    for f in &run.outcome.failed_cells {
        assert_eq!(f.attempts, 3, "max_retries(2) grants three attempts");
    }
    // The artifact still renders: empty cells array, full quarantine.
    assert!(json.contains("\"cells\":[]"), "{}", &json[..200]);
    assert!(json.contains("\"pareto_energy_vs_qos\":[]"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn io_faults_degrade_to_memory_with_warnings_not_errors() {
    let spec = spec();
    let dir = tmp_dir("io_faults");
    let cache_dir = tmp_dir("io_faults_cache");
    let chaos = ChaosPolicy::new(5).io_error_prob(1.0);
    let (run, _) = run_to_dir(&spec, &dir, 2, |r| {
        r.chaos(chaos).cache_dir(&cache_dir).journal_dir(&dir)
    })
    .unwrap();
    // Every persistence layer degraded, no cell was lost.
    assert_eq!(run.outcome.cells.len(), N_CELLS);
    let components: Vec<&str> = run.warnings.iter().map(|w| w.component).collect();
    for c in ["cache", "journal", "sink"] {
        assert!(
            components.contains(&c),
            "missing {c} warning: {components:?}"
        );
    }
    // Degradation happens once per component, not once per cell.
    assert!(run.warnings.len() <= 4, "{:?}", run.warnings);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn corrupt_cache_entries_recompute_and_keep_byte_identity() {
    let spec = spec();
    let dir = tmp_dir("corrupt_cache");
    let cache_dir = tmp_dir("corrupt_cache_store");
    let (cold_run, cold_json) = run_to_dir(&spec, &dir, 2, |r| r.cache_dir(&cache_dir)).unwrap();
    assert_eq!(cold_run.cache.hits, 0);

    // Truncate every cached cell entry to half: every lookup must miss,
    // recompute, and reproduce the cold bytes exactly.
    let cells_dir = cache_dir.join("cells");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&cells_dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        corrupted += 1;
    }
    assert!(corrupted > 0);

    let (warm_run, warm_json) = run_to_dir(&spec, &dir, 2, |r| r.cache_dir(&cache_dir)).unwrap();
    assert_eq!(warm_run.cache.hits, 0, "corrupt entries must all miss");
    assert_eq!(warm_run.outcome.cells.len(), N_CELLS);
    assert!(warm_run.warnings.is_empty(), "{:?}", warm_run.warnings);
    assert_eq!(warm_json, cold_json);

    // And a third, healthy warm run hits everything.
    let (hot_run, hot_json) = run_to_dir(&spec, &dir, 2, |r| r.cache_dir(&cache_dir)).unwrap();
    assert_eq!(hot_run.cache.hits, hot_run.cache.lookups);
    assert_eq!(hot_json, cold_json);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cache_dir).ok();
}
