//! Scale gate: adaptive refinement over a 10,000-cell spec completes in
//! a debug-mode test run, streams a provenance-carrying artifact, and
//! lands on a grid orders of magnitude smaller than the seed.
//!
//! The seed grid is deliberately cheap per cell (constant 1-day trace,
//! clean prediction, event stepping) so the 10k-cell round fits CI; the
//! point is the *orchestration* — enumeration, batched fan-out, Pareto
//! bisection, streaming — not per-cell heft.

use bml_core::combination::SplitPolicy;
use bml_grid::spec::{CatalogSpec, GridSpec, SchedulerDim};
use bml_grid::{render_json_with, GridRunner, RefineBudget, StreamingArtifactWriter};
use bml_sim::Stepping;

/// 2 catalogs x 2 schedulers x 1250 windows x 1 sigma x 2 splits x
/// 1 stepping = 10,000 cells.
fn ten_k_spec() -> GridSpec {
    GridSpec::builder()
        .name("refine-10k")
        .root_seed(1998)
        .trace("constant", 1, 0)
        .catalogs(vec![CatalogSpec::paper_trio(), CatalogSpec::big_medium()])
        .schedulers(vec![SchedulerDim::Baseline, SchedulerDim::TransitionAware])
        .windows((1..=1250).map(|i| Some(60 * i)).collect())
        .noise_sigmas(vec![0.0])
        .splits(vec![
            SplitPolicy::EfficiencyGreedy,
            SplitPolicy::ProportionalToCapacity,
        ])
        .steppings(vec![Stepping::EventDriven])
        .build()
        .unwrap()
}

#[test]
fn refinement_over_ten_thousand_cells_completes_and_streams() {
    let spec = ten_k_spec();
    assert_eq!(spec.n_cells(), 10_000);
    let dir = std::env::temp_dir().join("bml_grid_scale_test");
    std::fs::remove_dir_all(&dir).ok();
    let mut sink = StreamingArtifactWriter::create(&dir).unwrap();
    let budget = RefineBudget {
        rounds: 2,
        max_cells: 10_000,
    };
    let refined = GridRunner::new(&spec)
        .sink(&mut sink)
        .refine(&budget)
        .unwrap();

    assert_eq!(refined.meta.seeded_cells, 10_000);
    assert_eq!(refined.rounds[0].n_cells, 10_000);
    assert!(
        refined.meta.rounds >= 1,
        "10k windows must leave room to refine"
    );
    assert_eq!(
        refined.meta.final_cells as usize,
        refined.outcome.cells.len()
    );
    // Bisection near the frontier discards the dominated bulk: the final
    // grid must be a small fraction of the seed.
    assert!(
        refined.outcome.cells.len() <= 1_000,
        "refinement kept {} of 10000 cells",
        refined.outcome.cells.len()
    );
    for r in &refined.rounds {
        assert!(r.n_cells <= budget.max_cells);
    }

    // The streamed artifact carries the provenance and matches the
    // in-memory render byte for byte.
    let (json_path, _) = sink.paths();
    let streamed = std::fs::read_to_string(json_path).unwrap();
    assert_eq!(
        streamed,
        render_json_with(&refined.outcome, Some(&refined.meta)) + "\n"
    );
    assert!(streamed.contains("\"schema\":\"bml-grid/v5\""));
    assert!(streamed.contains("\"refine\":{\"rounds\":"));
    assert!(streamed.contains("\"seeded_cells\":10000"));
    std::fs::remove_dir_all(&dir).ok();
}
