//! # bml-obs — two-plane run telemetry
//!
//! A zero-dependency telemetry subsystem built around one hard rule:
//! **what is measured deterministically and what is measured on the host
//! never mix.** A [`Recorder`] holds two strictly separated planes:
//!
//! * **Counters** ([`Counters`], the `counters` section of the artifact):
//!   monotone `u64` event counts merged in enumeration order. For a fixed
//!   spec they are byte-identical across thread counts, hosts, and cache
//!   temperature — safe to gate in CI (`render_counters` emits canonical
//!   bytes exactly for that purpose).
//! * **Timings** ([`Timings`], the `timings` section): wall-clock spans,
//!   log₂-bucketed histograms, and *host counts* (cache hits, steals,
//!   retries — anything that legitimately varies run-to-run). Explicitly
//!   excluded from determinism gates; CI may apply one-sided floors (e.g.
//!   a warm-cache hit-rate minimum) but never byte equality.
//!
//! The full artifact ([`Recorder::render_document`]) is a single-line JSON
//! document with schema [`SCHEMA`] (`bml-obs/v1`):
//!
//! ```json
//! {"schema":"bml-obs/v1","meta":{...},"counters":{...},
//!  "timings":{"spans":{...},"histograms":{...},"host":{...}}}
//! ```
//!
//! All values are integers (`u64` counts, microsecond durations) so the
//! rendering never touches float formatting. Keys are dotted lowercase
//! (`cells.ok`, `engine.events_skipped`, `phase.cells`) and sort
//! lexicographically in the output (BTreeMap order), which is what makes
//! the counter bytes canonical.
//!
//! [`Heartbeat`] is the throttle behind progress lines on stderr: it
//! answers "has at least the interval elapsed since the last emit?" and
//! leaves the actual line format to the caller.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Version tag of the rendered telemetry document.
pub const SCHEMA: &str = "bml-obs/v1";

/// Escape a string for inclusion in a JSON document.
///
/// Handles the mandatory set: quote, backslash, and control characters.
/// Everything else passes through unchanged (output stays UTF-8).
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_u64_map(map: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(k), v);
    }
    out.push('}');
    out
}

/// The deterministic plane: monotone event counts keyed by dotted name.
///
/// Merged in enumeration order by the owning pipeline, the rendered bytes
/// are identical across thread counts, hosts, and cache temperature. CI
/// gates byte equality on [`Counters::render_json`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `key` (creating it at zero).
    pub fn add(&mut self, key: &str, n: u64) {
        *self.map.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Overwrite counter `key` with `n`.
    pub fn set(&mut self, key: &str, n: u64) {
        self.map.insert(key.to_owned(), n);
    }

    /// Current value of `key` (0 when absent).
    #[must_use]
    pub fn get(&self, key: &str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Fold another counter set into this one (sums per key).
    pub fn absorb(&mut self, other: &Counters) {
        for (k, v) in &other.map {
            *self.map.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterate `(key, value)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when no counter has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Canonical single-line JSON object, keys sorted, integer values —
    /// the byte-gateable `counters` section of the artifact.
    #[must_use]
    pub fn render_json(&self) -> String {
        render_u64_map(&self.map)
    }
}

/// Aggregate of one named wall-clock span.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span was recorded.
    pub count: u64,
    /// Sum of recorded durations, microseconds.
    pub total_us: u64,
    /// Longest single recording, microseconds.
    pub max_us: u64,
}

/// Log₂-bucketed duration histogram (microseconds).
///
/// An observation of `v` µs lands in the bucket whose upper bound is the
/// smallest power of two `>= max(v, 1)`; bucket keys render as that upper
/// bound. Coarse on purpose: host timing is for *shape*, not gates.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
}

impl Histogram {
    /// Record one observation of `us` microseconds.
    pub fn observe(&mut self, us: u64) {
        *self
            .buckets
            .entry(us.max(1).next_power_of_two())
            .or_insert(0) += 1;
    }

    /// Total observations across all buckets.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.values().sum()
    }

    fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (le, n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{le}\":{n}");
        }
        out.push('}');
        out
    }
}

/// The host plane: wall-clock spans, histograms, and host-variant counts.
///
/// Nothing in here is comparable across runs; CI must never gate byte
/// equality on it (one-sided floors on `host` counts are fine).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Timings {
    spans: BTreeMap<String, SpanStat>,
    histograms: BTreeMap<String, Histogram>,
    host: BTreeMap<String, u64>,
}

impl Timings {
    /// Record one completed wall-clock span under `name`.
    pub fn record_span(&mut self, name: &str, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let s = self.spans.entry(name.to_owned()).or_default();
        s.count += 1;
        s.total_us += us;
        s.max_us = s.max_us.max(us);
    }

    /// Record one histogram observation (microseconds) under `name`.
    pub fn observe_us(&mut self, name: &str, us: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(us);
    }

    /// Add `n` to host count `key` — a count that legitimately varies by
    /// host, thread count, or cache temperature (hits, steals, retries).
    pub fn host_add(&mut self, key: &str, n: u64) {
        *self.host.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Current value of host count `key` (0 when absent).
    #[must_use]
    pub fn host_get(&self, key: &str) -> u64 {
        self.host.get(key).copied().unwrap_or(0)
    }

    /// Span aggregate by name, if recorded.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<SpanStat> {
        self.spans.get(name).copied()
    }

    /// Fold another timing set into this one.
    pub fn absorb(&mut self, other: &Timings) {
        for (k, s) in &other.spans {
            let e = self.spans.entry(k.clone()).or_default();
            e.count += s.count;
            e.total_us += s.total_us;
            e.max_us = e.max_us.max(s.max_us);
        }
        for (k, h) in &other.histograms {
            let e = self.histograms.entry(k.clone()).or_default();
            for (le, n) in &h.buckets {
                *e.buckets.entry(*le).or_insert(0) += n;
            }
        }
        for (k, v) in &other.host {
            *self.host.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Single-line JSON of the whole timing plane:
    /// `{"spans":{...},"histograms":{...},"host":{...}}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"spans\":{");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"total_us\":{},\"max_us\":{}}}",
                escape_json(k),
                s.count,
                s.total_us,
                s.max_us
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape_json(k), h.render_json());
        }
        out.push_str("},\"host\":");
        out.push_str(&render_u64_map(&self.host));
        out.push('}');
        out
    }
}

/// The two planes together: what a run hands back as its telemetry.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Recorder {
    /// Deterministic plane (see [`Counters`]).
    pub counters: Counters,
    /// Host plane (see [`Timings`]).
    pub timings: Timings,
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to deterministic counter `key`.
    pub fn count(&mut self, key: &str, n: u64) {
        self.counters.add(key, n);
    }

    /// Add `n` to host count `key` (host plane — never gated).
    pub fn host_count(&mut self, key: &str, n: u64) {
        self.timings.host_add(key, n);
    }

    /// Record a completed wall-clock span.
    pub fn span(&mut self, name: &str, elapsed: Duration) {
        self.timings.record_span(name, elapsed);
    }

    /// Time `f` and record the elapsed wall clock as span `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.span(name, t0.elapsed());
        out
    }

    /// Fold another recorder (both planes) into this one.
    pub fn absorb(&mut self, other: &Recorder) {
        self.counters.absorb(&other.counters);
        self.timings.absorb(&other.timings);
    }

    /// Canonical bytes of the `counters` section alone — the unit CI and
    /// the determinism suite compare with `==` on the raw string.
    #[must_use]
    pub fn render_counters(&self) -> String {
        self.counters.render_json()
    }

    /// The full `bml-obs/v1` document as a single JSON line (trailing
    /// newline included). `meta` is embedded verbatim as string fields in
    /// the order given — put run identity there (grid name, cell count),
    /// never measurements.
    #[must_use]
    pub fn render_document(&self, meta: &[(&str, String)]) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":\"{SCHEMA}\",\"meta\":{{");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        let _ = write!(
            out,
            "}},\"counters\":{},\"timings\":{}}}",
            self.counters.render_json(),
            self.timings.render_json()
        );
        out.push('\n');
        out
    }
}

/// Throttle for progress heartbeats: at most one emit per interval.
#[derive(Debug)]
pub struct Heartbeat {
    interval: Duration,
    started: Instant,
    last: Instant,
}

impl Heartbeat {
    /// A heartbeat that first fires once `interval` has elapsed.
    #[must_use]
    pub fn new(interval: Duration) -> Self {
        let now = Instant::now();
        Heartbeat {
            interval,
            started: now,
            last: now,
        }
    }

    /// True at most once per interval; arms the next window when true.
    pub fn ready(&mut self) -> bool {
        if self.last.elapsed() >= self.interval {
            self.last = Instant::now();
            true
        } else {
            false
        }
    }

    /// Wall clock since construction.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_sorted_and_canonical() {
        let mut c = Counters::new();
        c.add("b.two", 2);
        c.add("a.one", 1);
        c.add("b.two", 3);
        assert_eq!(c.render_json(), "{\"a.one\":1,\"b.two\":5}");
        assert_eq!(c.get("b.two"), 5);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn counters_absorb_is_order_independent() {
        let mut a = Counters::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Counters::new();
        b.add("y", 5);
        b.add("z", 1);
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab.render_json(), ba.render_json());
        assert_eq!(ab.get("y"), 7);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        h.observe(0); // clamps into the 1 µs bucket
        h.observe(1);
        h.observe(3);
        h.observe(4);
        h.observe(1000);
        assert_eq!(h.render_json(), "{\"1\":2,\"4\":2,\"1024\":1}");
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn spans_aggregate_count_total_max() {
        let mut t = Timings::default();
        t.record_span("phase.x", Duration::from_micros(10));
        t.record_span("phase.x", Duration::from_micros(30));
        let s = t.span("phase.x").unwrap();
        assert_eq!((s.count, s.total_us, s.max_us), (2, 40, 30));
        assert!(t.span("phase.missing").is_none());
    }

    #[test]
    fn document_has_separated_planes() {
        let mut r = Recorder::new();
        r.count("cells.ok", 3);
        r.host_count("cache.hits", 2);
        r.span("phase.cells", Duration::from_micros(5));
        let doc = r.render_document(&[("grid", "smoke".to_owned())]);
        assert!(doc.starts_with("{\"schema\":\"bml-obs/v1\",\"meta\":{\"grid\":\"smoke\"},"));
        assert!(doc.contains("\"counters\":{\"cells.ok\":3}"));
        // The host count lives inside timings, not counters.
        assert!(doc.contains("\"host\":{\"cache.hits\":2}"));
        assert!(!doc.contains("\"counters\":{\"cache.hits\""));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn escaping_covers_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_json("\u{01}"), "\\u0001");
    }

    #[test]
    fn recorder_absorb_merges_both_planes() {
        let mut a = Recorder::new();
        a.count("n", 1);
        a.host_count("h", 1);
        a.span("s", Duration::from_micros(7));
        let mut b = Recorder::new();
        b.count("n", 2);
        b.host_count("h", 3);
        b.span("s", Duration::from_micros(2));
        a.absorb(&b);
        assert_eq!(a.counters.get("n"), 3);
        assert_eq!(a.timings.host_get("h"), 4);
        let s = a.timings.span("s").unwrap();
        assert_eq!((s.count, s.total_us, s.max_us), (2, 9, 7));
    }

    #[test]
    fn heartbeat_throttles() {
        let mut hb = Heartbeat::new(Duration::from_secs(3600));
        assert!(!hb.ready());
        let mut hot = Heartbeat::new(Duration::ZERO);
        assert!(hot.ready());
    }
}
