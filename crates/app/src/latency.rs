//! Response-time model for web-server instances.
//!
//! The paper's QoS argument is capacity-based (enough req/s provisioned),
//! but the latency story explains *why* utilization near 1 is dangerous:
//! a CPU-bound server behaves like an M/M/c queue whose response time
//! diverges as utilization approaches saturation. This module provides a
//! standard M/M/c approximation so examples and ablations can report
//! latency percentiles alongside energy.

use serde::{Deserialize, Serialize};

/// Latency estimate for one instance at a given operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyEstimate {
    /// Offered utilization in `[0, 1)` (1 = saturated).
    pub utilization: f64,
    /// Mean service time of one request (s).
    pub service_time_s: f64,
    /// Mean response time (queueing + service) in seconds;
    /// `f64::INFINITY` at or beyond saturation.
    pub mean_response_s: f64,
    /// Approximate 95th-percentile response time (s), exponential
    /// response-time tail assumption.
    pub p95_response_s: f64,
}

/// Erlang-C probability that an arriving request must queue in an M/M/c
/// system with `c` servers and total utilization `rho` (per-system, in
/// `[0, 1)`).
pub fn erlang_c(c: u32, rho: f64) -> f64 {
    assert!(c >= 1, "need at least one server");
    assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
    let a = rho * f64::from(c); // offered load in Erlangs
                                // Sum_{k=0}^{c-1} a^k / k!  computed iteratively.
    let mut term = 1.0; // a^0 / 0!
    let mut sum = 1.0;
    for k in 1..c {
        term *= a / f64::from(k);
        sum += term;
    }
    let top = term * a / f64::from(c) / (1.0 - rho); // a^c / c! * 1/(1-rho)
    top / (sum + top)
}

/// Estimate the response time of an instance with `cores` parallel
/// workers, per-request mean service time `service_time_s`, serving
/// `offered_rps` requests per second.
pub fn estimate_latency(cores: u32, service_time_s: f64, offered_rps: f64) -> LatencyEstimate {
    assert!(cores >= 1);
    assert!(service_time_s > 0.0);
    let capacity = f64::from(cores) / service_time_s;
    let rho = (offered_rps / capacity).max(0.0);
    if rho >= 1.0 {
        return LatencyEstimate {
            utilization: rho,
            service_time_s,
            mean_response_s: f64::INFINITY,
            p95_response_s: f64::INFINITY,
        };
    }
    let pq = erlang_c(cores, rho);
    // M/M/c mean wait: Pq * 1 / (c*mu - lambda).
    let wait = pq / (capacity - offered_rps);
    let mean = wait + service_time_s;
    LatencyEstimate {
        utilization: rho,
        service_time_s,
        // Exponential tail: P95 ~ mean * ln(20).
        mean_response_s: mean,
        p95_response_s: mean * 20.0f64.ln(),
    }
}

/// Latency-aware safe operating point: the highest utilization at which
/// the mean response time stays within `slo_s`. Returned as a fraction of
/// capacity in `[0, 1)`; bisection over the closed-form model.
pub fn max_utilization_for_slo(cores: u32, service_time_s: f64, slo_s: f64) -> f64 {
    assert!(slo_s > service_time_s, "SLO below bare service time");
    let capacity = f64::from(cores) / service_time_s;
    let (mut lo, mut hi) = (0.0f64, 0.999_999f64);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        let est = estimate_latency(cores, service_time_s, mid * capacity);
        if est.mean_response_s <= slo_s {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_c_single_server_is_rho() {
        // M/M/1: probability of waiting equals utilization.
        for rho in [0.1, 0.5, 0.9] {
            assert!((erlang_c(1, rho) - rho).abs() < 1e-12, "rho {rho}");
        }
    }

    #[test]
    fn erlang_c_more_servers_less_queueing() {
        let rho = 0.7;
        let p1 = erlang_c(1, rho);
        let p4 = erlang_c(4, rho);
        let p16 = erlang_c(16, rho);
        assert!(p1 > p4 && p4 > p16);
    }

    #[test]
    fn latency_grows_with_load_and_diverges() {
        let est_low = estimate_latency(4, 0.01, 50.0); // rho 0.125
        let est_high = estimate_latency(4, 0.01, 380.0); // rho 0.95
        assert!(est_low.mean_response_s < est_high.mean_response_s);
        assert!(est_low.mean_response_s >= 0.01);
        let sat = estimate_latency(4, 0.01, 400.0);
        assert!(sat.mean_response_s.is_infinite());
        assert!(sat.p95_response_s.is_infinite());
    }

    #[test]
    fn idle_latency_is_service_time() {
        let est = estimate_latency(8, 0.02, 0.0);
        assert!((est.mean_response_s - 0.02).abs() < 1e-12);
        assert_eq!(est.utilization, 0.0);
    }

    #[test]
    fn p95_above_mean() {
        let est = estimate_latency(2, 0.01, 150.0);
        assert!(est.p95_response_s > est.mean_response_s);
    }

    #[test]
    fn slo_operating_point_sane() {
        // Raspberry-like: 4 cores, ~444 ms service time (9 req/s capacity).
        let service = 4.0 / 9.0;
        let u = max_utilization_for_slo(4, service, 2.0 * service);
        assert!(u > 0.3 && u < 1.0, "u = {u}");
        // A generous SLO allows running closer to saturation.
        let u_loose = max_utilization_for_slo(4, service, 10.0 * service);
        assert!(u_loose > u);
        // The chosen point actually meets the SLO.
        let capacity = 4.0 / service;
        let est = estimate_latency(4, service, u * capacity);
        assert!(est.mean_response_s <= 2.0 * service + 1e-6);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn erlang_c_rejects_saturation() {
        let _ = erlang_c(2, 1.0);
    }
}
