//! # bml-app — application characterization and the stateless web server
//!
//! Substrate crate of the BML reproduction implementing paper Sec. III
//! (application classes: QoS, load knowledge, malleability, migration) and
//! the target application of Sec. V-A: a stateless web server behind a
//! load balancer, whose per-request work reproduces the paper's CGI
//! script (uniform 1000-2000 work units per request).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod characterization;
pub mod latency;
pub mod loadbalancer;
pub mod migration;
pub mod request;
pub mod webserver;

pub use characterization::{
    ApplicationMetric, ApplicationSpec, LoadKnowledge, Malleability, MigrationCost, QosClass,
};
pub use latency::{erlang_c, estimate_latency, max_utilization_for_slo, LatencyEstimate};
pub use loadbalancer::{balance, BalanceOutcome, BalancePolicy};
pub use migration::{plan_migrations, MigrationPlan};
pub use request::{Request, RequestGenerator};
pub use webserver::{Fleet, WebServerInstance};
