//! Instance migration planning (paper Secs. III and V-A).
//!
//! A stateless web server migrates "by stopping a server instance and
//! launching a new one on the destination machine, and then updating the
//! load balancer". When a reconfiguration changes the machine mix, the
//! instances on machines being switched off must move to machines being
//! switched on; surplus instances simply stop and new capacity simply
//! starts fresh.

use serde::{Deserialize, Serialize};

use crate::characterization::MigrationCost;

/// Instance-level actions needed to follow a machine reconfiguration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// `(arch, count)` of instances stopped with no replacement (capacity
    /// shrinks).
    pub pure_stops: Vec<(usize, u32)>,
    /// `(arch, count)` of instances started fresh (capacity grows).
    pub pure_starts: Vec<(usize, u32)>,
    /// Number of stop+start pairs that are logical *migrations* of a
    /// running instance to a different architecture.
    pub migrations: u32,
    /// Wall-clock duration of the instance-level transition (s); stops and
    /// starts proceed in parallel per the stateless model.
    pub duration_s: f64,
    /// Energy attributed to instance stops/starts/LB updates (J).
    pub energy_j: f64,
}

/// Plan the instance moves that turn per-architecture instance counts
/// `from` into `to`, with per-instance `cost`.
///
/// The number of migrations is `min(total stopped, total started)`: each
/// stopped instance whose capacity is replaced elsewhere counts as one
/// migration (stop + start + balancer update); the rest are pure stops or
/// pure starts.
pub fn plan_migrations(from: &[u32], to: &[u32], cost: MigrationCost) -> MigrationPlan {
    assert_eq!(from.len(), to.len());
    let mut pure_stops = Vec::new();
    let mut pure_starts = Vec::new();
    let mut stopped = 0u32;
    let mut started = 0u32;
    for (k, (&f, &t)) in from.iter().zip(to).enumerate() {
        if f > t {
            pure_stops.push((k, f - t));
            stopped += f - t;
        } else if t > f {
            pure_starts.push((k, t - f));
            started += t - f;
        }
    }
    let migrations = stopped.min(started);
    let moves = stopped.max(started); // every instance action pays the cost
    MigrationPlan {
        pure_stops,
        pure_starts,
        migrations,
        duration_s: if moves > 0 { cost.duration_s } else { 0.0 },
        energy_j: f64::from(stopped + started) * cost.energy_j,
    }
}

impl MigrationPlan {
    /// Total instances stopped (with or without replacement).
    pub fn total_stops(&self) -> u32 {
        self.pure_stops.iter().map(|&(_, c)| c).sum()
    }

    /// Total instances started.
    pub fn total_starts(&self) -> u32 {
        self.pure_starts.iter().map(|&(_, c)| c).sum()
    }

    /// `true` when nothing needs to move.
    pub fn is_noop(&self) -> bool {
        self.pure_stops.is_empty() && self.pure_starts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> MigrationCost {
        MigrationCost {
            duration_s: 2.0,
            energy_j: 5.0,
        }
    }

    #[test]
    fn identical_counts_noop() {
        let p = plan_migrations(&[1, 2, 3], &[1, 2, 3], cost());
        assert!(p.is_noop());
        assert_eq!(p.migrations, 0);
        assert_eq!(p.duration_s, 0.0);
        assert_eq!(p.energy_j, 0.0);
    }

    #[test]
    fn scale_up_is_pure_starts() {
        let p = plan_migrations(&[0, 1, 0], &[0, 3, 2], cost());
        assert_eq!(p.total_starts(), 4);
        assert_eq!(p.total_stops(), 0);
        assert_eq!(p.migrations, 0);
        assert_eq!(p.energy_j, 20.0);
        assert_eq!(p.duration_s, 2.0);
    }

    #[test]
    fn scale_down_is_pure_stops() {
        let p = plan_migrations(&[2, 0, 5], &[1, 0, 0], cost());
        assert_eq!(p.total_stops(), 6);
        assert_eq!(p.migrations, 0);
        assert_eq!(p.energy_j, 30.0);
    }

    #[test]
    fn architecture_swap_counts_migrations() {
        // 1 Big replaced by 16 Mediums + 1 Little: 1 stop, 17 starts ->
        // 1 logical migration, 16 fresh starts.
        let p = plan_migrations(&[1, 0, 0], &[0, 16, 1], cost());
        assert_eq!(p.total_stops(), 1);
        assert_eq!(p.total_starts(), 17);
        assert_eq!(p.migrations, 1);
        assert_eq!(p.energy_j, 18.0 * 5.0);
    }

    #[test]
    fn mixed_transition() {
        let p = plan_migrations(&[2, 10, 0], &[3, 0, 4], cost());
        assert_eq!(p.pure_stops, vec![(1, 10)]);
        assert_eq!(p.pure_starts, vec![(0, 1), (2, 4)]);
        assert_eq!(p.migrations, 5);
    }

    #[test]
    fn free_cost_zero_energy() {
        let p = plan_migrations(&[1, 0], &[0, 1], MigrationCost::free());
        assert_eq!(p.energy_j, 0.0);
        assert_eq!(p.duration_s, 0.0);
        assert_eq!(p.migrations, 1);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = plan_migrations(&[1, 2], &[1], cost());
    }
}
