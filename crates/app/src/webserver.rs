//! The stateless web-server instance model (paper Sec. V-A).
//!
//! The paper's target application is a `lighttpd` server running a CPU-
//! bound CGI script. One *instance* runs per powered-on machine; its
//! request capacity is the `maxPerf` the profiling step measured for that
//! machine's architecture. Statelessness means an instance can be
//! "migrated by stopping a server instance and launching a new one on the
//! destination machine, and then updating the load balancer".

use serde::{Deserialize, Serialize};

use crate::request::MEAN_WORK_UNITS;

/// A running web-server instance on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebServerInstance {
    /// Unique instance id.
    pub id: u64,
    /// Candidate-architecture index of the hosting machine (0 = Big).
    pub arch: usize,
    /// Request capacity (req/s) of the hosting machine.
    pub capacity_rps: f64,
    /// Request rate currently routed to this instance by the balancer.
    pub assigned_rps: f64,
}

impl WebServerInstance {
    /// Fresh, unloaded instance.
    pub fn new(id: u64, arch: usize, capacity_rps: f64) -> Self {
        assert!(capacity_rps > 0.0, "capacity must be positive");
        WebServerInstance {
            id,
            arch,
            capacity_rps,
            assigned_rps: 0.0,
        }
    }

    /// Utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        (self.assigned_rps / self.capacity_rps).clamp(0.0, 1.0)
    }

    /// Remaining request headroom (req/s).
    pub fn headroom(&self) -> f64 {
        (self.capacity_rps - self.assigned_rps).max(0.0)
    }

    /// Work-unit throughput currently sustained (units/s).
    pub fn work_rate(&self) -> f64 {
        self.assigned_rps * MEAN_WORK_UNITS
    }

    /// Route `rate` additional req/s to this instance; returns the part
    /// that did not fit.
    pub fn assign(&mut self, rate: f64) -> f64 {
        let take = rate.min(self.headroom());
        self.assigned_rps += take;
        rate - take
    }

    /// Clear the routed load (balancer rebuild).
    pub fn reset(&mut self) {
        self.assigned_rps = 0.0;
    }
}

/// The fleet of instances currently registered at the load balancer:
/// exactly one instance per powered-on machine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    /// Registered instances.
    pub instances: Vec<WebServerInstance>,
    next_id: u64,
}

impl Fleet {
    /// Empty fleet.
    pub fn new() -> Self {
        Fleet::default()
    }

    /// Build a fleet matching a machine configuration: `counts[k]` nodes
    /// of each architecture, each with capacity `capacities[k]`.
    pub fn from_configuration(counts: &[u32], capacities: &[f64]) -> Self {
        assert_eq!(counts.len(), capacities.len());
        let mut fleet = Fleet::new();
        for (k, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                fleet.start_instance(k, capacities[k]);
            }
        }
        fleet
    }

    /// Launch a new instance on a machine of architecture `arch`.
    pub fn start_instance(&mut self, arch: usize, capacity_rps: f64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.instances
            .push(WebServerInstance::new(id, arch, capacity_rps));
        id
    }

    /// Stop (deregister) an instance by id; `true` if it existed.
    pub fn stop_instance(&mut self, id: u64) -> bool {
        let before = self.instances.len();
        self.instances.retain(|i| i.id != id);
        self.instances.len() != before
    }

    /// Stop one instance of the given architecture (any), returning its id.
    pub fn stop_one_of(&mut self, arch: usize) -> Option<u64> {
        let pos = self.instances.iter().position(|i| i.arch == arch)?;
        Some(self.instances.remove(pos).id)
    }

    /// Number of instances per architecture (length `n_archs`).
    pub fn counts(&self, n_archs: usize) -> Vec<u32> {
        let mut c = vec![0u32; n_archs];
        for i in &self.instances {
            c[i.arch] += 1;
        }
        c
    }

    /// Aggregate request capacity (req/s).
    pub fn capacity(&self) -> f64 {
        self.instances.iter().map(|i| i.capacity_rps).sum()
    }

    /// Total routed load (req/s).
    pub fn assigned(&self) -> f64 {
        self.instances.iter().map(|i| i.assigned_rps).sum()
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` when no instance runs.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_assignment_and_overflow() {
        let mut i = WebServerInstance::new(0, 1, 33.0);
        assert_eq!(i.assign(20.0), 0.0);
        assert_eq!(i.assigned_rps, 20.0);
        assert!((i.utilization() - 20.0 / 33.0).abs() < 1e-12);
        // 20 more only 13 fit.
        assert!((i.assign(20.0) - 7.0).abs() < 1e-12);
        assert_eq!(i.headroom(), 0.0);
        i.reset();
        assert_eq!(i.assigned_rps, 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = WebServerInstance::new(0, 0, 0.0);
    }

    #[test]
    fn work_rate_uses_mean_request_size() {
        let mut i = WebServerInstance::new(0, 0, 100.0);
        i.assign(10.0);
        assert_eq!(i.work_rate(), 15_000.0);
    }

    #[test]
    fn fleet_from_configuration() {
        let fleet = Fleet::from_configuration(&[1, 2, 0], &[1331.0, 33.0, 9.0]);
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.counts(3), vec![1, 2, 0]);
        assert_eq!(fleet.capacity(), 1331.0 + 66.0);
    }

    #[test]
    fn fleet_start_stop() {
        let mut fleet = Fleet::new();
        let a = fleet.start_instance(0, 1331.0);
        let b = fleet.start_instance(2, 9.0);
        assert_ne!(a, b, "ids must be unique");
        assert!(fleet.stop_instance(a));
        assert!(!fleet.stop_instance(a));
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.stop_one_of(2), Some(b));
        assert!(fleet.is_empty());
        assert_eq!(fleet.stop_one_of(2), None);
    }

    #[test]
    fn fleet_ids_stay_unique_after_churn() {
        let mut fleet = Fleet::new();
        let mut seen = std::collections::HashSet::new();
        for round in 0..10 {
            let id = fleet.start_instance(round % 3, 10.0);
            assert!(seen.insert(id), "id {id} reused");
            if round % 2 == 0 {
                fleet.stop_instance(id);
            }
        }
    }

    #[test]
    fn fleet_assigned_sums_instances() {
        let mut fleet = Fleet::from_configuration(&[0, 2], &[100.0, 33.0]);
        fleet.instances[0].assign(10.0);
        fleet.instances[1].assign(5.0);
        assert_eq!(fleet.assigned(), 15.0);
    }
}
