//! The load balancer in front of the web-server fleet (paper Sec. V-A:
//! "a load balancer could allow the load to be distributed among several
//! web server instances").
//!
//! Three routing policies are provided; which one is active changes how
//! much dynamic power the fleet draws (the simulator exposes this as an
//! ablation) but, thanks to capacity capping, never changes *whether* the
//! demand is served.

use serde::{Deserialize, Serialize};

use crate::webserver::Fleet;

/// Request-routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancePolicy {
    /// Weight instances by capacity (classic weighted round-robin).
    ProportionalToCapacity,
    /// Fill instances in decreasing capacity order (pack the Bigs first —
    /// they have the lowest marginal power per request in the paper's
    /// catalog).
    FillBiggestFirst,
    /// Split equally across instances, capped at each one's capacity;
    /// overflow recirculates to instances with headroom.
    EqualShare,
}

/// Outcome of one balancing round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalanceOutcome {
    /// Per-instance assigned rates (aligned with the fleet's instances).
    pub assignments: Vec<f64>,
    /// Load actually served (req/s).
    pub served: f64,
    /// Load dropped for lack of capacity (req/s).
    pub dropped: f64,
}

/// Distribute `load` over `fleet` according to `policy`, updating the
/// instances' `assigned_rps` in place and returning the outcome.
pub fn balance(fleet: &mut Fleet, load: f64, policy: BalancePolicy) -> BalanceOutcome {
    for i in &mut fleet.instances {
        i.reset();
    }
    let capacity = fleet.capacity();
    let served = load.clamp(0.0, capacity);
    let dropped = (load - served).max(0.0);
    let n = fleet.instances.len();
    if n == 0 || served <= 0.0 {
        return BalanceOutcome {
            assignments: vec![0.0; n],
            served: if n == 0 { 0.0 } else { served },
            dropped: if n == 0 { load.max(0.0) } else { dropped },
        };
    }
    match policy {
        BalancePolicy::ProportionalToCapacity => {
            for i in &mut fleet.instances {
                let share = served * (i.capacity_rps / capacity);
                let leftover = i.assign(share);
                debug_assert!(leftover < 1e-9, "proportional shares always fit");
            }
        }
        BalancePolicy::FillBiggestFirst => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                fleet.instances[b]
                    .capacity_rps
                    .partial_cmp(&fleet.instances[a].capacity_rps)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut rem = served;
            for idx in order {
                if rem <= 0.0 {
                    break;
                }
                rem = fleet.instances[idx].assign(rem);
            }
        }
        BalancePolicy::EqualShare => {
            let mut rem = served;
            // At most n rounds: each round at least one instance saturates
            // or everything fits.
            for _ in 0..n {
                if rem <= 1e-12 {
                    break;
                }
                let open: Vec<usize> = (0..n)
                    .filter(|&i| fleet.instances[i].headroom() > 1e-12)
                    .collect();
                if open.is_empty() {
                    break;
                }
                let share = rem / open.len() as f64;
                let mut next_rem = 0.0;
                for i in open {
                    next_rem += fleet.instances[i].assign(share);
                }
                rem = next_rem;
            }
        }
    }
    let assignments = fleet.instances.iter().map(|i| i.assigned_rps).collect();
    BalanceOutcome {
        assignments,
        served,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Fleet {
        // 1 Big (1331), 2 Mediums (33), capacities from the paper catalog.
        Fleet::from_configuration(&[1, 2], &[1331.0, 33.0])
    }

    #[test]
    fn proportional_split() {
        let mut f = fleet();
        let out = balance(&mut f, 100.0, BalancePolicy::ProportionalToCapacity);
        assert_eq!(out.dropped, 0.0);
        assert!((out.served - 100.0).abs() < 1e-9);
        let cap = 1331.0 + 66.0;
        assert!((out.assignments[0] - 100.0 * 1331.0 / cap).abs() < 1e-9);
        assert!((out.assignments[1] - 100.0 * 33.0 / cap).abs() < 1e-9);
        let total: f64 = out.assignments.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fill_biggest_first_packs_big() {
        let mut f = fleet();
        let out = balance(&mut f, 100.0, BalancePolicy::FillBiggestFirst);
        assert_eq!(out.assignments[0], 100.0);
        assert_eq!(out.assignments[1], 0.0);
        assert_eq!(out.assignments[2], 0.0);
    }

    #[test]
    fn fill_biggest_first_spills_over() {
        let mut f = fleet();
        let out = balance(&mut f, 1340.0, BalancePolicy::FillBiggestFirst);
        assert_eq!(out.assignments[0], 1331.0);
        assert_eq!(out.assignments[1], 9.0);
        assert_eq!(out.dropped, 0.0);
    }

    #[test]
    fn equal_share_recirculates_overflow() {
        let mut f = fleet();
        // 300 / 3 = 100 each, but mediums cap at 33: the big absorbs the rest.
        let out = balance(&mut f, 300.0, BalancePolicy::EqualShare);
        assert!((out.assignments[1] - 33.0).abs() < 1e-9);
        assert!((out.assignments[2] - 33.0).abs() < 1e-9);
        assert!((out.assignments[0] - 234.0).abs() < 1e-9);
        assert!((out.served - 300.0).abs() < 1e-9);
    }

    #[test]
    fn overload_is_dropped_not_lost_track_of() {
        let mut f = Fleet::from_configuration(&[0, 2], &[100.0, 33.0]);
        for policy in [
            BalancePolicy::ProportionalToCapacity,
            BalancePolicy::FillBiggestFirst,
            BalancePolicy::EqualShare,
        ] {
            let out = balance(&mut f, 1000.0, policy);
            assert!((out.served - 66.0).abs() < 1e-9, "{policy:?}");
            assert!((out.dropped - 934.0).abs() < 1e-9, "{policy:?}");
        }
    }

    #[test]
    fn empty_fleet_drops_everything() {
        let mut f = Fleet::new();
        let out = balance(&mut f, 50.0, BalancePolicy::EqualShare);
        assert_eq!(out.served, 0.0);
        assert_eq!(out.dropped, 50.0);
        assert!(out.assignments.is_empty());
    }

    #[test]
    fn zero_and_negative_load() {
        let mut f = fleet();
        for policy in [
            BalancePolicy::ProportionalToCapacity,
            BalancePolicy::FillBiggestFirst,
            BalancePolicy::EqualShare,
        ] {
            let out = balance(&mut f, 0.0, policy);
            assert_eq!(out.served, 0.0);
            assert_eq!(out.dropped, 0.0);
            let out = balance(&mut f, -10.0, policy);
            assert_eq!(out.served, 0.0);
        }
    }

    #[test]
    fn all_policies_serve_same_total() {
        for load in [1.0, 50.0, 500.0, 1331.0, 1390.0, 5000.0] {
            let mut served = Vec::new();
            for policy in [
                BalancePolicy::ProportionalToCapacity,
                BalancePolicy::FillBiggestFirst,
                BalancePolicy::EqualShare,
            ] {
                let mut f = fleet();
                served.push(balance(&mut f, load, policy).served);
            }
            assert!((served[0] - served[1]).abs() < 1e-9, "load {load}");
            assert!((served[1] - served[2]).abs() < 1e-9, "load {load}");
        }
    }

    #[test]
    fn no_instance_exceeds_capacity() {
        for load in [10.0, 700.0, 1400.0, 9999.0] {
            for policy in [
                BalancePolicy::ProportionalToCapacity,
                BalancePolicy::FillBiggestFirst,
                BalancePolicy::EqualShare,
            ] {
                let mut f = fleet();
                balance(&mut f, load, policy);
                for i in &f.instances {
                    assert!(
                        i.assigned_rps <= i.capacity_rps + 1e-9,
                        "{policy:?} load {load}"
                    );
                }
            }
        }
    }
}
