//! Application characterization (paper Sec. III).
//!
//! The BML methodology is application-centric: performance is measured in
//! an *application metric* (work per time unit), QoS requirements classify
//! applications from critical to tolerant, and the feasibility of dynamic
//! reconfiguration depends on whether the application can be migrated and
//! distributed ("malleability").

use serde::{Deserialize, Serialize};

/// The application metric: what one unit of performance means
/// (e.g. "requests processed per second" for the paper's web server).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplicationMetric {
    /// Metric name, e.g. `"request rate"`.
    pub name: String,
    /// Unit, e.g. `"req/s"`.
    pub unit: String,
}

impl ApplicationMetric {
    /// The paper's web-server metric: requests processed per second.
    pub fn requests_per_second() -> Self {
        ApplicationMetric {
            name: "request rate".into(),
            unit: "req/s".into(),
        }
    }
}

/// QoS classes (paper Sec. III): critical applications have strict
/// performance requirements; tolerant ones accept soft degradation;
/// intermediate classes interpolate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QosClass {
    /// Strict requirements (banking, medical): no capacity shortfall is
    /// acceptable.
    Critical,
    /// Soft requirements with a tolerated shortfall fraction in `[0, 1]`
    /// (enterprise services, flexible deadlines).
    Tolerant {
        /// Fraction of demand that may go unserved before the QoS is
        /// considered violated.
        max_shortfall: f64,
    },
    /// An explicitly parameterized intermediate class.
    Intermediate {
        /// Tolerated shortfall fraction.
        max_shortfall: f64,
        /// Maximum consecutive seconds of shortfall tolerated.
        max_violation_seconds: u64,
    },
}

impl QosClass {
    /// The shortfall fraction this class tolerates.
    pub fn tolerated_shortfall(&self) -> f64 {
        match *self {
            QosClass::Critical => 0.0,
            QosClass::Tolerant { max_shortfall } => max_shortfall,
            QosClass::Intermediate { max_shortfall, .. } => max_shortfall,
        }
    }
}

/// How much is known about future load (paper Sec. III): perfect, partial
/// (patterns known, variations not) or unknown (prediction required).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadKnowledge {
    /// Load is known with precision ahead of time.
    Perfect,
    /// Weekly/diurnal/hourly patterns are known, exact variations are not.
    Partial,
    /// Nothing is known; the load must be predicted online.
    Unknown,
}

/// Whether and how the application can be spread over several machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Malleability {
    /// Can the application be distributed across several machines at all?
    pub distributable: bool,
    /// Minimum number of simultaneously running instances.
    pub min_instances: u32,
    /// Maximum number of instances (`u32::MAX` for unbounded).
    pub max_instances: u32,
}

impl Malleability {
    /// Fully malleable: any instance count (the stateless web server).
    pub fn full() -> Self {
        Malleability {
            distributable: true,
            min_instances: 1,
            max_instances: u32::MAX,
        }
    }

    /// A rigid single-instance application.
    pub fn single_instance() -> Self {
        Malleability {
            distributable: false,
            min_instances: 1,
            max_instances: 1,
        }
    }

    /// Is `n` instances a permitted deployment?
    pub fn allows(&self, n: u32) -> bool {
        if n == 0 {
            return false;
        }
        if !self.distributable && n > 1 {
            return false;
        }
        (self.min_instances..=self.max_instances).contains(&n)
    }
}

/// Migration overhead of one application instance, "both in terms of
/// duration and energy consumption" (paper Sec. III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Seconds to stop, transfer (if any state) and restart an instance.
    pub duration_s: f64,
    /// Energy consumed by the migration (J).
    pub energy_j: f64,
}

impl MigrationCost {
    /// A stateless restart: negligible but non-zero cost.
    pub fn stateless() -> Self {
        MigrationCost {
            duration_s: 1.0,
            energy_j: 5.0,
        }
    }

    /// Free migration, for theoretical bounds.
    pub fn free() -> Self {
        MigrationCost {
            duration_s: 0.0,
            energy_j: 0.0,
        }
    }
}

/// Complete application characterization consumed by the scheduler and
/// the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationSpec {
    /// Human-readable name.
    pub name: String,
    /// Performance metric.
    pub metric: ApplicationMetric,
    /// QoS class.
    pub qos: QosClass,
    /// Load knowledge class.
    pub load_knowledge: LoadKnowledge,
    /// Malleability constraints.
    pub malleability: Malleability,
    /// Per-instance migration cost.
    pub migration: MigrationCost,
    /// Can the application run on every candidate architecture?
    /// (The paper requires multi-architecture support for BML.)
    pub multi_arch: bool,
}

impl ApplicationSpec {
    /// The paper's target application: a stateless `lighttpd` web server
    /// behind a load balancer, fully malleable, migrated by stop/start,
    /// tolerant of brief degradation during reconfigurations.
    pub fn stateless_web_server() -> Self {
        ApplicationSpec {
            name: "stateless-web-server".into(),
            metric: ApplicationMetric::requests_per_second(),
            qos: QosClass::Tolerant {
                max_shortfall: 0.01,
            },
            load_knowledge: LoadKnowledge::Partial,
            malleability: Malleability::full(),
            migration: MigrationCost::stateless(),
            multi_arch: true,
        }
    }

    /// `true` when the application can be deployed on a BML infrastructure
    /// at all (needs multi-architecture support and distribution).
    pub fn bml_compatible(&self) -> bool {
        self.multi_arch && self.malleability.distributable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_server_spec_is_bml_compatible() {
        let s = ApplicationSpec::stateless_web_server();
        assert!(s.bml_compatible());
        assert_eq!(s.metric.unit, "req/s");
        assert!(s.malleability.allows(1));
        assert!(s.malleability.allows(500));
    }

    #[test]
    fn rigid_app_not_bml_compatible() {
        let mut s = ApplicationSpec::stateless_web_server();
        s.malleability = Malleability::single_instance();
        assert!(!s.bml_compatible());
        assert!(s.malleability.allows(1));
        assert!(!s.malleability.allows(2));
        assert!(!s.malleability.allows(0));
    }

    #[test]
    fn qos_shortfall_tolerances() {
        assert_eq!(QosClass::Critical.tolerated_shortfall(), 0.0);
        assert_eq!(
            QosClass::Tolerant {
                max_shortfall: 0.05
            }
            .tolerated_shortfall(),
            0.05
        );
        let q = QosClass::Intermediate {
            max_shortfall: 0.02,
            max_violation_seconds: 30,
        };
        assert_eq!(q.tolerated_shortfall(), 0.02);
    }

    #[test]
    fn malleability_bounds() {
        let m = Malleability {
            distributable: true,
            min_instances: 2,
            max_instances: 4,
        };
        assert!(!m.allows(1));
        assert!(m.allows(2));
        assert!(m.allows(4));
        assert!(!m.allows(5));
    }

    #[test]
    fn migration_cost_presets() {
        assert_eq!(MigrationCost::free().duration_s, 0.0);
        assert!(MigrationCost::stateless().duration_s > 0.0);
    }
}
