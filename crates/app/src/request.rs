//! The request/work model of the paper's benchmark application.
//!
//! The paper's web server runs a Python CGI script: "Each request consists
//! in a loop of random number generation, while loop iterations is also
//! chosen randomly between 1000 and 2000" (Sec. V-A). We reproduce that
//! work distribution: a request carries a number of abstract *work units*
//! drawn uniformly from `[1000, 2000]`, and a machine is characterized by
//! how many work units it retires per second.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Work bounds of the paper's CGI script.
pub const MIN_WORK_UNITS: u64 = 1000;
/// Upper work bound of the paper's CGI script.
pub const MAX_WORK_UNITS: u64 = 2000;

/// Mean work units per request under the uniform distribution.
pub const MEAN_WORK_UNITS: f64 = (MIN_WORK_UNITS + MAX_WORK_UNITS) as f64 / 2.0;

/// One HTTP request and the work it demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Work units (random loop iterations in the paper's CGI script).
    pub work_units: u64,
}

/// Deterministic generator of request work, seeded.
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    rng: StdRng,
}

impl RequestGenerator {
    /// New generator with the given seed.
    pub fn new(seed: u64) -> Self {
        RequestGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw one request.
    pub fn next_request(&mut self) -> Request {
        Request {
            work_units: self.rng.gen_range(MIN_WORK_UNITS..=MAX_WORK_UNITS),
        }
    }

    /// Draw a batch of `n` requests.
    pub fn batch(&mut self, n: usize) -> Vec<Request> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

/// Convert a machine's request throughput (req/s, the application metric)
/// into work-unit throughput (work units/s) under the mean request size.
pub fn requests_to_work_rate(req_per_s: f64) -> f64 {
    req_per_s * MEAN_WORK_UNITS
}

/// Convert a work-unit throughput back into the application metric.
pub fn work_rate_to_requests(units_per_s: f64) -> f64 {
    units_per_s / MEAN_WORK_UNITS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_units_in_paper_range() {
        let mut g = RequestGenerator::new(1);
        for _ in 0..10_000 {
            let r = g.next_request();
            assert!((MIN_WORK_UNITS..=MAX_WORK_UNITS).contains(&r.work_units));
        }
    }

    #[test]
    fn work_units_mean_close_to_1500() {
        let mut g = RequestGenerator::new(2);
        let reqs = g.batch(50_000);
        let mean = reqs.iter().map(|r| r.work_units as f64).sum::<f64>() / reqs.len() as f64;
        assert!((mean - MEAN_WORK_UNITS).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn generator_deterministic() {
        let a: Vec<_> = RequestGenerator::new(7).batch(100);
        let b: Vec<_> = RequestGenerator::new(7).batch(100);
        assert_eq!(a, b);
        let c: Vec<_> = RequestGenerator::new(8).batch(100);
        assert_ne!(a, c);
    }

    #[test]
    fn rate_conversions_roundtrip() {
        let req_rate = 33.0;
        let work = requests_to_work_rate(req_rate);
        assert_eq!(work, 33.0 * 1500.0);
        assert!((work_rate_to_requests(work) - req_rate).abs() < 1e-12);
    }
}
