//! Property-based tests for the application layer: the load balancer's
//! conservation and capacity invariants under random fleets, loads and
//! policies.

use bml_app::loadbalancer::{balance, BalancePolicy};
use bml_app::webserver::Fleet;
use proptest::prelude::*;

const POLICIES: [BalancePolicy; 3] = [
    BalancePolicy::ProportionalToCapacity,
    BalancePolicy::FillBiggestFirst,
    BalancePolicy::EqualShare,
];

/// Strategy: a random fleet of 1-4 architecture tiers, each with a
/// random per-instance capacity and 0-4 instances (possibly an entirely
/// empty fleet).
fn arb_fleet() -> impl Strategy<Value = Fleet> {
    proptest::collection::vec((0u32..=4, 0.5f64..2000.0), 1..=4).prop_map(|tiers| {
        let (counts, capacities): (Vec<u32>, Vec<f64>) = tiers.into_iter().unzip();
        Fleet::from_configuration(&counts, &capacities)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation: under every policy, every request is either served
    /// or dropped — `served + dropped == offered` to 1e-9 relative.
    #[test]
    fn served_plus_dropped_is_offered(fleet in arb_fleet(), load in 0.0f64..20_000.0) {
        for policy in POLICIES {
            let mut f = fleet.clone();
            let out = balance(&mut f, load, policy);
            let accounted = out.served + out.dropped;
            prop_assert!(
                (accounted - load).abs() <= 1e-9 * load.abs().max(accounted.abs()),
                "{policy:?}: served {} + dropped {} != offered {load}",
                out.served,
                out.dropped
            );
            prop_assert!(out.served >= 0.0 && out.dropped >= 0.0, "{policy:?}");
        }
    }

    /// Capacity: no policy ever assigns an instance more than its
    /// capacity, and the assignments sum to exactly what was served.
    #[test]
    fn no_assignment_exceeds_capacity(fleet in arb_fleet(), load in 0.0f64..20_000.0) {
        for policy in POLICIES {
            let mut f = fleet.clone();
            let out = balance(&mut f, load, policy);
            prop_assert_eq!(out.assignments.len(), f.instances.len());
            for (a, i) in out.assignments.iter().zip(&f.instances) {
                prop_assert!(
                    *a <= i.capacity_rps + 1e-9,
                    "{:?}: assignment {} over capacity {}",
                    policy,
                    a,
                    i.capacity_rps
                );
                prop_assert!(*a >= 0.0, "{:?}: negative assignment {}", policy, a);
            }
            let total: f64 = out.assignments.iter().sum();
            prop_assert!(
                (total - out.served).abs() <= 1e-9 * out.served.max(1.0),
                "{policy:?}: assignments sum {total} != served {}",
                out.served
            );
        }
    }

    /// The three policies differ in *placement*, never in *volume*: for
    /// one fleet and load they serve the same total.
    #[test]
    fn policies_serve_identical_totals(fleet in arb_fleet(), load in 0.0f64..20_000.0) {
        let served: Vec<f64> = POLICIES
            .iter()
            .map(|&p| balance(&mut fleet.clone(), load, p).served)
            .collect();
        for s in &served[1..] {
            prop_assert!(
                (s - served[0]).abs() <= 1e-9 * served[0].max(1.0),
                "policies served different totals: {served:?}"
            );
        }
    }
}
