//! Property-based tests for the simulator: energy conservation, QoS and
//! capacity invariants under random workloads.

use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_core::combination::SplitPolicy;
use bml_sim::engine::{simulate_bml, SimConfig};
use bml_sim::runner::run_comparison;
use bml_sim::scenarios;
use bml_trace::{LoadTrace, LookaheadMaxPredictor};
use proptest::prelude::*;

fn bml() -> BmlInfrastructure {
    BmlInfrastructure::build(&catalog::table1()).unwrap()
}

/// Random piecewise-constant workload: a few plateaus of random level and
/// length — adversarial for the scheduler (steps at random offsets).
fn arb_trace() -> impl Strategy<Value = LoadTrace> {
    proptest::collection::vec((0.0f64..4_000.0, 50usize..800), 1..8).prop_map(|segments| {
        let mut rates = Vec::new();
        for (level, len) in segments {
            rates.extend(std::iter::repeat_n(level.round(), len));
        }
        LoadTrace::new(0, rates)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn energy_is_finite_positive_and_daily_sums(trace in arb_trace()) {
        let b = bml();
        let mut p = LookaheadMaxPredictor::new(&trace, 378);
        let r = simulate_bml(&trace, &b, &mut p, &SimConfig::default());
        prop_assert!(r.total_energy_j.is_finite());
        prop_assert!(r.total_energy_j >= 0.0);
        let daily: f64 = r.daily_energy_j.iter().sum();
        prop_assert!((daily - r.total_energy_j).abs() < 1e-6);
    }

    #[test]
    fn bml_between_bounds(trace in arb_trace()) {
        let b = bml();
        let c = run_comparison(&trace, &b, &SimConfig::default());
        // Lower bound below BML; BML below the global upper bound
        // (when there is any load at all).
        prop_assert!(c.lower_bound.total_energy_j <= c.bml.total_energy_j + 1e-6);
        if trace.max() > 0.0 {
            prop_assert!(c.bml.total_energy_j <= c.ub_global.total_energy_j * 1.5 + 1e-6);
            prop_assert!(c.ub_per_day.total_energy_j <= c.ub_global.total_energy_j + 1e-6);
        }
    }

    #[test]
    fn upper_bounds_never_violate_qos(trace in arb_trace()) {
        let big = catalog::paravance();
        let g = scenarios::upper_bound_global(&trace, &big, SplitPolicy::EfficiencyGreedy);
        prop_assert_eq!(g.qos.violation_seconds, 0);
        let d = scenarios::upper_bound_per_day(&trace, &big, SplitPolicy::EfficiencyGreedy);
        prop_assert_eq!(d.qos.violation_seconds, 0);
    }

    #[test]
    fn lower_bound_power_matches_ideal_curve(trace in arb_trace()) {
        let b = bml();
        let lb = scenarios::lower_bound_theoretical(&trace, &b, SplitPolicy::EfficiencyGreedy);
        let manual: f64 = (0..trace.len())
            .map(|t| {
                let load = trace.get(t);
                let counts = b.ideal_combination(load).counts(b.n_archs());
                b.config_power(&counts, load, SplitPolicy::EfficiencyGreedy).0
            })
            .sum();
        prop_assert!((lb.total_energy_j - manual).abs() < 1e-6);
        // The greedy-split serving power never exceeds the combination's
        // nominal assignment power (the published Fig.-4 curve).
        let nominal: f64 = (0..trace.len()).map(|t| b.power_at(trace.get(t))).sum();
        prop_assert!(lb.total_energy_j <= nominal + 1e-6);
    }

    #[test]
    fn served_never_exceeds_demand(trace in arb_trace()) {
        let b = bml();
        let mut p = LookaheadMaxPredictor::new(&trace, 378);
        let r = simulate_bml(&trace, &b, &mut p, &SimConfig::default());
        prop_assert!(r.qos.total_served <= r.qos.total_demand + 1e-6);
        prop_assert!(r.qos.worst_shortfall <= 1.0);
        // Switch counts are consistent with at least one machine per
        // reconfiguration.
        if r.reconfigurations > 0 {
            prop_assert!(r.nodes_switched_on + r.nodes_switched_off >= r.reconfigurations);
        }
    }

    #[test]
    fn warm_start_with_lookahead_keeps_qos_high(trace in arb_trace()) {
        // With perfect windowed prediction and graceful handover, the
        // shortfall stays tiny: only quantization effects at plan
        // boundaries can leak demand.
        let b = bml();
        let mut p = LookaheadMaxPredictor::new(&trace, 378);
        let r = simulate_bml(&trace, &b, &mut p, &SimConfig::default());
        prop_assert!(
            r.qos.shortfall_fraction() < 0.02,
            "shortfall {}",
            r.qos.shortfall_fraction()
        );
    }
}
