//! Property-based tests for the simulator: energy conservation, QoS and
//! capacity invariants under random workloads.

use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_core::combination::SplitPolicy;
use bml_core::profile::ArchProfile;
use bml_core::transition_aware::TransitionAwareConfig;
use bml_sim::engine::{simulate_bml, FailureModel, SchedulerKind, SimConfig, Stepping};
use bml_sim::runner::run_comparison;
use bml_sim::scenarios;
use bml_trace::{LoadTrace, LookaheadMaxPredictor, NoisyPredictor};
use proptest::prelude::*;

fn bml() -> BmlInfrastructure {
    BmlInfrastructure::build(&catalog::table1()).unwrap()
}

/// Strategy: a random valid architecture profile (same ranges as the
/// bml-core property tests).
fn arb_profile() -> impl Strategy<Value = ArchProfile> {
    (
        1.0f64..200.0,   // idle
        1.0f64..300.0,   // dynamic range above idle
        1.0f64..2000.0,  // max_perf
        0.0f64..300.0,   // on duration
        0.0f64..30000.0, // on energy
        0.0f64..60.0,    // off duration
        0.0f64..2000.0,  // off energy
    )
        .prop_map(|(idle, range, mp, ont, one, offt, offe)| {
            ArchProfile::new(
                "p",
                idle,
                idle + range,
                mp.round().max(1.0),
                ont,
                one,
                offt,
                offe,
            )
            .expect("constructed within valid ranges")
        })
}

/// Strategy: a random catalog of 2-5 distinct architectures.
fn arb_profiles() -> impl Strategy<Value = Vec<ArchProfile>> {
    proptest::collection::vec(arb_profile(), 2..=5).prop_map(|mut v| {
        for (i, p) in v.iter_mut().enumerate() {
            p.name = format!("arch{i}");
        }
        v
    })
}

/// Random piecewise-constant workload: a few plateaus of random level and
/// length — adversarial for the scheduler (steps at random offsets).
fn arb_trace() -> impl Strategy<Value = LoadTrace> {
    proptest::collection::vec((0.0f64..4_000.0, 50usize..800), 1..8).prop_map(|segments| {
        let mut rates = Vec::new();
        for (level, len) in segments {
            rates.extend(std::iter::repeat_n(level.round(), len));
        }
        LoadTrace::new(0, rates)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn energy_is_finite_positive_and_daily_sums(trace in arb_trace()) {
        let b = bml();
        let mut p = LookaheadMaxPredictor::new(&trace, 378);
        let r = simulate_bml(&trace, &b, &mut p, &SimConfig::default());
        prop_assert!(r.total_energy_j.is_finite());
        prop_assert!(r.total_energy_j >= 0.0);
        let daily: f64 = r.daily_energy_j.iter().sum();
        prop_assert!((daily - r.total_energy_j).abs() < 1e-6);
    }

    #[test]
    fn bml_between_bounds(trace in arb_trace()) {
        let b = bml();
        let c = run_comparison(&trace, &b, &SimConfig::default());
        // Lower bound below BML; BML below the global upper bound
        // (when there is any load at all).
        prop_assert!(c.lower_bound.total_energy_j <= c.bml.total_energy_j + 1e-6);
        if trace.max() > 0.0 {
            prop_assert!(c.bml.total_energy_j <= c.ub_global.total_energy_j * 1.5 + 1e-6);
            prop_assert!(c.ub_per_day.total_energy_j <= c.ub_global.total_energy_j + 1e-6);
        }
    }

    #[test]
    fn upper_bounds_never_violate_qos(trace in arb_trace()) {
        let big = catalog::paravance();
        let g = scenarios::upper_bound_global(&trace, &big, SplitPolicy::EfficiencyGreedy);
        prop_assert_eq!(g.qos.violation_seconds, 0);
        let d = scenarios::upper_bound_per_day(&trace, &big, SplitPolicy::EfficiencyGreedy);
        prop_assert_eq!(d.qos.violation_seconds, 0);
    }

    #[test]
    fn lower_bound_power_matches_ideal_curve(trace in arb_trace()) {
        let b = bml();
        let lb = scenarios::lower_bound_theoretical(&trace, &b, SplitPolicy::EfficiencyGreedy);
        let manual: f64 = (0..trace.len())
            .map(|t| {
                let load = trace.get(t);
                let counts = b.ideal_combination(load).counts(b.n_archs());
                b.config_power(&counts, load, SplitPolicy::EfficiencyGreedy).0
            })
            .sum();
        // Span-batched vs per-second summation: same quantity, different
        // float-accumulation order — compare with a relative tolerance.
        prop_assert!((lb.total_energy_j - manual).abs() < 1e-9 * manual.abs() + 1e-6);
        // The greedy-split serving power never exceeds the combination's
        // nominal assignment power (the published Fig.-4 curve).
        let nominal: f64 = (0..trace.len()).map(|t| b.power_at(trace.get(t))).sum();
        prop_assert!(lb.total_energy_j <= nominal + 1e-6);
    }

    #[test]
    fn served_never_exceeds_demand(trace in arb_trace()) {
        let b = bml();
        let mut p = LookaheadMaxPredictor::new(&trace, 378);
        let r = simulate_bml(&trace, &b, &mut p, &SimConfig::default());
        prop_assert!(r.qos.total_served <= r.qos.total_demand + 1e-6);
        prop_assert!(r.qos.worst_shortfall <= 1.0);
        // Switch counts are consistent with at least one machine per
        // reconfiguration.
        if r.reconfigurations > 0 {
            prop_assert!(r.nodes_switched_on + r.nodes_switched_off >= r.reconfigurations);
        }
    }

    /// The tentpole property: the event-driven skip-ahead replay is
    /// result-identical to the per-second reference engine — same daily
    /// energies (to float-accumulation rounding), same QoS report, same
    /// reconfiguration log — over arbitrary catalogs, traces, look-ahead
    /// horizons, both scheduler kinds, arbitrary prediction-noise sigmas
    /// (counter-based, resampled per window), and arbitrary failure
    /// injection (counter-based geometric gaps). Noisy and
    /// failure-injected runs must also actually *take* the event path:
    /// the recorded effective stepping pins the fallback decision.
    #[test]
    fn event_driven_replay_matches_per_second_engine(
        trace in arb_trace(),
        profiles in arb_profiles(),
        horizon in 1u64..600,
        aware in 0u8..2,
        cold_start in 0u8..2,
        noise_on in 0u8..2,
        noise_sigma in 0.01f64..0.5,
        noise_seed in 0u64..1_000_000,
        failures_on in 0u8..2,
        mtbf_s in 200.0f64..20_000.0,
        repair_s in 1u64..120,
        failure_seed in 0u64..1_000_000,
    ) {
        let (aware, cold_start) = (aware == 1, cold_start == 1);
        let noise_sigma = if noise_on == 1 { noise_sigma } else { 0.0 };
        let infra = match BmlInfrastructure::build(&profiles) {
            Ok(i) => i,
            Err(_) => return Ok(()), // degenerate catalog (all dominated)
        };
        let scheduler = if aware {
            SchedulerKind::TransitionAware(TransitionAwareConfig::paper())
        } else {
            SchedulerKind::Baseline
        };
        let failures = (failures_on == 1)
            .then(|| FailureModel::new(mtbf_s, repair_s, failure_seed));
        let base = SimConfig { scheduler, cold_start, failures, ..SimConfig::default() };

        let run_mode = |stepping| {
            let inner = LookaheadMaxPredictor::new(&trace, horizon);
            let config = SimConfig { stepping, ..base.clone() };
            if noise_sigma > 0.0 {
                let mut p = NoisyPredictor::with_resample(inner, noise_sigma, noise_seed, horizon);
                simulate_bml(&trace, &infra, &mut p, &config)
            } else {
                let mut p = inner;
                simulate_bml(&trace, &infra, &mut p, &config)
            }
        };
        let per_second = run_mode(Stepping::PerSecond);
        let event = run_mode(Stepping::EventDriven);

        // Counter-based sampling means noise and failures never force a
        // fallback: the event path must have been taken.
        prop_assert_eq!(event.stepping_effective, Stepping::EventDriven);
        prop_assert_eq!(per_second.stepping_effective, Stepping::PerSecond);

        // One shared definition of "result-identical" (discrete outcomes
        // exact, energies to float-accumulation rounding) — the same
        // checker the engine's unit tests use.
        let verdict = per_second.check_replay_equivalent(&event, 1e-9);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }

    #[test]
    fn warm_start_with_lookahead_keeps_qos_high(trace in arb_trace()) {
        // With perfect windowed prediction and graceful handover, the
        // shortfall stays tiny: only quantization effects at plan
        // boundaries can leak demand.
        let b = bml();
        let mut p = LookaheadMaxPredictor::new(&trace, 378);
        let r = simulate_bml(&trace, &b, &mut p, &SimConfig::default());
        prop_assert!(
            r.qos.shortfall_fraction() < 0.02,
            "shortfall {}",
            r.qos.shortfall_fraction()
        );
    }
}
