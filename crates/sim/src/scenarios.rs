//! The four evaluation scenarios of paper Sec. V-C / Fig. 5.
//!
//! * [`upper_bound_global`] — "a homogeneous data center with constant
//!   number of servers, computed according to the maximum request rate"
//!   (4 Big machines always on for the paper's trace): classical
//!   over-provisioning.
//! * [`upper_bound_per_day`] — "dimensioned each day according to the
//!   daily maximum rate": coarse-grain capacity planning.
//! * [`bml_proactive`] — the paper's contribution: BML infrastructure +
//!   pro-active scheduler, On/Off overheads included.
//! * [`lower_bound_theoretical`] — "the minimum computing energy
//!   achievable with BML... dimensioned every second with the ideal
//!   combination", no On/Off latency or energy: unreachable floor.

use bml_core::bml::BmlInfrastructure;
use bml_core::combination::{config_power, SplitPolicy};
use bml_core::profile::ArchProfile;
use bml_metrics::EnergyMeter;
use bml_trace::{LoadTrace, LookaheadMaxPredictor};

use crate::engine::{simulate_bml, ScenarioResult, SimConfig, Stepping};
use crate::qos::QosReport;

/// Machines needed to cover `rate` with nodes of capacity `max_perf`.
fn nodes_for(rate: f64, max_perf: f64) -> u32 {
    if rate <= 0.0 {
        0
    } else {
        (rate / max_perf).ceil() as u32
    }
}

/// Shared loop for the homogeneous upper bounds: `counts_for_day` gives
/// the number of Big machines powered during each day. The fleet is
/// constant within a day, so power only changes with the raw load —
/// accounting batches over maximal constant-load runs exactly like the
/// event-driven engine.
fn homogeneous_scenario(
    name: &str,
    trace: &LoadTrace,
    big: &ArchProfile,
    split: SplitPolicy,
    counts_for_day: impl Fn(u32) -> u32,
) -> ScenarioResult {
    let profiles = std::slice::from_ref(big);
    let mut meter = EnergyMeter::new();
    let mut qos = QosReport::default();
    for day in 0..trace.n_days() {
        let n = counts_for_day(day);
        for seg in bml_trace::constant_runs(trace.day(day)) {
            let (w, served) = config_power(profiles, &[n], seg.value, split);
            meter.accumulate_span(w, seg.len());
            qos.record_span(seg.value, served, seg.len());
        }
    }
    ScenarioResult {
        name: name.into(),
        total_energy_j: meter.total_joules(),
        mean_power_w: meter.mean_power(),
        qos,
        reconfigurations: 0,
        nodes_switched_on: 0,
        nodes_switched_off: 0,
        reconfig_energy_j: 0.0,
        instance_migrations: 0,
        failures_injected: 0,
        segments_batched: 0,
        events_skipped: 0,
        fallback_unsegmented: 0,
        // Analytic replays batch over constant-load runs by construction.
        stepping_effective: Stepping::EventDriven,
        reconfig_log: Vec::new(),
        daily_energy_j: meter.into_daily_joules(),
        optimal_energy_j: None,
        optimality_gap: None,
    }
}

/// `UpperBound Global`: a constant homogeneous fleet sized for the global
/// maximum request rate of the whole trace.
pub fn upper_bound_global(
    trace: &LoadTrace,
    big: &ArchProfile,
    split: SplitPolicy,
) -> ScenarioResult {
    let n = nodes_for(trace.max(), big.max_perf);
    homogeneous_scenario("UpperBound Global", trace, big, split, move |_| n)
}

/// `UpperBound PerDay`: a homogeneous fleet re-dimensioned each day for
/// that day's maximum rate. Day-boundary switch costs are not charged —
/// it is an upper *bound* on classical coarse-grain capacity planning.
pub fn upper_bound_per_day(
    trace: &LoadTrace,
    big: &ArchProfile,
    split: SplitPolicy,
) -> ScenarioResult {
    let daily: Vec<u32> = trace
        .daily_max()
        .iter()
        .map(|&m| nodes_for(m, big.max_perf))
        .collect();
    homogeneous_scenario("UpperBound PerDay", trace, big, split, move |d| {
        daily.get(d as usize).copied().unwrap_or(0)
    })
}

/// `LowerBound Theoretical`: the ideal BML combination recomputed every
/// second for the *actual* load, with free and instantaneous transitions.
///
/// Serving power uses the same load-split model as the live scenarios
/// (the split across the powered-on machines of the second's ideal
/// combination), so the bound is comparable second-by-second with the
/// BML scenario rather than using the combination's nominal assignment.
///
/// The per-second combination comes from the infrastructure's precomputed
/// [`bml_core::table::CombinationTable`] into a reused buffer — the 1 Hz
/// loop allocates nothing per step.
pub fn lower_bound_theoretical(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    split: SplitPolicy,
) -> ScenarioResult {
    let mut meter = EnergyMeter::new();
    let mut qos = QosReport::default();
    let table = bml.combination_table();
    let mut counts = vec![0u32; bml.n_archs()];
    // The ideal combination and its power are pure functions of the load,
    // so the replay batches over maximal constant-load runs — one table
    // lookup and one meter update per run (the meter splits day
    // boundaries internally).
    for seg in trace.constant_runs() {
        table.counts_into(seg.value, &mut counts);
        let (w, _) = config_power(bml.candidates(), &counts, seg.value, split);
        meter.accumulate_span(w, seg.len());
        qos.record_span(seg.value, seg.value, seg.len()); // always covered
    }
    ScenarioResult {
        name: "LowerBound Theoretical".into(),
        total_energy_j: meter.total_joules(),
        mean_power_w: meter.mean_power(),
        qos,
        reconfigurations: 0,
        nodes_switched_on: 0,
        nodes_switched_off: 0,
        reconfig_energy_j: 0.0,
        instance_migrations: 0,
        failures_injected: 0,
        segments_batched: 0,
        events_skipped: 0,
        fallback_unsegmented: 0,
        // Analytic replays batch over constant-load runs by construction.
        stepping_effective: Stepping::EventDriven,
        reconfig_log: Vec::new(),
        daily_energy_j: meter.into_daily_joules(),
        optimal_energy_j: None,
        optimality_gap: None,
    }
}

/// `Big-Medium-Little`: the paper's scenario — pro-active scheduler with
/// the emulated look-ahead-max prediction.
pub fn bml_proactive(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    config: &SimConfig,
) -> ScenarioResult {
    let window = config
        .window
        .unwrap_or_else(|| bml_core::scheduler::paper_window_length(bml.candidates()));
    let mut predictor = LookaheadMaxPredictor::new(trace, window);
    simulate_bml(trace, bml, &mut predictor, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::catalog;
    use bml_trace::synthetic;

    fn bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    #[test]
    fn global_bound_sizes_for_peak() {
        let trace = synthetic::flash_crowd(100.0, 5_000.0, 1_000, 60, 300.0, 5_000);
        let big = catalog::paravance();
        let r = upper_bound_global(&trace, &big, SplitPolicy::EfficiencyGreedy);
        // 5000 req/s needs 4 Paravance; idle power of 4 machines always paid.
        assert!(r.mean_power_w >= 4.0 * 69.9);
        assert_eq!(r.qos.violation_seconds, 0);
        assert_eq!(r.reconfigurations, 0);
    }

    #[test]
    fn per_day_bound_tracks_daily_peaks() {
        // Day 0 quiet (needs 1 Big), day 1 busy (needs 3).
        let mut rates = vec![100.0; 86_400];
        rates.extend(vec![3_500.0; 86_400]);
        let trace = LoadTrace::new(0, rates);
        let big = catalog::paravance();
        let per_day = upper_bound_per_day(&trace, &big, SplitPolicy::EfficiencyGreedy);
        let global = upper_bound_global(&trace, &big, SplitPolicy::EfficiencyGreedy);
        assert_eq!(per_day.qos.violation_seconds, 0);
        // Day 0: per-day (1 Big) cheaper than global (3 Bigs).
        assert!(per_day.daily_energy_j[0] < global.daily_energy_j[0] * 0.5);
        // Day 1: identical dimensioning.
        assert!((per_day.daily_energy_j[1] - global.daily_energy_j[1]).abs() < 1e-6);
        assert!(per_day.total_energy_j < global.total_energy_j);
    }

    #[test]
    fn lower_bound_is_lowest() {
        let trace = synthetic::diurnal(5.0, 2_000.0, 4.0, 1);
        let bml = bml();
        let lb = lower_bound_theoretical(&trace, &bml, SplitPolicy::EfficiencyGreedy);
        let b = bml_proactive(&trace, &bml, &SimConfig::default());
        let ub = upper_bound_global(&trace, &catalog::paravance(), SplitPolicy::EfficiencyGreedy);
        assert!(
            lb.total_energy_j <= b.total_energy_j,
            "LB {} vs BML {}",
            lb.total_energy_j,
            b.total_energy_j
        );
        assert!(
            b.total_energy_j < ub.total_energy_j,
            "BML must beat over-provisioning"
        );
        assert_eq!(lb.qos.violation_seconds, 0);
    }

    #[test]
    fn zero_load_day_draws_nothing_in_bounds() {
        let trace = synthetic::constant(0.0, 1_000);
        let big = catalog::paravance();
        let r = upper_bound_global(&trace, &big, SplitPolicy::EfficiencyGreedy);
        assert_eq!(r.total_energy_j, 0.0); // zero machines for zero peak
        let lb = lower_bound_theoretical(&trace, &bml(), SplitPolicy::EfficiencyGreedy);
        assert_eq!(lb.total_energy_j, 0.0);
    }

    #[test]
    fn scenario_names_match_paper() {
        let trace = synthetic::constant(10.0, 100);
        let big = catalog::paravance();
        assert_eq!(
            upper_bound_global(&trace, &big, SplitPolicy::EfficiencyGreedy).name,
            "UpperBound Global"
        );
        assert_eq!(
            upper_bound_per_day(&trace, &big, SplitPolicy::EfficiencyGreedy).name,
            "UpperBound PerDay"
        );
        assert_eq!(
            lower_bound_theoretical(&trace, &bml(), SplitPolicy::EfficiencyGreedy).name,
            "LowerBound Theoretical"
        );
        assert_eq!(
            bml_proactive(&trace, &bml(), &SimConfig::default()).name,
            "Big-Medium-Little"
        );
    }
}
