//! # bml-sim — discrete-event data-center simulator
//!
//! Rust port of the role the paper's Python simulator plays (Sec. V-C):
//! it "takes as input the experimental machine profiles, and a trace file
//! describing the application load variation over time" and replays the
//! pro-active BML scheduler against it at 1 Hz, accounting computation
//! energy, On/Off transition energy, and QoS.
//!
//! * [`cluster`] — per-architecture machine pools with the
//!   Off → Booting → On → ShuttingDown lifecycle and transition power
//!   ramps that integrate exactly to the Table I transition energies;
//! * [`engine`] — the simulation loop driving the `bml-core` scheduler
//!   with any `bml-trace` predictor, in either per-second (reference) or
//!   event-driven skip-ahead stepping ([`engine::Stepping`]);
//! * [`qos`] — demand-vs-served accounting;
//! * [`replay`] — schedule replay (records in, energies out): how
//!   `bml-opt` verifies its offline-optimal schedules against the same
//!   cluster model the engine uses;
//! * [`scenarios`] — the four Fig. 5 scenarios (two homogeneous upper
//!   bounds, BML, the theoretical lower bound);
//! * [`exec`] — the shared experiment-cell executor: one knob setting =
//!   one cell, fanned out rayon-parallel with order-preserving,
//!   thread-count-independent results;
//! * [`runner`] — the Fig. 5 comparison and the ablation sweeps, thin
//!   wrappers over [`exec`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod engine;
pub mod exec;
pub mod qos;
pub mod replay;
pub mod runner;
pub mod scenarios;

pub use cluster::{ArchPool, Cluster};
pub use engine::{
    simulate_bml, CellSummary, FailureModel, ReconfigRecord, ScenarioResult, SchedulerKind,
    SimConfig, Stepping,
};
pub use exec::{run_cell, run_cells, run_cells_checked, CellConfig, CellJob, CellPanic};
pub use qos::QosReport;
pub use replay::replay_schedule;
pub use runner::{
    run_comparison, sweep_prediction_noise, sweep_split_policy, sweep_window, ComparisonResult,
};
