//! Scenario runner: the Fig. 5 four-way comparison and the ablation
//! sweeps.
//!
//! Each sweep is a thin wrapper that lays out its one-dimensional knob as
//! experiment cells and hands them to the shared parallel cell executor
//! ([`crate::exec::run_cells`]) — the same engine `bml-grid` drives for
//! multi-dimensional scenario grids. The sweeps own nothing but the
//! mapping from their knob to a [`CellConfig`].

use bml_core::bml::BmlInfrastructure;
use bml_core::combination::SplitPolicy;
use bml_metrics::{overhead_stats, OverheadStats};
use bml_trace::LoadTrace;
use serde::{Deserialize, Serialize};

use crate::engine::{ScenarioResult, SimConfig};
use crate::exec::{run_cells, CellConfig, CellJob};
use crate::scenarios;

/// Outcome of the Fig. 5 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonResult {
    /// Label of the first day (for per-day reporting).
    pub first_day: u32,
    /// `UpperBound Global`.
    pub ub_global: ScenarioResult,
    /// `UpperBound PerDay`.
    pub ub_per_day: ScenarioResult,
    /// `Big-Medium-Little`.
    pub bml: ScenarioResult,
    /// `LowerBound Theoretical`.
    pub lower_bound: ScenarioResult,
    /// Per-day BML-vs-lower-bound overhead statistics — the paper's
    /// headline "+32% on average, min +6.8%, max +161.4%".
    pub bml_vs_lower: OverheadStats,
}

impl ComparisonResult {
    /// The four scenarios in the paper's presentation order.
    pub fn scenarios(&self) -> [&ScenarioResult; 4] {
        [
            &self.ub_global,
            &self.ub_per_day,
            &self.bml,
            &self.lower_bound,
        ]
    }
}

/// Run all four Fig. 5 scenarios (in parallel) and compute the per-day
/// overhead statistics of BML against the theoretical lower bound.
pub fn run_comparison(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    config: &SimConfig,
) -> ComparisonResult {
    let big = bml.big();
    let split = config.split;
    let ((ub_global, ub_per_day), (bml_res, lower_bound)) = rayon::join(
        || {
            rayon::join(
                || scenarios::upper_bound_global(trace, big, split),
                || scenarios::upper_bound_per_day(trace, big, split),
            )
        },
        || {
            rayon::join(
                || scenarios::bml_proactive(trace, bml, config),
                || scenarios::lower_bound_theoretical(trace, bml, split),
            )
        },
    );
    let bml_vs_lower = overhead_stats(&bml_res.daily_energy_j, &lower_bound.daily_energy_j);
    ComparisonResult {
        first_day: trace.first_day,
        ub_global,
        ub_per_day,
        bml: bml_res,
        lower_bound,
        bml_vs_lower,
    }
}

/// Fan a list of cells out over the shared executor and zip the results
/// back onto their knob values.
fn sweep<K>(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    points: Vec<(K, CellConfig)>,
) -> Vec<(K, ScenarioResult)> {
    let (knobs, cells): (Vec<K>, Vec<CellConfig>) = points.into_iter().unzip();
    let jobs: Vec<CellJob<'_>> = cells
        .into_iter()
        .map(|cell| CellJob { trace, bml, cell })
        .collect();
    knobs.into_iter().zip(run_cells(&jobs, None)).collect()
}

/// Ablation: BML total energy and QoS as a function of the look-ahead
/// window length. Returns `(window_s, result)` pairs, computed in
/// parallel.
pub fn sweep_window(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    windows: &[u64],
    base: &SimConfig,
) -> Vec<(u64, ScenarioResult)> {
    let base_cell = CellConfig::from_sim(base);
    sweep(
        trace,
        bml,
        windows
            .iter()
            .map(|&w| {
                (
                    w,
                    CellConfig {
                        window: Some(w),
                        ..base_cell.clone()
                    },
                )
            })
            .collect(),
    )
}

/// Future-work experiment (paper Sec. VI): impact of prediction *errors*
/// on reconfiguration decisions. Each sigma injects relative gaussian
/// error into the look-ahead-max prediction.
///
/// Noise is counter-based and resampled once per look-ahead window
/// ([`bml_core::rng`]), so noisy runs honor `base.stepping` — including
/// the event-driven fast path — exactly like clean ones.
pub fn sweep_prediction_noise(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    sigmas: &[f64],
    seed: u64,
    base: &SimConfig,
) -> Vec<(f64, ScenarioResult)> {
    let base_cell = CellConfig::from_sim(base);
    sweep(
        trace,
        bml,
        sigmas
            .iter()
            .map(|&sigma| {
                (
                    sigma,
                    CellConfig {
                        noise_sigma: sigma,
                        noise_seed: seed,
                        ..base_cell.clone()
                    },
                )
            })
            .collect(),
    )
}

/// Ablation: the paper's baseline scheduler versus the future-work
/// transition-aware scheduler (Sec. VI), on the same trace and window.
pub fn sweep_scheduler(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    base: &SimConfig,
) -> Vec<(String, ScenarioResult)> {
    let horizon = base
        .window
        .unwrap_or_else(|| bml_core::scheduler::paper_window_length(bml.candidates()))
        as f64;
    let aware_cfg = bml_core::transition_aware::TransitionAwareConfig {
        horizon_s: horizon,
        split: base.split,
        consider_keep_variants: true,
    };
    let base_cell = CellConfig::from_sim(base);
    sweep(
        trace,
        bml,
        [
            (
                "baseline".to_string(),
                crate::engine::SchedulerKind::Baseline,
            ),
            (
                "transition-aware".to_string(),
                crate::engine::SchedulerKind::TransitionAware(aware_cfg),
            ),
        ]
        .into_iter()
        .map(|(name, scheduler)| {
            (
                name,
                CellConfig {
                    scheduler,
                    ..base_cell.clone()
                },
            )
        })
        .collect(),
    )
}

/// Ablation: load-split policy across online machines.
pub fn sweep_split_policy(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    base: &SimConfig,
) -> Vec<(SplitPolicy, ScenarioResult)> {
    let base_cell = CellConfig::from_sim(base);
    sweep(
        trace,
        bml,
        [
            SplitPolicy::EfficiencyGreedy,
            SplitPolicy::ProportionalToCapacity,
        ]
        .into_iter()
        .map(|split| {
            (
                split,
                CellConfig {
                    split,
                    ..base_cell.clone()
                },
            )
        })
        .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::catalog;
    use bml_trace::synthetic;

    fn bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    fn short_trace() -> LoadTrace {
        // Two diurnal days peaking at 2000 req/s.
        synthetic::diurnal(10.0, 2_000.0, 4.0, 2)
    }

    #[test]
    fn comparison_ordering_holds() {
        let trace = short_trace();
        let bml = bml();
        let c = run_comparison(&trace, &bml, &SimConfig::default());
        // Fig. 5 ordering: LB <= BML <= UB PerDay <= UB Global.
        assert!(c.lower_bound.total_energy_j <= c.bml.total_energy_j);
        assert!(c.bml.total_energy_j < c.ub_per_day.total_energy_j);
        assert!(c.ub_per_day.total_energy_j <= c.ub_global.total_energy_j + 1e-6);
        // Overheads positive (BML above the unreachable floor).
        assert!(c.bml_vs_lower.mean > 0.0);
        assert!(c.bml_vs_lower.min >= 0.0);
        assert!(c.bml_vs_lower.max >= c.bml_vs_lower.mean);
        assert_eq!(c.scenarios()[0].name, "UpperBound Global");
    }

    #[test]
    fn per_day_overheads_have_one_entry_per_day() {
        let trace = short_trace();
        let c = run_comparison(&trace, &bml(), &SimConfig::default());
        assert_eq!(c.bml.daily_energy_j.len(), 2);
        assert_eq!(c.lower_bound.daily_energy_j.len(), 2);
    }

    #[test]
    fn window_sweep_produces_all_points() {
        let trace = synthetic::diurnal(10.0, 800.0, 4.0, 1);
        let bml = bml();
        let res = sweep_window(&trace, &bml, &[60, 378, 1_800], &SimConfig::default());
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].0, 60);
        // Longer windows over-provision more: energy is non-decreasing in
        // window length (modulo reconfiguration savings; allow slack).
        let e60 = res[0].1.total_energy_j;
        let e1800 = res[2].1.total_energy_j;
        assert!(e1800 > e60 * 0.9, "e60={e60} e1800={e1800}");
    }

    #[test]
    fn noise_sweep_zero_sigma_matches_clean_run() {
        let trace = synthetic::diurnal(10.0, 800.0, 4.0, 1);
        let bml = bml();
        let clean = scenarios::bml_proactive(&trace, &bml, &SimConfig::default());
        let noisy = sweep_prediction_noise(&trace, &bml, &[0.0, 0.3], 7, &SimConfig::default());
        assert_eq!(noisy.len(), 2);
        assert!((noisy[0].1.total_energy_j - clean.total_energy_j).abs() < 1e-6);
        // Under-prediction with noise must hurt QoS or change energy.
        let degraded = &noisy[1].1;
        assert!(
            degraded.qos.violation_seconds > clean.qos.violation_seconds
                || (degraded.total_energy_j - clean.total_energy_j).abs() > 1.0
        );
    }

    #[test]
    fn split_policy_sweep_greedy_no_worse() {
        let trace = synthetic::diurnal(10.0, 1_500.0, 4.0, 1);
        let bml = bml();
        let res = sweep_split_policy(&trace, &bml, &SimConfig::default());
        assert_eq!(res.len(), 2);
        let greedy = res
            .iter()
            .find(|(p, _)| *p == SplitPolicy::EfficiencyGreedy)
            .unwrap();
        let prop = res
            .iter()
            .find(|(p, _)| *p == SplitPolicy::ProportionalToCapacity)
            .unwrap();
        assert!(greedy.1.total_energy_j <= prop.1.total_energy_j + 1e-6);
    }
}
