//! Schedule replay: drive the cluster through a pre-computed list of
//! [`ReconfigRecord`]s instead of a live scheduler.
//!
//! This is how `bml-opt` *proves* its claimed optimum: the DP prices
//! transitions analytically, then hands its schedule to this replay,
//! which runs the very same cluster lifecycle, power split, ramp
//! integration, zero-duration lump accounting and QoS bookkeeping as the
//! event-driven engine ([`crate::engine`]) — minus the scheduler and
//! predictor, with the record list as the only decision source. If the
//! two energies agree to 1e-9 relative, the DP's cost model matches the
//! simulator; if they ever drift apart, the optimality numbers are wrong
//! and the caller must fail loudly.
//!
//! Records are applied *sequentially at their timestamps*: each record's
//! `target` is interpreted against the configuration the previous record
//! left behind (exactly like the engine's believed configuration), so a
//! schedule may legally carry several records at the same instant —
//! e.g. a zero-lead boot and an immediate shutdown decided at the same
//! boundary — and they compose in list order.

use bml_core::bml::BmlInfrastructure;
use bml_core::combination::SplitPolicy;
use bml_core::reconfig::{plan_reconfiguration, Configuration};
use bml_metrics::EnergyMeter;
use bml_trace::LoadTrace;

use crate::cluster::Cluster;
use crate::engine::{ReconfigRecord, ScenarioResult, Stepping};
use crate::qos::QosReport;

/// Replay `schedule` against `trace` on a cluster warm-started with
/// `initial` machines per architecture, and account energy + QoS exactly
/// like the event-driven engine.
///
/// Records must be sorted by [`ReconfigRecord::at`] (ties allowed, applied
/// in list order); each record's `target` is diffed against the previous
/// target (starting from `initial`) via
/// [`bml_core::reconfig::plan_reconfiguration`], so the schedule is the
/// same believed-configuration protocol the engine's `reconfig_log`
/// speaks.
///
/// # Panics
///
/// Panics if the schedule is not sorted by time.
pub fn replay_schedule(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    initial: &[u32],
    schedule: &[ReconfigRecord],
    split: SplitPolicy,
) -> ScenarioResult {
    assert!(
        schedule.windows(2).all(|w| w[0].at <= w[1].at),
        "schedule must be sorted by time"
    );
    let profiles = bml.candidates();
    let mut cluster = Cluster::with_online(profiles, initial, split);
    let mut believed = Configuration(initial.to_vec());
    let mut meter = EnergyMeter::new();
    let mut qos = QosReport::default();
    let mut scratch = Vec::with_capacity(profiles.len());
    let mut log = Vec::new();
    let mut reconfigurations = 0u64;
    let mut nodes_on = 0u64;
    let mut nodes_off = 0u64;
    let mut reconfig_energy = 0.0;

    let n = trace.len();
    let mut next_rec = 0usize;
    let mut now = 0u64;
    while now < n {
        cluster.tick(now);
        while next_rec < schedule.len() && schedule[next_rec].at == now {
            let record = &schedule[next_rec];
            next_rec += 1;
            let target = Configuration(record.target.clone());
            let Some(plan) = plan_reconfiguration(profiles, &believed, &target) else {
                continue; // no-op record
            };
            // Zero-duration transitions cannot be spread over time; charge
            // them as an instantaneous lump (mirrors the engine's
            // `decide_at`).
            let mut lump = 0.0;
            for &(k, c) in &plan.switch_on {
                if profiles[k].on_duration == 0.0 {
                    lump += f64::from(c) * profiles[k].on_energy;
                }
            }
            for &(k, c) in &plan.switch_off {
                if profiles[k].off_duration == 0.0 {
                    lump += f64::from(c) * profiles[k].off_energy;
                }
            }
            if lump > 0.0 {
                meter.add_energy(lump);
            }
            reconfigurations += 1;
            nodes_on += u64::from(plan.nodes_switched_on());
            nodes_off += u64::from(plan.nodes_switched_off());
            reconfig_energy += plan.energy;
            log.push(record.clone());
            cluster.apply(&plan, now);
            believed = target;
        }

        // Next replay event: a record application or a cluster lifecycle
        // epoch; between them pool states are constant, so accounting
        // batches over maximal constant-load runs.
        let mut next = n;
        if next_rec < schedule.len() {
            next = next.min(schedule[next_rec].at);
        }
        if let Some(t) = cluster.next_transition_event() {
            next = next.min(t);
        }
        let next = next.clamp(now + 1, n);

        let mut t = now;
        while t < next {
            let span_end = trace.run_end(t).min(next);
            let load = trace.get(t);
            let (power, served) = cluster.power_into(load, &mut scratch);
            meter.accumulate_span(power, span_end - t);
            qos.record_span(load, served, span_end - t);
            t = span_end;
        }
        now = next;
    }

    ScenarioResult {
        name: "Offline Optimal".into(),
        total_energy_j: meter.total_joules(),
        mean_power_w: meter.mean_power(),
        qos,
        reconfigurations,
        nodes_switched_on: nodes_on,
        nodes_switched_off: nodes_off,
        reconfig_energy_j: reconfig_energy,
        instance_migrations: 0,
        failures_injected: 0,
        segments_batched: 0,
        events_skipped: 0,
        fallback_unsegmented: 0,
        stepping_effective: Stepping::EventDriven,
        reconfig_log: log,
        daily_energy_j: meter.into_daily_joules(),
        optimal_energy_j: None,
        optimality_gap: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::catalog;

    fn bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    #[test]
    fn empty_schedule_holds_the_initial_fleet() {
        let bml = bml();
        let trace = LoadTrace::new(0, vec![500.0; 100]);
        let r = replay_schedule(&trace, &bml, &[1, 0, 0], &[], SplitPolicy::EfficiencyGreedy);
        let (w, _) = bml.config_power(&[1, 0, 0], 500.0, SplitPolicy::EfficiencyGreedy);
        assert!((r.total_energy_j - w * 100.0).abs() < 1e-9);
        assert_eq!(r.reconfigurations, 0);
        assert_eq!(r.qos.violation_seconds, 0);
    }

    #[test]
    fn boot_record_charges_the_ramp_and_matures_on_time() {
        let bml = bml();
        // 300 s at load 0; boot one chromebook (12 s, 49.3 J) at t=100.
        let trace = LoadTrace::new(0, vec![0.0; 300]);
        let r = replay_schedule(
            &trace,
            &bml,
            &[0, 0, 0],
            &[ReconfigRecord {
                at: 100,
                target: vec![0, 1, 0],
            }],
            SplitPolicy::EfficiencyGreedy,
        );
        // Ramp 49.3 J over [100, 112), then chromebook idle (4 W) for the
        // remaining 188 s.
        let expected = 49.3 + 4.0 * 188.0;
        assert!(
            (r.total_energy_j - expected).abs() < 1e-9,
            "{} vs {expected}",
            r.total_energy_j
        );
        assert_eq!(r.reconfigurations, 1);
        assert_eq!(r.nodes_switched_on, 1);
        assert!((r.reconfig_energy_j - 49.3).abs() < 1e-12);
        assert_eq!(r.reconfig_log.len(), 1);
    }

    #[test]
    fn off_record_truncates_the_ramp_at_the_horizon() {
        let bml = bml();
        // Shut one paravance (10 s off ramp, 657 J) 5 s before the end:
        // only half the ramp is inside the horizon.
        let trace = LoadTrace::new(0, vec![0.0; 100]);
        let r = replay_schedule(
            &trace,
            &bml,
            &[1, 0, 0],
            &[ReconfigRecord {
                at: 95,
                target: vec![0, 0, 0],
            }],
            SplitPolicy::EfficiencyGreedy,
        );
        let expected = 69.9 * 95.0 + 657.0 / 10.0 * 5.0;
        assert!(
            (r.total_energy_j - expected).abs() < 1e-9,
            "{} vs {expected}",
            r.total_energy_j
        );
        assert_eq!(r.nodes_switched_off, 1);
    }

    #[test]
    fn unsorted_schedule_panics() {
        let bml = bml();
        let trace = LoadTrace::new(0, vec![0.0; 10]);
        let schedule = vec![
            ReconfigRecord {
                at: 5,
                target: vec![0, 1, 0],
            },
            ReconfigRecord {
                at: 2,
                target: vec![0, 0, 0],
            },
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            replay_schedule(
                &trace,
                &bml,
                &[0, 0, 0],
                &schedule,
                SplitPolicy::EfficiencyGreedy,
            )
        }));
        assert!(result.is_err());
    }
}
