//! The simulated heterogeneous cluster: per-architecture machine pools
//! with a four-state power model (Off -> Booting -> On -> ShuttingDown).
//!
//! The paper assumes "enough machines of each type are available", so the
//! cluster tracks machine *counts* per architecture and state rather than
//! individual machine objects — with the linear power model of Step 1 the
//! two are equivalent, and counts keep an 87-day x 1 Hz simulation cheap.
//!
//! Transition power: a booting machine draws `on_energy / on_duration`
//! Watts for `on_duration` seconds (and symmetrically for shutdown), so
//! integrating per-second power reproduces exactly the Table I transition
//! energies the paper charges to reconfigurations.

use std::collections::VecDeque;

use bml_core::combination::{config_power, SplitPolicy};
use bml_core::profile::ArchProfile;
use bml_core::reconfig::ReconfigPlan;
use serde::{Deserialize, Serialize};

/// Machine counts of one architecture in each lifecycle state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ArchPool {
    /// Machines on and serving (including retiring machines that are still
    /// serving while their replacements boot).
    pub online: u32,
    /// `(completion_time, count)` batches currently booting.
    booting: VecDeque<(u64, u32)>,
    /// `(shutdown_start_time, count)` retiring batches: still online and
    /// serving, scheduled to begin shutdown once the plan's boots complete
    /// (graceful handover).
    pending_off: VecDeque<(u64, u32)>,
    /// `(completion_time, count)` batches currently shutting down.
    shutting: VecDeque<(u64, u32)>,
    /// `(reboot_start_time, count)` crashed machines under repair: they
    /// draw no power and serve nothing until the repair delay elapses,
    /// then reboot like a normal switch-on.
    repairing: VecDeque<(u64, u32)>,
}

impl ArchPool {
    /// Machines currently booting.
    pub fn booting_count(&self) -> u32 {
        self.booting.iter().map(|&(_, c)| c).sum()
    }

    /// Machines currently shutting down.
    pub fn shutting_count(&self) -> u32 {
        self.shutting.iter().map(|&(_, c)| c).sum()
    }

    /// Machines still serving but scheduled to retire.
    pub fn retiring_count(&self) -> u32 {
        self.pending_off.iter().map(|&(_, c)| c).sum()
    }

    /// Crashed machines waiting for repair.
    pub fn repairing_count(&self) -> u32 {
        self.repairing.iter().map(|&(_, c)| c).sum()
    }
}

/// The simulated cluster. Borrows the candidate profiles from the
/// infrastructure that owns them — a replay spins up one cluster per
/// scenario, and cloning the profile vector per run was a measurable
/// share of the sweep runners' allocations. Serialize-only: the borrowed
/// profiles slice cannot be deserialized into (rebuild a cluster from its
/// owning infrastructure instead).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Cluster<'a> {
    profiles: &'a [ArchProfile],
    pools: Vec<ArchPool>,
    split: SplitPolicy,
}

impl<'a> Cluster<'a> {
    /// Empty cluster (everything off) over the candidate profiles.
    pub fn new(profiles: &'a [ArchProfile], split: SplitPolicy) -> Self {
        let pools = vec![ArchPool::default(); profiles.len()];
        Cluster {
            profiles,
            pools,
            split,
        }
    }

    /// Cluster with `counts[k]` machines of each architecture already
    /// online (warm start).
    pub fn with_online(profiles: &'a [ArchProfile], counts: &[u32], split: SplitPolicy) -> Self {
        let mut c = Cluster::new(profiles, split);
        assert_eq!(counts.len(), c.pools.len());
        for (pool, &n) in c.pools.iter_mut().zip(counts) {
            pool.online = n;
        }
        c
    }

    /// The candidate profiles (Big first).
    pub fn profiles(&self) -> &[ArchProfile] {
        self.profiles
    }

    /// Per-architecture pool states.
    pub fn pools(&self) -> &[ArchPool] {
        &self.pools
    }

    /// Promote matured transitions: machines whose boot completes at or
    /// before `now` come online, retiring machines whose handover point
    /// arrived begin their shutdown, and completed shutdowns disappear.
    /// Call once per second, before applying decisions and measuring
    /// power.
    pub fn tick(&mut self, now: u64) {
        for (p, pool) in self.profiles.iter().zip(&mut self.pools) {
            while let Some(&(until, count)) = pool.booting.front() {
                if until <= now {
                    pool.booting.pop_front();
                    pool.online += count;
                } else {
                    break;
                }
            }
            while let Some(&(start, count)) = pool.pending_off.front() {
                if start <= now {
                    pool.pending_off.pop_front();
                    debug_assert!(pool.online >= count);
                    pool.online -= count;
                    let until = start + p.off_duration.ceil() as u64;
                    pool.shutting.push_back((until, count));
                } else {
                    break;
                }
            }
            while let Some(&(until, _)) = pool.shutting.front() {
                if until <= now {
                    pool.shutting.pop_front();
                } else {
                    break;
                }
            }
            // Repaired machines start their reboot; sorted insertion keeps
            // the booting queue ordered even though repairs interleave
            // with planned switch-ons.
            while let Some(&(start, count)) = pool.repairing.front() {
                if start <= now {
                    pool.repairing.pop_front();
                    let until = start + p.on_duration.ceil() as u64;
                    let pos = pool
                        .booting
                        .iter()
                        .position(|&(u, _)| u > until)
                        .unwrap_or(pool.booting.len());
                    pool.booting.insert(pos, (until, count));
                } else {
                    break;
                }
            }
        }
    }

    /// Crash one online machine of architecture `k` at time `now`: it
    /// leaves service immediately, stays dark for `repair_s`, then reboots
    /// (paying the normal boot duration and energy). Returns `false` when
    /// no machine of that architecture is online to crash.
    pub fn fail_one(&mut self, k: usize, now: u64, repair_s: u64) -> bool {
        let pool = &mut self.pools[k];
        if pool.online == 0 {
            return false;
        }
        pool.online -= 1;
        // A retiring machine may be the one that died; shrink the pending
        // retirement so the handover bookkeeping stays consistent.
        if pool.retiring_count() > pool.online {
            if let Some(front) = pool.pending_off.front_mut() {
                front.1 -= 1;
                if front.1 == 0 {
                    pool.pending_off.pop_front();
                }
            }
        }
        pool.repairing.push_back((now + repair_s, 1));
        true
    }

    /// Apply a reconfiguration plan decided at time `now`.
    ///
    /// Switch-ons start booting immediately and join service after their
    /// architecture's `on_duration`. Switch-offs follow the graceful
    /// handover: when the plan boots machines, retiring machines keep
    /// serving until the slowest boot completes and only then start their
    /// shutdown; a pure scale-down begins shutting down immediately.
    ///
    /// A switch-off is clamped to the machines actually available
    /// (online minus those already retiring): the scheduler plans against
    /// its *believed* configuration, and a machine that crashed since —
    /// it is dark in repair, not serving — cannot be switched off again.
    /// Without failure injection the scheduler's lock-out makes the clamp
    /// a no-op.
    pub fn apply(&mut self, plan: &ReconfigPlan, now: u64) {
        let boot_complete = now
            + plan
                .switch_on
                .iter()
                .map(|&(k, _)| self.profiles[k].on_duration.ceil() as u64)
                .max()
                .unwrap_or(0);
        for &(k, n) in &plan.switch_off {
            let pool = &mut self.pools[k];
            let n = n.min(pool.online - pool.retiring_count());
            if n == 0 {
                continue;
            }
            if boot_complete <= now {
                pool.online -= n;
                let until = now + self.profiles[k].off_duration.ceil() as u64;
                pool.shutting.push_back((until, n));
            } else {
                pool.pending_off.push_back((boot_complete, n));
            }
        }
        for &(k, n) in &plan.switch_on {
            let until = now + self.profiles[k].on_duration.ceil() as u64;
            self.pools[k].booting.push_back((until, n));
        }
        // Keep completion queues ordered (durations are per-arch constants,
        // so appends are already non-decreasing per pool).
        debug_assert!(self.pools.iter().all(|p| p
            .booting
            .iter()
            .zip(p.booting.iter().skip(1))
            .all(|(a, b)| a.0 <= b.0)));
    }

    /// Online machine counts per architecture.
    pub fn online_counts(&self) -> Vec<u32> {
        self.pools.iter().map(|p| p.online).collect()
    }

    /// Serving capacity (application metric units/s) of online machines.
    pub fn capacity(&self) -> f64 {
        self.profiles
            .iter()
            .zip(&self.pools)
            .map(|(p, pool)| f64::from(pool.online) * p.max_perf)
            .sum()
    }

    /// Power drawn by in-flight transitions (W): booting machines draw
    /// `on_energy / on_duration`, shutting machines `off_energy /
    /// off_duration`. Zero-duration transitions contribute nothing here
    /// (their energy is zero or accounted as an instantaneous lump by the
    /// caller).
    pub fn transition_power(&self) -> f64 {
        self.profiles
            .iter()
            .zip(&self.pools)
            .map(|(p, pool)| {
                let boot = if p.on_duration > 0.0 {
                    f64::from(pool.booting_count()) * p.on_energy / p.on_duration
                } else {
                    0.0
                };
                let shut = if p.off_duration > 0.0 {
                    f64::from(pool.shutting_count()) * p.off_energy / p.off_duration
                } else {
                    0.0
                };
                boot + shut
            })
            .sum()
    }

    /// Total power (W) and served load for this second: online machines
    /// serve `load` under the cluster's split policy, transitions add
    /// their ramp power.
    pub fn power(&self, load: f64) -> (f64, f64) {
        let mut scratch = Vec::with_capacity(self.pools.len());
        self.power_into(load, &mut scratch)
    }

    /// Allocation-free variant of [`Cluster::power`] for hot replay
    /// loops: the caller owns the online-counts scratch buffer and reuses
    /// it across calls.
    pub fn power_into(&self, load: f64, counts_scratch: &mut Vec<u32>) -> (f64, f64) {
        counts_scratch.clear();
        counts_scratch.extend(self.pools.iter().map(|p| p.online));
        let (serving, served) = config_power(self.profiles, counts_scratch, load, self.split);
        (serving + self.transition_power(), served)
    }

    /// Earliest pending lifecycle epoch across all pools — a boot
    /// completion, a retirement handover start, a shutdown completion, or
    /// a crashed machine's repair start — or `None` when no transition is
    /// in flight. The event-driven engine must [`Cluster::tick`] at every
    /// such instant; *between* them online counts and ramp power are
    /// constant, which is what makes span-wise integration exact.
    pub fn next_transition_event(&self) -> Option<u64> {
        self.pools
            .iter()
            .flat_map(|p| {
                p.booting
                    .iter()
                    .chain(&p.pending_off)
                    .chain(&p.shutting)
                    .chain(&p.repairing)
                    .map(|&(t, _)| t)
            })
            .min()
    }

    /// Transition-ramp energy (J) over a span of `secs` seconds that
    /// contains no transition epoch (see
    /// [`Cluster::next_transition_event`]): booting/shutting counts are
    /// constant over such a span, so the per-second ramps integrate
    /// exactly to `transition_power() * secs`.
    ///
    /// This is the span-integration *identity* the event-driven engine
    /// relies on — there the ramp is folded into the total power
    /// ([`Cluster::power_into`]) and integrated by
    /// `EnergyMeter::accumulate_span`, so this helper is for external
    /// substrates and tests that want the ramp share in isolation.
    pub fn transition_energy_over(&self, secs: u64) -> f64 {
        self.transition_power() * secs as f64
    }

    /// Machines tracked in any state (diagnostics).
    pub fn total_tracked(&self) -> u32 {
        self.pools
            .iter()
            .map(|p| p.online + p.booting_count() + p.shutting_count() + p.repairing_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::catalog;
    use bml_core::reconfig::{plan_reconfiguration, Configuration};

    fn trio() -> Vec<ArchProfile> {
        catalog::paper_bml_trio()
    }

    fn plan(from: &[u32], to: &[u32]) -> ReconfigPlan {
        plan_reconfiguration(
            &catalog::paper_bml_trio(),
            &Configuration(from.to_vec()),
            &Configuration(to.to_vec()),
        )
        .unwrap()
    }

    #[test]
    fn boot_takes_on_duration() {
        let profiles = trio();
        let mut c = Cluster::new(&profiles, SplitPolicy::EfficiencyGreedy);
        c.apply(&plan(&[0, 0, 0], &[0, 1, 0]), 100); // chromebook: 12 s
        assert_eq!(c.online_counts(), vec![0, 0, 0]);
        assert_eq!(c.pools()[1].booting_count(), 1);
        c.tick(111);
        assert_eq!(c.online_counts(), vec![0, 0, 0]);
        c.tick(112);
        assert_eq!(c.online_counts(), vec![0, 1, 0]);
        assert_eq!(c.pools()[1].booting_count(), 0);
    }

    #[test]
    fn boot_power_integrates_to_on_energy() {
        let profiles = trio();
        let mut c = Cluster::new(&profiles, SplitPolicy::EfficiencyGreedy);
        c.apply(&plan(&[0, 0, 0], &[1, 0, 0]), 0); // paravance: 189 s, 21341 J
        let mut energy = 0.0;
        for t in 0..189 {
            c.tick(t);
            energy += c.transition_power();
        }
        assert!((energy - 21341.0).abs() < 1e-6, "boot energy {energy}");
        c.tick(189);
        assert_eq!(c.online_counts(), vec![1, 0, 0]);
        assert_eq!(c.transition_power(), 0.0);
    }

    #[test]
    fn span_integration_matches_per_second_ramp() {
        // The event-driven engine's span identity: over the whole boot
        // (no transition epoch strictly inside), ramp energy integrates
        // in one multiplication to exactly the Table I boot energy.
        let profiles = trio();
        let mut c = Cluster::new(&profiles, SplitPolicy::EfficiencyGreedy);
        c.apply(&plan(&[0, 0, 0], &[1, 0, 0]), 0); // paravance: 189 s, 21341 J
        c.tick(0);
        assert_eq!(c.next_transition_event(), Some(189));
        assert!((c.transition_energy_over(189) - 21341.0).abs() < 1e-6);
        // And the buffered power path agrees with the allocating one.
        let mut scratch = Vec::new();
        assert_eq!(c.power_into(0.0, &mut scratch), c.power(0.0));
        c.tick(189);
        assert_eq!(c.next_transition_event(), None);
        assert_eq!(c.transition_energy_over(1_000), 0.0);
    }

    #[test]
    fn shutdown_leaves_service_immediately() {
        let profiles = trio();
        let mut c = Cluster::with_online(&profiles, &[1, 0, 0], SplitPolicy::EfficiencyGreedy);
        assert_eq!(c.capacity(), 1331.0);
        c.apply(&plan(&[1, 0, 0], &[0, 0, 0]), 50); // off: 10 s, 657 J
        assert_eq!(c.capacity(), 0.0);
        let mut energy = 0.0;
        for t in 50..60 {
            c.tick(t);
            energy += c.transition_power();
        }
        assert!((energy - 657.0).abs() < 1e-6, "shutdown energy {energy}");
        c.tick(60);
        assert_eq!(c.total_tracked(), 0);
    }

    #[test]
    fn serving_power_plus_transitions() {
        let profiles = trio();
        let mut c = Cluster::with_online(&profiles, &[0, 1, 0], SplitPolicy::EfficiencyGreedy);
        c.apply(&plan(&[0, 1, 0], &[0, 1, 1]), 0); // boot a raspberry
        c.tick(0);
        let (w, served) = c.power(20.0);
        // Chromebook serving 20 + raspberry booting (40.5 J / 16 s).
        let expected = 4.0 + (7.6 - 4.0) / 33.0 * 20.0 + 40.5 / 16.0;
        assert!((w - expected).abs() < 1e-9);
        assert_eq!(served, 20.0);
    }

    #[test]
    fn overload_served_capped() {
        let profiles = trio();
        let c = Cluster::with_online(&profiles, &[0, 0, 2], SplitPolicy::EfficiencyGreedy);
        let (_, served) = c.power(100.0);
        assert_eq!(served, 18.0);
    }

    #[test]
    fn switching_off_more_than_online_clamps_to_available() {
        // The scheduler plans against its believed configuration; crashed
        // machines are dark in repair and cannot be switched off again.
        let profiles = trio();
        let mut c = Cluster::new(&profiles, SplitPolicy::EfficiencyGreedy);
        c.apply(&plan(&[2, 0, 0], &[0, 0, 0]), 0);
        assert_eq!(c.online_counts(), vec![0, 0, 0]);
        assert_eq!(c.pools()[0].shutting_count(), 0, "nothing was online");
    }

    #[test]
    fn instant_transitions() {
        let profiles = vec![
            ArchProfile::without_transitions("big", 10.0, 50.0, 100.0).unwrap(),
            ArchProfile::without_transitions("little", 1.0, 3.0, 10.0).unwrap(),
        ];
        let plan = plan_reconfiguration(
            &profiles,
            &Configuration(vec![0, 0]),
            &Configuration(vec![1, 0]),
        )
        .unwrap();
        let mut c = Cluster::new(&profiles, SplitPolicy::EfficiencyGreedy);
        c.apply(&plan, 5);
        c.tick(5);
        assert_eq!(c.online_counts(), vec![1, 0]);
        assert_eq!(c.transition_power(), 0.0);
    }

    #[test]
    fn staggered_boots_complete_independently() {
        let profiles = trio();
        let mut c = Cluster::new(&profiles, SplitPolicy::EfficiencyGreedy);
        c.apply(&plan(&[0, 0, 0], &[0, 1, 0]), 0); // CB online at 12
                                                   // Lock-free in this unit test: apply another boot at t=5.
        c.apply(&plan(&[0, 1, 0], &[0, 2, 0]), 5); // second CB online at 17
        c.tick(12);
        assert_eq!(c.online_counts(), vec![0, 1, 0]);
        c.tick(17);
        assert_eq!(c.online_counts(), vec![0, 2, 0]);
    }

    #[test]
    fn mixed_plan_graceful_handover() {
        let profiles = trio();
        let mut c = Cluster::with_online(&profiles, &[1, 0, 0], SplitPolicy::EfficiencyGreedy);
        c.apply(&plan(&[1, 0, 0], &[0, 16, 1]), 0);
        // The Big keeps serving while the small machines boot.
        assert_eq!(c.online_counts(), vec![1, 0, 0]);
        assert_eq!(c.capacity(), 1331.0);
        assert_eq!(c.pools()[1].booting_count(), 16);
        assert_eq!(c.pools()[2].booting_count(), 1);
        assert_eq!(c.pools()[0].retiring_count(), 1);
        // Boots complete at t=16 (slowest: raspberry); the Big hands over
        // and starts its 10 s shutdown.
        // Chromebooks (12 s boot) are already up at t=15; the Big has not
        // handed over yet because the raspberry is still booting.
        c.tick(15);
        assert_eq!(c.online_counts(), vec![1, 16, 0]);
        c.tick(16);
        assert_eq!(c.online_counts(), vec![0, 16, 1]);
        assert_eq!(c.pools()[0].shutting_count(), 1);
        c.tick(26);
        assert_eq!(c.total_tracked(), 17);
    }

    #[test]
    fn capacity_never_drops_during_handover() {
        // The whole point of the handover: an architecture swap keeps the
        // old capacity until the new capacity is up.
        let profiles = trio();
        let mut c = Cluster::with_online(&profiles, &[0, 16, 0], SplitPolicy::EfficiencyGreedy);
        c.apply(&plan(&[0, 16, 0], &[1, 0, 0]), 0); // 16 CBs -> 1 Big
        for t in 0..189 {
            c.tick(t);
            assert!(c.capacity() >= 16.0 * 33.0, "capacity dipped at t={t}");
        }
        c.tick(189);
        assert_eq!(c.online_counts(), vec![1, 0, 0]);
        assert_eq!(c.pools()[1].shutting_count(), 16);
    }
}
