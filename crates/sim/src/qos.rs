//! QoS accounting: per-second demand-vs-served bookkeeping, so every
//! scenario reports whether it "satisfied Quality of Service constraints"
//! (paper abstract) alongside its energy.

use serde::{Deserialize, Serialize};

/// Aggregated QoS outcome of one simulated scenario.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QosReport {
    /// Seconds with non-zero demand.
    pub demand_seconds: u64,
    /// Seconds where served < demand (beyond rounding).
    pub violation_seconds: u64,
    /// Sum of demanded load over the run (metric units x s).
    pub total_demand: f64,
    /// Sum of served load over the run.
    pub total_served: f64,
    /// Largest single-second shortfall fraction observed, in `[0, 1]`.
    pub worst_shortfall: f64,
}

impl QosReport {
    /// Record one second of `demand` against `served`. Negative demand is
    /// treated as zero.
    pub fn record(&mut self, demand: f64, served: f64) {
        self.record_span(demand, served, 1);
    }

    /// Record `secs` consecutive seconds of identical `demand` vs `served`
    /// in O(1) — the span-wise violation counting of the event-driven
    /// replay engine, which batches accounting over maximal runs of
    /// constant load and cluster state.
    pub fn record_span(&mut self, demand: f64, served: f64, secs: u64) {
        if demand <= 0.0 || secs == 0 {
            return;
        }
        debug_assert!(served <= demand + 1e-9, "cannot serve more than demanded");
        self.demand_seconds += secs;
        self.total_demand += demand * secs as f64;
        self.total_served += served.min(demand) * secs as f64;
        let shortfall = ((demand - served) / demand).clamp(0.0, 1.0);
        if shortfall > 1e-9 {
            self.violation_seconds += secs;
            if shortfall > self.worst_shortfall {
                self.worst_shortfall = shortfall;
            }
        }
    }

    /// Overall fraction of demand that went unserved, in `[0, 1]`.
    pub fn shortfall_fraction(&self) -> f64 {
        if self.total_demand <= 0.0 {
            0.0
        } else {
            ((self.total_demand - self.total_served) / self.total_demand).clamp(0.0, 1.0)
        }
    }

    /// Fraction of demand seconds that violated QoS.
    pub fn violation_fraction(&self) -> f64 {
        if self.demand_seconds == 0 {
            0.0
        } else {
            self.violation_seconds as f64 / self.demand_seconds as f64
        }
    }

    /// Does this run satisfy a tolerated shortfall of `max_shortfall`
    /// (e.g. from `bml_app::QosClass::tolerated_shortfall`)?
    pub fn satisfies(&self, max_shortfall: f64) -> bool {
        self.shortfall_fraction() <= max_shortfall + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_service() {
        let mut q = QosReport::default();
        for _ in 0..100 {
            q.record(50.0, 50.0);
        }
        assert_eq!(q.demand_seconds, 100);
        assert_eq!(q.violation_seconds, 0);
        assert_eq!(q.shortfall_fraction(), 0.0);
        assert_eq!(q.worst_shortfall, 0.0);
        assert!(q.satisfies(0.0));
    }

    #[test]
    fn shortfall_tracked() {
        let mut q = QosReport::default();
        q.record(100.0, 90.0);
        q.record(100.0, 100.0);
        assert_eq!(q.violation_seconds, 1);
        assert!((q.shortfall_fraction() - 10.0 / 200.0).abs() < 1e-12);
        assert!((q.worst_shortfall - 0.1).abs() < 1e-12);
        assert!(q.satisfies(0.06));
        assert!(!q.satisfies(0.01));
    }

    #[test]
    fn zero_demand_ignored() {
        let mut q = QosReport::default();
        q.record(0.0, 0.0);
        q.record(-5.0, 0.0);
        assert_eq!(q.demand_seconds, 0);
        assert_eq!(q.violation_fraction(), 0.0);
        assert_eq!(q.shortfall_fraction(), 0.0);
    }

    #[test]
    fn span_counts_match_per_second_counters() {
        let mut per_second = QosReport::default();
        let mut span = QosReport::default();
        for _ in 0..37 {
            per_second.record(80.0, 60.0);
        }
        span.record_span(80.0, 60.0, 37);
        assert_eq!(per_second.demand_seconds, span.demand_seconds);
        assert_eq!(per_second.violation_seconds, span.violation_seconds);
        assert_eq!(per_second.worst_shortfall, span.worst_shortfall);
        assert!((per_second.total_demand - span.total_demand).abs() < 1e-9);
        assert!((per_second.total_served - span.total_served).abs() < 1e-9);
        // Zero-demand and zero-length spans are no-ops.
        span.record_span(0.0, 0.0, 100);
        span.record_span(50.0, 50.0, 0);
        assert_eq!(span.demand_seconds, 37);
    }

    #[test]
    fn violation_fraction() {
        let mut q = QosReport::default();
        q.record(10.0, 0.0);
        q.record(10.0, 10.0);
        q.record(10.0, 5.0);
        q.record(10.0, 10.0);
        assert_eq!(q.violation_fraction(), 0.5);
        assert_eq!(q.worst_shortfall, 1.0);
    }
}
