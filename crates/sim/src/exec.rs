//! The shared experiment-cell executor.
//!
//! Every experiment in this repo — the four ablation sweeps in
//! [`crate::runner`], the `bml-grid` multi-dimensional scenario grids, the
//! bench binaries — boils down to the same unit of work: *run the BML
//! pro-active scenario once under a specific knob setting*. This module is
//! the single implementation of that unit ([`run_cell`]) plus the one
//! parallel fan-out everything shares ([`run_cells`]).
//!
//! Determinism contract: [`run_cells`] preserves input order (the rayon
//! parallel map deposits each result in its input's slot — the vendored
//! shim schedules workers by range stealing, so *which* worker runs a
//! cell varies, but *where* its result lands never does), and each cell's
//! randomness is confined to its own [`CellConfig::noise_seed`], so the
//! result vector is **bit-identical regardless of the worker-thread
//! count**. `bml-grid` relies on this to emit byte-identical artifacts at
//! any `--threads` setting, and keys its content-addressed cell cache on
//! [`CellConfig::stable_descriptor`].

use bml_app::ApplicationSpec;
use bml_core::bml::BmlInfrastructure;
use bml_core::combination::SplitPolicy;
use bml_core::scheduler::paper_window_length;
use bml_trace::{LoadTrace, LookaheadMaxPredictor, NoisyPredictor};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::engine::{
    simulate_bml, FailureModel, ScenarioResult, SchedulerKind, SimConfig, Stepping,
};

/// Everything that distinguishes one experiment cell from another, apart
/// from the trace and the infrastructure it runs against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Scheduler implementation driving the reconfigurations.
    pub scheduler: SchedulerKind,
    /// Look-ahead window (s); `None` = the paper's 2x-longest-boot rule.
    pub window: Option<u64>,
    /// Relative gaussian prediction-error sigma; 0 = clean prediction.
    pub noise_sigma: f64,
    /// RNG seed of the noise injection (unused at sigma 0).
    pub noise_seed: u64,
    /// Load-split policy across online machines.
    pub split: SplitPolicy,
    /// Engine stepping mode.
    pub stepping: Stepping,
    /// Start from an all-off cluster instead of pre-warming.
    pub cold_start: bool,
    /// Application spec for migration accounting (`None` disables it).
    pub app: Option<ApplicationSpec>,
    /// Optional machine-crash injection (counter-based, event-drivable).
    pub failures: Option<FailureModel>,
}

impl CellConfig {
    /// Lift a [`SimConfig`] into a clean-prediction cell: same scheduler,
    /// window, split, stepping, cold-start, app and failure-model
    /// settings, no noise.
    pub fn from_sim(base: &SimConfig) -> Self {
        CellConfig {
            scheduler: base.scheduler.clone(),
            window: base.window,
            noise_sigma: 0.0,
            noise_seed: 0,
            split: base.split,
            stepping: base.stepping,
            cold_start: base.cold_start,
            app: base.app.clone(),
            failures: base.failures.clone(),
        }
    }

    /// Canonical content description of this cell for cache keying.
    ///
    /// Every field is rendered deterministically (floats through Rust's
    /// shortest-roundtrip `Debug`, which is host- and thread-independent),
    /// so two configs produce the same descriptor iff they describe the
    /// same computation. A `CellConfig` field added without reaching this
    /// derive would silently alias cache entries; rendering the whole
    /// struct keeps the descriptor honest by construction. The noise seed
    /// is canonicalized to 0 when `noise_sigma == 0` — an unused seed must
    /// not split cache entries for identical clean runs.
    pub fn stable_descriptor(&self) -> String {
        if self.noise_sigma == 0.0 && self.noise_seed != 0 {
            let canonical = CellConfig {
                noise_seed: 0,
                ..self.clone()
            };
            return format!("{canonical:?}");
        }
        format!("{self:?}")
    }

    /// The engine configuration this cell runs under.
    fn sim_config(&self) -> SimConfig {
        SimConfig {
            window: self.window,
            split: self.split,
            cold_start: self.cold_start,
            app: self.app.clone(),
            scheduler: self.scheduler.clone(),
            failures: self.failures.clone(),
            stepping: self.stepping,
        }
    }
}

/// One unit of grid work: a cell bound to its trace and infrastructure.
/// Cells in one batch may share traces and infrastructures (the grid
/// executor caches both), hence the borrows.
#[derive(Debug, Clone)]
pub struct CellJob<'a> {
    /// The load trace the scenario replays.
    pub trace: &'a LoadTrace,
    /// The BML infrastructure serving it.
    pub bml: &'a BmlInfrastructure,
    /// The knob setting under test.
    pub cell: CellConfig,
}

/// Run one experiment cell: the BML pro-active scenario with the cell's
/// scheduler/window/split/stepping, under clean look-ahead-max prediction
/// at sigma 0 or noise-injected prediction otherwise.
///
/// At sigma 0 this is exactly [`crate::scenarios::bml_proactive`]; with
/// noise the wrapper's counter-based error factor resamples once per
/// look-ahead window (`mix(noise_seed, window_index)`, see
/// [`bml_core::rng`]), so noisy cells honor the requested stepping just
/// like clean ones.
pub fn run_cell(trace: &LoadTrace, bml: &BmlInfrastructure, cell: &CellConfig) -> ScenarioResult {
    let config = cell.sim_config();
    let window = cell
        .window
        .unwrap_or_else(|| paper_window_length(bml.candidates()));
    let mut inner = LookaheadMaxPredictor::new(trace, window);
    if cell.noise_sigma == 0.0 {
        simulate_bml(trace, bml, &mut inner, &config)
    } else {
        let mut predictor =
            NoisyPredictor::with_resample(inner, cell.noise_sigma, cell.noise_seed, window);
        simulate_bml(trace, bml, &mut predictor, &config)
    }
}

/// Execute a batch of cells in parallel, returning results in input order.
///
/// `threads` caps the worker count (`None` = rayon's default). The cap
/// only changes wall-clock time, never results: output order is the input
/// order and cells share no mutable state.
pub fn run_cells(jobs: &[CellJob<'_>], threads: Option<usize>) -> Vec<ScenarioResult> {
    let run = || {
        jobs.par_iter()
            .map(|j| run_cell(j.trace, j.bml, &j.cell))
            .collect()
    };
    match threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n.max(1))
            .build()
            .expect("thread pool construction cannot fail")
            .install(run),
        None => run(),
    }
}

/// A cell execution that panicked instead of producing a result: the
/// payload, rendered to a message (`String`/`&str` payloads verbatim,
/// anything else a placeholder). Produced by [`run_cells_checked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// The panic message (best-effort rendering of the payload).
    pub message: String,
}

/// Render a caught panic payload to a message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Fault-isolated variant of [`run_cells`]: each cell runs under
/// `catch_unwind`, so one panicking cell yields an `Err(CellPanic)` in
/// its slot while every other cell still completes — the grid executor's
/// retry/quarantine layer is built on this.
///
/// `inject` is a deterministic fault hook (the chaos harness): called
/// with each job's **batch-local index** before the cell runs; returning
/// `Some(msg)` makes that cell panic with `msg` instead of executing.
/// The determinism contract of [`run_cells`] carries over: results land
/// in input order whatever the thread count, and injection depends only
/// on the index, never on scheduling.
pub fn run_cells_checked(
    jobs: &[CellJob<'_>],
    threads: Option<usize>,
    inject: Option<&(dyn Fn(usize) -> Option<String> + Sync)>,
) -> Vec<Result<ScenarioResult, CellPanic>> {
    let indices: Vec<usize> = (0..jobs.len()).collect();
    let run = || {
        indices
            .par_iter()
            .map(|&i| {
                let j = &jobs[i];
                // `run_cell` only touches the job's own borrows, and a
                // panicking cell contributes nothing but its message, so
                // no broken invariant can leak across the boundary.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(msg) = inject.and_then(|f| f(i)) {
                        panic!("{msg}");
                    }
                    run_cell(j.trace, j.bml, &j.cell)
                }))
                .map_err(|payload| CellPanic {
                    message: panic_message(payload.as_ref()),
                })
            })
            .collect()
    };
    match threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n.max(1))
            .build()
            .expect("thread pool construction cannot fail")
            .install(run),
        None => run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use bml_core::catalog;

    fn bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    fn clean_cell() -> CellConfig {
        CellConfig::from_sim(&SimConfig::default())
    }

    /// A piecewise step trace: cheap to simulate in debug builds while
    /// still exercising reconfigurations.
    fn step_trace(levels: &[f64], len: usize) -> LoadTrace {
        let mut rates = Vec::with_capacity(levels.len() * len);
        for &l in levels {
            rates.extend(std::iter::repeat_n(l, len));
        }
        LoadTrace::new(0, rates)
    }

    #[test]
    fn clean_cell_matches_bml_proactive() {
        let trace = step_trace(&[40.0, 900.0, 120.0], 1_200);
        let bml = bml();
        let via_cell = run_cell(&trace, &bml, &clean_cell());
        let via_scenario = scenarios::bml_proactive(&trace, &bml, &SimConfig::default());
        assert_eq!(via_cell, via_scenario);
    }

    #[test]
    fn noisy_cell_is_deterministic_in_its_seed() {
        let trace = step_trace(&[80.0, 700.0], 1_500);
        let bml = bml();
        let cell = CellConfig {
            noise_sigma: 0.2,
            noise_seed: 11,
            ..clean_cell()
        };
        let a = run_cell(&trace, &bml, &cell);
        let b = run_cell(&trace, &bml, &cell);
        assert_eq!(a, b);
        // Counter-based noise keeps the cell on the requested fast path.
        assert_eq!(a.stepping_effective, Stepping::EventDriven);
        let other_seed = run_cell(
            &trace,
            &bml,
            &CellConfig {
                noise_seed: 12,
                ..cell
            },
        );
        assert_ne!(a, other_seed, "noise seed must matter");
    }

    #[test]
    fn failure_model_survives_the_cell_wrapping() {
        // The sweeps lift SimConfig through CellConfig::from_sim; a base
        // with crash injection must keep injecting (regression: the
        // wrapper once dropped `failures`).
        let trace = step_trace(&[150.0], 3_000);
        let bml = bml();
        let base = SimConfig {
            failures: Some(FailureModel::new(400.0, 20, 5)),
            ..Default::default()
        };
        let via_cell = run_cell(&trace, &bml, &CellConfig::from_sim(&base));
        assert!(via_cell.failures_injected > 0, "failure model was dropped");
        let direct = crate::scenarios::bml_proactive(&trace, &bml, &base);
        assert_eq!(via_cell, direct);
    }

    #[test]
    fn stable_descriptor_tracks_content_not_unused_seeds() {
        let clean = clean_cell();
        // Unused noise seeds are canonicalized away...
        let reseeded = CellConfig {
            noise_seed: 99,
            ..clean.clone()
        };
        assert_eq!(clean.stable_descriptor(), reseeded.stable_descriptor());
        // ...but a seed that feeds actual noise distinguishes cells,
        let noisy = CellConfig {
            noise_sigma: 0.2,
            noise_seed: 99,
            ..clean.clone()
        };
        let noisy_other = CellConfig {
            noise_seed: 100,
            ..noisy.clone()
        };
        assert_ne!(noisy.stable_descriptor(), noisy_other.stable_descriptor());
        // and every knob reaches the descriptor.
        for other in [
            CellConfig {
                window: Some(777),
                ..clean.clone()
            },
            CellConfig {
                stepping: Stepping::PerSecond,
                ..clean.clone()
            },
            CellConfig {
                split: SplitPolicy::ProportionalToCapacity,
                ..clean.clone()
            },
            CellConfig {
                failures: Some(FailureModel::new(400.0, 20, 5)),
                ..clean.clone()
            },
        ] {
            assert_ne!(clean.stable_descriptor(), other.stable_descriptor());
        }
        // Deterministic across calls (the cache key contract).
        assert_eq!(clean.stable_descriptor(), clean.stable_descriptor());
    }

    #[test]
    fn run_cells_checked_isolates_injected_panics() {
        let traces: Vec<_> = [200.0, 600.0, 1_000.0]
            .iter()
            .map(|&peak| step_trace(&[peak], 800))
            .collect();
        let bml = bml();
        let jobs: Vec<CellJob<'_>> = traces
            .iter()
            .map(|t| CellJob {
                trace: t,
                bml: &bml,
                cell: clean_cell(),
            })
            .collect();
        let inject = |i: usize| (i == 1).then(|| format!("chaos: cell {i}"));
        let clean = run_cells(&jobs, Some(1));
        for threads in [1, 4] {
            let checked = run_cells_checked(&jobs, Some(threads), Some(&inject));
            assert_eq!(checked.len(), 3);
            // Non-injected cells match the plain path bit-for-bit.
            assert_eq!(checked[0].as_ref().unwrap(), &clean[0]);
            assert_eq!(checked[2].as_ref().unwrap(), &clean[2]);
            // The injected cell fails with its message, in its slot.
            let panic = checked[1].as_ref().unwrap_err();
            assert_eq!(panic.message, "chaos: cell 1");
        }
        // No injection: every slot is Ok and equals the plain path.
        let unchecked = run_cells_checked(&jobs, Some(4), None);
        let ok: Vec<_> = unchecked.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(ok, clean);
    }

    #[test]
    fn run_cells_preserves_order_across_thread_counts() {
        let traces: Vec<_> = [300.0, 800.0, 1_500.0, 50.0]
            .iter()
            .map(|&peak| step_trace(&[peak * 0.1, peak], 1_000))
            .collect();
        let bml = bml();
        let jobs: Vec<CellJob<'_>> = traces
            .iter()
            .map(|t| CellJob {
                trace: t,
                bml: &bml,
                cell: clean_cell(),
            })
            .collect();
        let one = run_cells(&jobs, Some(1));
        let many = run_cells(&jobs, Some(4));
        let default = run_cells(&jobs, None);
        assert_eq!(one, many);
        assert_eq!(one, default);
        // Order check: energies track the peak ordering of the traces.
        assert!(one[3].total_energy_j < one[0].total_energy_j);
        assert!(one[0].total_energy_j < one[2].total_energy_j);
    }
}
