//! The BML simulation engine: the paper's pro-active placement loop
//! (Sec. V-C) driven over a load trace, with two interchangeable
//! stepping modes.
//!
//! # Per-second mode (the reference implementation)
//!
//! Each second the engine (1) promotes matured machine transitions,
//! (2) lets the scheduler decide — unless a reconfiguration is in flight —
//! using the predictor's window view, (3) applies any reconfiguration plan
//! to the cluster, then (4) measures power (serving + transition ramps)
//! and QoS for that second. Daily energies therefore contain "the energy
//! consumed by computation and by On/Off reconfigurations", exactly as
//! Fig. 5 accounts them.
//!
//! # Event-driven mode (skip-ahead replay)
//!
//! Everything the per-second loop computes is piecewise-constant in time:
//! the prediction is constant between change-points of the look-ahead-max
//! table, the scheduler's decision is a pure function of (prediction,
//! current configuration), and the cluster's power is a pure function of
//! (raw load, pool states), where pool states only change at transition
//! maturity epochs. So instead of ticking 86 400 times per simulated day,
//! the event-driven loop jumps `now` directly to the next *event*:
//!
//! * a **prediction change-point** ([`bml_trace::Predictor::next_change`]
//!   — for a noisy predictor this includes its noise-resample points),
//! * a **transition maturity epoch** — boot completion, handover,
//!   shutdown completion, repair expiry
//!   ([`Cluster::next_transition_event`]),
//! * the **reconfiguration unlock** instant (the schedulers'
//!   `next_wakeup` hint),
//! * the next **failure epoch** of any online machine slot
//!   ([`FailureModel`] — counter-based, so the epoch is known without
//!   replaying the seconds before it),
//!
//! and batches the power/QoS accounting of the skipped stretch over the
//! maximal runs of constant raw load inside it
//! ([`bml_trace::LoadTrace::run_end`], `EnergyMeter::accumulate_span`,
//! `QosReport::record_span` — day boundaries are split inside the meter).
//! A 378 s flat stretch costs one update instead of 378. Both modes are
//! property-tested to produce the same daily energies, QoS counters and
//! reconfiguration log (energies agree to float-accumulation rounding,
//! everything discrete exactly) — including noisy and failure-injected
//! runs, whose samples are pure functions of `(seed, counter)`
//! ([`bml_core::rng`]) and therefore identical no matter how time is
//! stepped.
//!
//! # When per-second mode is still required
//!
//! The event-driven engine silently falls back to the per-second loop
//! only when the predictor itself cannot be segmented:
//! `Predictor::is_segmented() == false` — EWMA and last-value, which
//! genuinely depend on observing every second. Prediction noise and
//! failure injection no longer force a fallback: both sample from the
//! counter-based PRF streams of [`bml_core::rng`] (noise keyed on
//! `(seed, resample_window)`, failure gaps keyed on
//! `(seed, arch, slot, failure_index)`), so skipping seconds cannot
//! change any draw. The chosen loop is reported in
//! [`ScenarioResult::stepping_effective`], which benches, grid artifacts
//! and the CI gates assert on — no silent fallback can creep back in.
//!
//! The per-second ideal-combination queries (the scheduler's no-change
//! test and the target configuration) are served by the infrastructure's
//! precomputed [`bml_core::table::CombinationTable`] in O(log segments),
//! so even the reference mode never pays the full combination search once
//! per simulated second.

use bml_app::{plan_migrations, ApplicationSpec};
use bml_core::bml::BmlInfrastructure;
use bml_core::combination::SplitPolicy;
use bml_core::reconfig::Configuration;
use bml_core::scheduler::{paper_window_length, Decision, ProActiveScheduler, SchedulerStats};
use bml_core::transition_aware::{TransitionAwareConfig, TransitionAwareScheduler};
use bml_metrics::EnergyMeter;
use bml_trace::{LoadTrace, Predictor};
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::qos::QosReport;

/// Which reconfiguration scheduler drives the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's pro-active scheduler: always jump to the ideal
    /// combination for the prediction.
    Baseline,
    /// The future-work transition-aware scheduler: weigh candidate
    /// configurations by serving + transition energy over the horizon.
    TransitionAware(TransitionAwareConfig),
}

/// How the engine advances simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stepping {
    /// Tick every simulated second — the reference implementation.
    PerSecond,
    /// Jump between events (prediction change-points including
    /// noise-resample points, transition maturities, reconfiguration
    /// unlocks, failure epochs) and batch the accounting of the constant
    /// stretches in between. Result-identical to [`Stepping::PerSecond`]
    /// up to float-accumulation rounding; falls back to it automatically
    /// for non-segmented predictors (EWMA, last-value — see the module
    /// docs).
    #[default]
    EventDriven,
}

/// Internal dispatch over the two scheduler implementations.
enum AnyScheduler {
    Baseline(ProActiveScheduler),
    Aware(TransitionAwareScheduler),
}

impl AnyScheduler {
    fn decide(&mut self, now: u64, predicted: f64, bml: &BmlInfrastructure) -> Decision {
        match self {
            AnyScheduler::Baseline(s) => s.decide(now, predicted, bml),
            AnyScheduler::Aware(s) => s.decide(now, predicted, bml),
        }
    }
    fn is_locked(&self, now: u64) -> bool {
        match self {
            AnyScheduler::Baseline(s) => s.is_locked(now),
            AnyScheduler::Aware(s) => s.is_locked(now),
        }
    }
    fn next_wakeup(&self, now: u64) -> Option<u64> {
        match self {
            AnyScheduler::Baseline(s) => s.next_wakeup(now),
            AnyScheduler::Aware(s) => s.next_wakeup(now),
        }
    }
    fn stats(&self) -> &SchedulerStats {
        match self {
            AnyScheduler::Baseline(s) => s.stats(),
            AnyScheduler::Aware(s) => s.stats(),
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Look-ahead window (s); `None` uses the paper's rule of
    /// 2 x the longest switch-on duration.
    pub window: Option<u64>,
    /// Load-split policy across online machines.
    pub split: SplitPolicy,
    /// Start with every machine off (cold start) instead of pre-warming
    /// the combination for the first prediction.
    pub cold_start: bool,
    /// Application spec used for instance migration accounting; `None`
    /// disables instance-level bookkeeping.
    pub app: Option<ApplicationSpec>,
    /// Scheduler implementation.
    pub scheduler: SchedulerKind,
    /// Optional machine-crash injection (counter-based, event-drivable).
    pub failures: Option<FailureModel>,
    /// Time-stepping mode; see [`Stepping`].
    pub stepping: Stepping,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            window: None,
            split: SplitPolicy::EfficiencyGreedy,
            cold_start: false,
            app: Some(ApplicationSpec::stateless_web_server()),
            scheduler: SchedulerKind::Baseline,
            failures: None,
            stepping: Stepping::default(),
        }
    }
}

/// Random machine-crash model: online machines fail with rate
/// `1 / mtbf_s` per second; a crashed machine is dark for `repair_s`
/// seconds and then reboots (normal boot time and energy).
///
/// Sampling is **counter-based**: each architecture `k` owns a row of
/// machine *slots* (slot `j` stands for the `j`-th currently-online
/// machine — the cluster tracks counts, not identities), and slot `j`
/// draws its candidate crash times from time 0 as a running sum of
/// geometric inter-failure gaps, gap `i` keyed on the PRF stream
/// `mix(mix(mix(seed, k), j), i)` ([`bml_core::rng`]). A candidate at
/// second `t` fires iff slot `j` is online (`j < online(k)` at `t`) and
/// is silently missed otherwise. Because every draw is a pure function of
/// `(seed, k, j, i)` and online counts only change at events, the whole
/// failure trajectory is identical under per-second and event-driven
/// stepping — the event loop jumps straight to the next eligible
/// candidate instead of flipping a coin 86 400 times per machine-day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time between failures of one machine (s).
    pub mtbf_s: f64,
    /// Repair delay before the automatic reboot starts (s).
    pub repair_s: u64,
    /// RNG seed (failures are deterministic given the seed).
    pub seed: u64,
}

impl FailureModel {
    /// The one way to spell a failure model: mean time between failures,
    /// repair delay, seed.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are degenerate; use
    /// [`FailureModel::try_new`] to handle that as an error instead.
    pub fn new(mtbf_s: f64, repair_s: u64, seed: u64) -> Self {
        match Self::try_new(mtbf_s, repair_s, seed) {
            Ok(m) => m,
            Err(e) => panic!("FailureModel::new: {e}"),
        }
    }

    /// Validating constructor: rejects parameters that would silently
    /// produce a degenerate sampler instead of the crash model the caller
    /// asked for. The MTBF must be a finite, strictly positive number of
    /// seconds (a NaN or non-positive MTBF would make the per-second
    /// crash probability `1/mtbf_s` meaningless, and `clamp` would mask
    /// it as "never fires"), and the repair delay must be non-zero (a
    /// zero-second repair means crashes are invisible no-ops).
    pub fn try_new(mtbf_s: f64, repair_s: u64, seed: u64) -> Result<Self, String> {
        if !mtbf_s.is_finite() || mtbf_s <= 0.0 {
            return Err(format!(
                "mtbf_s must be a finite positive number of seconds, got {mtbf_s}"
            ));
        }
        if repair_s == 0 {
            return Err(
                "repair_s must be non-zero: a zero-second repair makes every crash a no-op"
                    .to_string(),
            );
        }
        Ok(FailureModel {
            mtbf_s,
            repair_s,
            seed,
        })
    }
}

/// One slot's position in its candidate-crash-time sequence.
#[derive(Debug, Clone, Copy)]
struct SlotState {
    /// Next candidate crash second (absolute simulation time).
    next_time: u64,
    /// Index of the *next* geometric gap to draw (gaps consumed so far).
    index: u64,
}

/// One geometric inter-failure gap: gap `i` of slot `j` of architecture
/// `k`, a pure function of its key — never of how many samples any other
/// slot drew.
fn slot_gap(p: f64, seed: u64, k: u64, j: u64, i: u64) -> u64 {
    use bml_core::rng::{geometric_gap, mix};
    geometric_gap(p, mix(mix(mix(seed, k), j), i))
}

/// Counter-based failure sampler shared by both stepping loops (see
/// [`FailureModel`] for the sampling law).
struct FailureSampler {
    p: f64,
    repair_s: u64,
    seed: u64,
    /// Per-architecture slot rows, grown lazily to the peak online count.
    slots: Vec<Vec<SlotState>>,
}

impl FailureSampler {
    /// `None` when the model can never fire (`p == 0`): no sampler, no
    /// failure events.
    fn new(model: &FailureModel, n_archs: usize) -> Option<Self> {
        let p = (1.0 / model.mtbf_s).clamp(0.0, 1.0);
        if p <= 0.0 {
            return None;
        }
        Some(FailureSampler {
            p,
            repair_s: model.repair_s,
            seed: model.seed,
            slots: vec![Vec::new(); n_archs],
        })
    }

    /// Bring every slot up to date with `now` and fire the crashes due
    /// this very second. Candidates strictly before `now` are misses:
    /// either their slot was offline at the time, or (event-driven mode)
    /// the candidate fell inside a skipped span *because* its slot was
    /// offline — eligible candidates bound the span via
    /// [`FailureSampler::next_event`], so they are never skipped.
    /// Returns the number of machines crashed at `now`.
    fn sync(&mut self, cluster: &mut Cluster<'_>, now: u64) -> u64 {
        let (p, seed) = (self.p, self.seed);
        let mut injected = 0u64;
        for k in 0..self.slots.len() {
            // Newly visible slots (online count reached a new peak) start
            // their sequence at absolute time 0 and skip the candidates
            // from before they were online.
            let online = cluster.pools()[k].online as usize;
            while self.slots[k].len() < online {
                let j = self.slots[k].len() as u64;
                let mut s = SlotState {
                    next_time: slot_gap(p, seed, k as u64, j, 0) - 1,
                    index: 1,
                };
                while s.next_time < now {
                    s.next_time += slot_gap(p, seed, k as u64, j, s.index);
                    s.index += 1;
                }
                self.slots[k].push(s);
            }
            for j in 0..self.slots[k].len() {
                let slot = &mut self.slots[k][j];
                while slot.next_time < now {
                    slot.next_time += slot_gap(p, seed, k as u64, j as u64, slot.index);
                    slot.index += 1;
                }
                if slot.next_time == now {
                    // Eligibility is re-read per slot: an earlier crash
                    // this same second shrinks `online` for later slots,
                    // identically in both stepping loops.
                    if j < cluster.pools()[k].online as usize
                        && cluster.fail_one(k, now, self.repair_s)
                    {
                        injected += 1;
                    }
                    slot.next_time += slot_gap(p, seed, k as u64, j as u64, slot.index);
                    slot.index += 1;
                }
            }
        }
        injected
    }

    /// The earliest candidate crash time over the slots that are online
    /// *right now* — a valid span bound because the online set only
    /// changes at events, so no offline slot can become eligible before
    /// the span ends.
    fn next_event(&self, cluster: &Cluster<'_>) -> Option<u64> {
        let mut next: Option<u64> = None;
        for (k, row) in self.slots.iter().enumerate() {
            let online = cluster.pools()[k].online as usize;
            for slot in row.iter().take(online) {
                next = Some(next.map_or(slot.next_time, |n: u64| n.min(slot.next_time)));
            }
        }
        next
    }
}

/// One reconfiguration launched during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigRecord {
    /// The second the decision was taken.
    pub at: u64,
    /// Per-architecture machine counts the plan targets.
    pub target: Vec<u32>,
}

/// Aggregated outcome of one simulated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name (e.g. `"Big-Medium-Little"`).
    pub name: String,
    /// Energy per simulated day (J).
    pub daily_energy_j: Vec<f64>,
    /// Total energy (J).
    pub total_energy_j: f64,
    /// Mean power over the run (W).
    pub mean_power_w: f64,
    /// QoS outcome.
    pub qos: QosReport,
    /// Reconfigurations launched.
    pub reconfigurations: u64,
    /// Machines booted over the run.
    pub nodes_switched_on: u64,
    /// Machines shut down over the run.
    pub nodes_switched_off: u64,
    /// Energy charged to On/Off transitions (J), included in the totals.
    pub reconfig_energy_j: f64,
    /// Stop+start instance migrations performed by the application layer.
    pub instance_migrations: u64,
    /// Machine crashes injected by the failure model.
    pub failures_injected: u64,
    /// Constant-load spans the event-driven loop batched into single
    /// meter updates. 0 in per-second mode (nothing is batched there) —
    /// a *mode-dependent* telemetry counter, deliberately excluded from
    /// [`ScenarioResult::check_replay_equivalent`].
    pub segments_batched: u64,
    /// Simulated seconds the event-driven loop never ticked (trace
    /// length minus decision epochs) — the skip-ahead win. 0 in
    /// per-second mode; mode-dependent like `segments_batched`.
    pub events_skipped: u64,
    /// 1 when an [`Stepping::EventDriven`] request fell back to the
    /// per-second loop because the predictor is not segmented (EWMA,
    /// last-value), 0 otherwise — the machine-readable fallback reason
    /// behind `stepping_effective`.
    pub fallback_unsegmented: u64,
    /// The stepping loop that actually ran: [`Stepping::EventDriven`]
    /// requests fall back to [`Stepping::PerSecond`] for non-segmented
    /// predictors (see the module docs), and this field records the
    /// outcome so benches, grid artifacts and CI can assert no silent
    /// fallback remains.
    pub stepping_effective: Stepping,
    /// Every reconfiguration launched, in decision order — the replay's
    /// audit trail, and what the stepping-equivalence property pins.
    pub reconfig_log: Vec<ReconfigRecord>,
    /// The offline-optimal energy (J) for the same trace/catalog/split,
    /// from the `bml-opt` segment DP. `None` until an optimality pass
    /// attaches it (the engine itself never computes it).
    pub optimal_energy_j: Option<f64>,
    /// Relative optimality gap `(total_energy_j - optimal) / optimal`.
    /// `None` without an optimality pass or when the optimum is zero.
    /// Negative gaps are possible for runs that violate QoS: the optimum
    /// is constrained to full service, a violating run is not.
    pub optimality_gap: Option<f64>,
}

/// The compact per-cell summary an experiment-grid aggregator consumes:
/// every scalar of [`ScenarioResult`] and nothing that grows with the run
/// (no per-day vectors, no reconfiguration log) — hundreds of grid cells
/// stay cheap to hold, serialize, and diff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Total energy (J), transitions included.
    pub total_energy_j: f64,
    /// Mean power over the run (W).
    pub mean_power_w: f64,
    /// Fraction of total demand that went unserved, in `[0, 1]`.
    pub qos_shortfall: f64,
    /// Seconds where served < demand.
    pub violation_seconds: u64,
    /// Worst single-second relative shortfall, in `[0, 1]`.
    pub worst_shortfall: f64,
    /// Reconfigurations launched.
    pub reconfigurations: u64,
    /// Machines booted over the run.
    pub nodes_switched_on: u64,
    /// Machines shut down over the run.
    pub nodes_switched_off: u64,
    /// Energy charged to On/Off transitions (J).
    pub reconfig_energy_j: f64,
    /// Stop+start instance migrations.
    pub instance_migrations: u64,
    /// Event-loop spans batched; see [`ScenarioResult::segments_batched`].
    pub segments_batched: u64,
    /// Seconds skipped; see [`ScenarioResult::events_skipped`].
    pub events_skipped: u64,
    /// Per-second fallback flag; see
    /// [`ScenarioResult::fallback_unsegmented`].
    pub fallback_unsegmented: u64,
    /// The stepping loop that actually ran (fallback audit; see
    /// [`ScenarioResult::stepping_effective`]).
    pub stepping_effective: Stepping,
    /// Offline-optimal energy (J); see [`ScenarioResult::optimal_energy_j`].
    pub optimal_energy_j: Option<f64>,
    /// Relative optimality gap; see [`ScenarioResult::optimality_gap`].
    pub optimality_gap: Option<f64>,
}

impl ScenarioResult {
    /// The per-cell summary grid aggregation consumes (see [`CellSummary`]).
    pub fn summary(&self) -> CellSummary {
        CellSummary {
            total_energy_j: self.total_energy_j,
            mean_power_w: self.mean_power_w,
            qos_shortfall: self.qos.shortfall_fraction(),
            violation_seconds: self.qos.violation_seconds,
            worst_shortfall: self.qos.worst_shortfall,
            reconfigurations: self.reconfigurations,
            nodes_switched_on: self.nodes_switched_on,
            nodes_switched_off: self.nodes_switched_off,
            reconfig_energy_j: self.reconfig_energy_j,
            instance_migrations: self.instance_migrations,
            segments_batched: self.segments_batched,
            events_skipped: self.events_skipped,
            fallback_unsegmented: self.fallback_unsegmented,
            stepping_effective: self.stepping_effective,
            optimal_energy_j: self.optimal_energy_j,
            optimality_gap: self.optimality_gap,
        }
    }

    /// Attach an offline-optimal reference energy: sets
    /// `optimal_energy_j` and derives `optimality_gap` relative to it
    /// (`None` gap when the optimum is zero — an all-idle trace has
    /// nothing to be proportional to).
    pub fn attach_optimal(&mut self, optimal_energy_j: f64) {
        self.optimal_energy_j = Some(optimal_energy_j);
        self.optimality_gap = if optimal_energy_j > 0.0 {
            Some((self.total_energy_j - optimal_energy_j) / optimal_energy_j)
        } else {
            None
        };
    }

    /// Check that `other` is a replay-equivalent result of the same
    /// scenario — the contract between the two stepping modes: every
    /// discrete outcome (reconfiguration log, switch/migration/failure
    /// counters, QoS second counts, worst shortfall, committed transition
    /// energy) must match **exactly**, while float-accumulated energy
    /// aggregates must agree within `rel_tol` relative (+1e-9 absolute
    /// slack for zero-energy runs), since the two modes sum the same
    /// per-second powers in different groupings.
    ///
    /// Returns the first divergence as an error message. This is the one
    /// definition of "result-identical" shared by the unit tests, the
    /// equivalence proptest, and (mirrored in JSON) CI's stepping gate.
    pub fn check_replay_equivalent(
        &self,
        other: &ScenarioResult,
        rel_tol: f64,
    ) -> Result<(), String> {
        let close = |a: f64, b: f64| (a - b).abs() <= rel_tol * a.abs().max(b.abs()) + 1e-9;
        let exact_u64 = |field: &str, a: u64, b: u64| {
            if a == b {
                Ok(())
            } else {
                Err(format!("{field} diverged: {a} vs {b}"))
            }
        };
        if self.reconfig_log != other.reconfig_log {
            return Err(format!(
                "reconfig_log diverged ({} vs {} entries)",
                self.reconfig_log.len(),
                other.reconfig_log.len()
            ));
        }
        exact_u64(
            "reconfigurations",
            self.reconfigurations,
            other.reconfigurations,
        )?;
        exact_u64(
            "nodes_switched_on",
            self.nodes_switched_on,
            other.nodes_switched_on,
        )?;
        exact_u64(
            "nodes_switched_off",
            self.nodes_switched_off,
            other.nodes_switched_off,
        )?;
        exact_u64(
            "instance_migrations",
            self.instance_migrations,
            other.instance_migrations,
        )?;
        exact_u64(
            "failures_injected",
            self.failures_injected,
            other.failures_injected,
        )?;
        exact_u64(
            "qos.demand_seconds",
            self.qos.demand_seconds,
            other.qos.demand_seconds,
        )?;
        exact_u64(
            "qos.violation_seconds",
            self.qos.violation_seconds,
            other.qos.violation_seconds,
        )?;
        if self.qos.worst_shortfall != other.qos.worst_shortfall {
            return Err(format!(
                "qos.worst_shortfall diverged: {} vs {}",
                self.qos.worst_shortfall, other.qos.worst_shortfall
            ));
        }
        if self.reconfig_energy_j != other.reconfig_energy_j {
            return Err(format!(
                "reconfig_energy_j diverged: {} vs {}",
                self.reconfig_energy_j, other.reconfig_energy_j
            ));
        }
        for (field, a, b) in [
            ("total_energy_j", self.total_energy_j, other.total_energy_j),
            ("mean_power_w", self.mean_power_w, other.mean_power_w),
            (
                "qos.total_demand",
                self.qos.total_demand,
                other.qos.total_demand,
            ),
            (
                "qos.total_served",
                self.qos.total_served,
                other.qos.total_served,
            ),
        ] {
            if !close(a, b) {
                return Err(format!("{field} diverged: {a} vs {b}"));
            }
        }
        if self.daily_energy_j.len() != other.daily_energy_j.len() {
            return Err(format!(
                "daily_energy_j length diverged: {} vs {}",
                self.daily_energy_j.len(),
                other.daily_energy_j.len()
            ));
        }
        for (d, (a, b)) in self
            .daily_energy_j
            .iter()
            .zip(&other.daily_energy_j)
            .enumerate()
        {
            if !close(*a, *b) {
                return Err(format!("daily_energy_j[{d}] diverged: {a} vs {b}"));
            }
        }
        Ok(())
    }
}

/// Run the BML pro-active scenario over `trace` with the given predictor.
///
/// The predictor is generic: the paper's emulated prediction is
/// [`bml_trace::LookaheadMaxPredictor`] over a 378 s window; noisy or
/// reactive predictors plug in for the future-work experiments.
///
/// `config.stepping` selects the time-stepping mode; the event-driven
/// mode transparently falls back to the per-second reference loop when
/// the run cannot be segmented (see the module docs).
pub fn simulate_bml(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    predictor: &mut dyn Predictor,
    config: &SimConfig,
) -> ScenarioResult {
    let window = config
        .window
        .unwrap_or_else(|| paper_window_length(bml.candidates()));
    let _ = window; // the window is baked into the predictor; kept for reports
    let use_events = config.stepping == Stepping::EventDriven && predictor.is_segmented();
    if use_events {
        simulate_event_driven(trace, bml, predictor, config)
    } else {
        let fallback = config.stepping == Stepping::EventDriven;
        simulate_per_second(trace, bml, predictor, config, fallback)
    }
}

/// Mutable state shared by the two stepping loops: cluster, scheduler,
/// meters, and the bookkeeping around a reconfiguration decision.
struct EngineState<'a> {
    cluster: Cluster<'a>,
    sched: AnyScheduler,
    meter: EnergyMeter,
    qos: QosReport,
    migrations: u64,
    failures: Option<FailureSampler>,
    failures_injected: u64,
    /// Telemetry counters; see [`ScenarioResult::segments_batched`] /
    /// `events_skipped` / `fallback_unsegmented`. The running loop fills
    /// in whichever apply before `finish`.
    segments_batched: u64,
    events_skipped: u64,
    fallback_unsegmented: u64,
    reconfig_log: Vec<ReconfigRecord>,
    /// Reused online-counts buffer for the per-step power query.
    counts_scratch: Vec<u32>,
}

impl<'a> EngineState<'a> {
    fn new(bml: &'a BmlInfrastructure, predictor: &mut dyn Predictor, config: &SimConfig) -> Self {
        let n = bml.n_archs();
        let initial = if config.cold_start {
            Configuration::off(n)
        } else {
            Configuration(bml.combination_table().counts_for(predictor.predict(0)))
        };
        let cluster = Cluster::with_online(bml.candidates(), &initial.0, config.split);
        let sched = match &config.scheduler {
            SchedulerKind::Baseline => {
                AnyScheduler::Baseline(ProActiveScheduler::with_initial(initial))
            }
            SchedulerKind::TransitionAware(cfg) => {
                AnyScheduler::Aware(TransitionAwareScheduler::with_initial(initial, cfg.clone()))
            }
        };
        EngineState {
            cluster,
            sched,
            meter: EnergyMeter::new(),
            qos: QosReport::default(),
            migrations: 0,
            failures: config
                .failures
                .as_ref()
                .and_then(|m| FailureSampler::new(m, n)),
            failures_injected: 0,
            segments_batched: 0,
            events_skipped: 0,
            fallback_unsegmented: 0,
            reconfig_log: Vec::new(),
            counts_scratch: Vec::with_capacity(n),
        }
    }

    /// One scheduler consultation at `now`: decide, and on a
    /// reconfiguration account migrations + zero-duration transition
    /// lumps and apply the plan to the cluster. Identical in both
    /// stepping modes — the event loop only calls it at event instants,
    /// where the per-second loop's intermediate calls are provably
    /// `NoChange` or `Locked`.
    fn decide_at(&mut self, now: u64, predicted: f64, bml: &BmlInfrastructure, config: &SimConfig) {
        if let Decision::Reconfigure(plan) = self.sched.decide(now, predicted, bml) {
            if let Some(app) = &config.app {
                let mplan = plan_migrations(&plan.from.0, &plan.target.0, app.migration);
                self.migrations += u64::from(mplan.migrations);
                self.meter.add_energy(mplan.energy_j);
            }
            // Zero-duration transitions cannot be spread over time; charge
            // them as an instantaneous lump.
            let mut lump = 0.0;
            for &(k, c) in &plan.switch_on {
                if bml.candidates()[k].on_duration == 0.0 {
                    lump += f64::from(c) * bml.candidates()[k].on_energy;
                }
            }
            for &(k, c) in &plan.switch_off {
                if bml.candidates()[k].off_duration == 0.0 {
                    lump += f64::from(c) * bml.candidates()[k].off_energy;
                }
            }
            if lump > 0.0 {
                self.meter.add_energy(lump);
            }
            self.reconfig_log.push(ReconfigRecord {
                at: now,
                target: plan.target.0.clone(),
            });
            self.cluster.apply(&plan, now);
        }
    }

    /// Crash the machines whose candidate time is `now` (no-op without a
    /// failure model). Called right after `Cluster::tick` in **both**
    /// stepping loops; since every sample is a pure function of its key,
    /// both loops see the same failure trajectory.
    fn sync_failures(&mut self, now: u64) {
        if let Some(f) = self.failures.as_mut() {
            self.failures_injected += f.sync(&mut self.cluster, now);
        }
    }

    /// The next candidate crash time of any currently-online slot.
    fn next_failure_event(&self) -> Option<u64> {
        self.failures
            .as_ref()
            .and_then(|f| f.next_event(&self.cluster))
    }

    fn finish(self, stepping_effective: Stepping) -> ScenarioResult {
        let stats = self.sched.stats();
        ScenarioResult {
            name: "Big-Medium-Little".into(),
            total_energy_j: self.meter.total_joules(),
            mean_power_w: self.meter.mean_power(),
            qos: self.qos,
            reconfigurations: stats.reconfigurations,
            nodes_switched_on: stats.nodes_switched_on,
            nodes_switched_off: stats.nodes_switched_off,
            reconfig_energy_j: stats.reconfig_energy,
            instance_migrations: self.migrations,
            failures_injected: self.failures_injected,
            segments_batched: self.segments_batched,
            events_skipped: self.events_skipped,
            fallback_unsegmented: self.fallback_unsegmented,
            stepping_effective,
            reconfig_log: self.reconfig_log,
            daily_energy_j: self.meter.into_daily_joules(),
            optimal_energy_j: None,
            optimality_gap: None,
        }
    }
}

/// The reference loop: one tick per simulated second.
fn simulate_per_second(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    predictor: &mut dyn Predictor,
    config: &SimConfig,
    fallback_unsegmented: bool,
) -> ScenarioResult {
    let mut st = EngineState::new(bml, predictor, config);
    st.fallback_unsegmented = u64::from(fallback_unsegmented);

    for t in 0..trace.len() {
        st.cluster.tick(t);
        st.sync_failures(t);
        let prediction = if st.sched.is_locked(t) {
            0.0 // ignored; decide() returns Locked without reading it
        } else {
            predictor.predict(t)
        };
        st.decide_at(t, prediction, bml, config);
        let load = trace.get(t);
        let (power, served) = st.cluster.power_into(load, &mut st.counts_scratch);
        st.meter.record(power);
        st.qos.record(load, served);
    }
    st.finish(Stepping::PerSecond)
}

/// The skip-ahead loop: jump straight to the next event and batch the
/// accounting of the constant stretch in between. See the module docs
/// for the event model and the equivalence argument.
fn simulate_event_driven(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    predictor: &mut dyn Predictor,
    config: &SimConfig,
) -> ScenarioResult {
    debug_assert!(predictor.is_segmented());
    let mut st = EngineState::new(bml, predictor, config);
    let n = trace.len();
    let mut now = 0u64;
    let mut decision_epochs = 0u64;
    while now < n {
        decision_epochs += 1;
        st.cluster.tick(now);
        st.sync_failures(now);
        let prediction = if st.sched.is_locked(now) {
            0.0 // ignored; decide() returns Locked without reading it
        } else {
            predictor.predict(now)
        };
        st.decide_at(now, prediction, bml, config);

        // Next decision-relevant event: between `now` and `next` the
        // prediction, the scheduler's lock state, and the cluster's pool
        // states are all constant, so every skipped per-second decision
        // would have been `NoChange` (or `Locked`).
        let mut next = n;
        if let Some(t) = predictor.next_change(now) {
            next = next.min(t);
        }
        if let Some(t) = st.cluster.next_transition_event() {
            next = next.min(t);
        }
        if let Some(t) = st.sched.next_wakeup(now) {
            next = next.min(t);
        }
        if let Some(t) = st.next_failure_event() {
            next = next.min(t);
        }
        let next = next.clamp(now + 1, n);

        // Batched accounting over [now, next): the cluster state is
        // constant, so power only changes with the raw load — one meter
        // and QoS update per maximal constant-load run.
        let mut t = now;
        while t < next {
            let span_end = trace.run_end(t).min(next);
            let load = trace.get(t);
            let (power, served) = st.cluster.power_into(load, &mut st.counts_scratch);
            st.meter.accumulate_span(power, span_end - t);
            st.qos.record_span(load, served, span_end - t);
            st.segments_batched += 1;
            t = span_end;
        }
        now = next;
    }
    // Each loop iteration is one decision epoch; the per-second loop
    // would have ticked every one of the `n` seconds.
    st.events_skipped = n - decision_epochs;
    st.finish(Stepping::EventDriven)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::catalog;
    use bml_trace::synthetic;
    use bml_trace::LookaheadMaxPredictor;

    fn bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    fn run(trace: &LoadTrace, config: &SimConfig) -> ScenarioResult {
        let bml = bml();
        let mut p = LookaheadMaxPredictor::new(trace, 378);
        simulate_bml(trace, &bml, &mut p, config)
    }

    /// Assert the two stepping modes agree: discrete outcomes exactly,
    /// energies to float-accumulation rounding.
    fn assert_steppings_agree(trace: &LoadTrace, config: &SimConfig) {
        let per_second = run(
            trace,
            &SimConfig {
                stepping: Stepping::PerSecond,
                ..config.clone()
            },
        );
        let event = run(
            trace,
            &SimConfig {
                stepping: Stepping::EventDriven,
                ..config.clone()
            },
        );
        per_second
            .check_replay_equivalent(&event, 1e-9)
            .unwrap_or_else(|e| panic!("stepping modes diverged: {e}"));
    }

    #[test]
    fn constant_load_never_reconfigures_after_warm_start() {
        let trace = synthetic::constant(100.0, 2_000);
        let r = run(&trace, &SimConfig::default());
        assert_eq!(r.reconfigurations, 0);
        assert!(r.reconfig_log.is_empty());
        assert_eq!(r.qos.violation_seconds, 0);
        // Power: the combination's machines (3 chromebooks + 1 raspberry)
        // serving 100 req/s under the greedy split, constant over the run.
        let b = bml();
        let counts = b.ideal_combination(100.0).counts(3);
        let (w, _) = b.config_power(&counts, 100.0, SplitPolicy::EfficiencyGreedy);
        assert!((r.mean_power_w - w).abs() < 1e-6);
        assert!((r.total_energy_j - w * 2_000.0).abs() < 1e-3);
    }

    #[test]
    fn cold_start_boots_and_violates_briefly() {
        let trace = synthetic::constant(100.0, 2_000);
        let r = run(
            &trace,
            &SimConfig {
                cold_start: true,
                ..Default::default()
            },
        );
        assert_eq!(r.reconfigurations, 1);
        assert!(r.nodes_switched_on >= 4);
        // Until the chromebooks are up (12 s) demand goes unserved.
        assert!(r.qos.violation_seconds >= 12);
        assert!(r.qos.violation_seconds < 60);
        assert!(r.qos.worst_shortfall > 0.99);
    }

    #[test]
    fn step_up_preboots_within_window() {
        // Load steps from 50 to 1000 at t=1000; the 378 s look-ahead max
        // must boot the Big early enough that no second is unserved.
        let mut rates = vec![50.0; 1_000];
        rates.extend(vec![1_000.0; 1_000]);
        let trace = LoadTrace::new(0, rates);
        let r = run(&trace, &SimConfig::default());
        assert_eq!(
            r.qos.violation_seconds, 0,
            "look-ahead must hide the boot latency"
        );
        assert!(r.reconfigurations >= 1);
        assert!(r.nodes_switched_on >= 1);
        assert!(r.reconfig_energy_j > 0.0);
        // The log carries the decision instants.
        assert_eq!(r.reconfig_log.len() as u64, r.reconfigurations);
        assert!(r.reconfig_log[0].at >= 1_000 - 378);
        assert!(r.reconfig_log[0].at < 1_000);
    }

    #[test]
    fn reconfig_energy_appears_in_total() {
        let mut rates = vec![5.0; 500];
        rates.extend(vec![600.0; 500]);
        let trace = LoadTrace::new(0, rates);
        let r = run(&trace, &SimConfig::default());
        // Total energy strictly exceeds pure serving energy.
        let bml = bml();
        let serving: f64 = (0..trace.len())
            .map(|t| {
                let (w, _) = bml.config_power(
                    &bml.ideal_combination(trace.get(t)).counts(3),
                    trace.get(t),
                    SplitPolicy::EfficiencyGreedy,
                );
                w
            })
            .sum();
        assert!(r.total_energy_j > serving * 0.5); // sanity
        assert!(r.reconfig_energy_j > 0.0);
        assert!(r.instance_migrations <= r.nodes_switched_on.max(r.nodes_switched_off));
    }

    #[test]
    fn daily_energy_sums_to_total() {
        let trace = synthetic::diurnal(5.0, 800.0, 4.0, 2);
        let r = run(&trace, &SimConfig::default());
        let daily_sum: f64 = r.daily_energy_j.iter().sum();
        assert!((daily_sum - r.total_energy_j).abs() < 1e-6);
        assert_eq!(r.daily_energy_j.len(), 2);
    }

    #[test]
    fn diurnal_load_scales_down_at_night() {
        let trace = synthetic::diurnal(5.0, 800.0, 4.0, 1);
        let r = run(&trace, &SimConfig::default());
        assert!(r.reconfigurations > 4, "must follow the diurnal cycle");
        // Energy far below an always-on Big provisioning for the peak.
        let big = catalog::paravance();
        let always_on = big.max_power * trace.len() as f64; // generous bound
        assert!(r.total_energy_j < always_on * 0.5);
        // QoS essentially intact (tolerant class).
        assert!(r.qos.shortfall_fraction() < 0.01);
    }

    #[test]
    fn zero_trace_zero_energy_after_warm_start() {
        let trace = synthetic::constant(0.0, 100);
        let r = run(&trace, &SimConfig::default());
        assert_eq!(r.total_energy_j, 0.0);
        assert_eq!(r.qos.demand_seconds, 0);
    }

    #[test]
    fn failure_injection_degrades_qos_and_recovers() {
        let trace = synthetic::constant(100.0, 4_000);
        let r = run(
            &trace,
            &SimConfig {
                // Aggressive: ~8 crashes per machine over the run.
                failures: Some(FailureModel::new(500.0, 30, 7)),
                ..Default::default()
            },
        );
        assert!(r.failures_injected > 0, "no failures injected");
        // Crashes of serving machines cause transient shortfall...
        assert!(r.qos.violation_seconds > 0);
        // ...but auto-repair keeps the system alive: most demand served.
        assert!(
            r.qos.shortfall_fraction() < 0.2,
            "shortfall {}",
            r.qos.shortfall_fraction()
        );
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let trace = synthetic::constant(200.0, 2_000);
        let cfg = SimConfig {
            failures: Some(FailureModel::new(300.0, 10, 42)),
            ..Default::default()
        };
        let a = run(&trace, &cfg);
        let b = run(&trace, &cfg);
        assert_eq!(a.failures_injected, b.failures_injected);
        assert_eq!(a.total_energy_j, b.total_energy_j);
    }

    #[test]
    fn failure_model_rejects_degenerate_parameters() {
        // Non-finite / non-positive MTBFs would make 1/mtbf_s meaningless;
        // the clamp in FailureSampler used to mask them as "never fires".
        for bad_mtbf in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = FailureModel::try_new(bad_mtbf, 10, 0).unwrap_err();
            assert!(err.contains("mtbf_s"), "mtbf {bad_mtbf}: {err}");
        }
        // Zero repair makes every crash an invisible no-op.
        let err = FailureModel::try_new(500.0, 0, 0).unwrap_err();
        assert!(err.contains("repair_s"), "{err}");
        // Valid parameters round-trip through both constructors.
        let ok = FailureModel::try_new(500.0, 30, 7).unwrap();
        assert_eq!(ok, FailureModel::new(500.0, 30, 7));
    }

    #[test]
    #[should_panic(expected = "FailureModel::new: mtbf_s must be a finite positive")]
    fn failure_model_new_panics_with_clear_message() {
        let _ = FailureModel::new(f64::NAN, 10, 0);
    }

    #[test]
    fn failure_model_takes_event_path() {
        // Failure injection used to force the per-second fallback; with
        // counter-based gap sampling the event loop handles it and must
        // reproduce the reference trajectory.
        let trace = synthetic::constant(150.0, 1_500);
        let cfg = SimConfig {
            failures: Some(FailureModel::new(400.0, 20, 5)),
            ..Default::default()
        };
        let event = run(
            &trace,
            &SimConfig {
                stepping: Stepping::EventDriven,
                ..cfg.clone()
            },
        );
        assert_eq!(event.stepping_effective, Stepping::EventDriven);
        assert!(event.failures_injected > 0, "model must actually fire");
        let per_second = run(
            &trace,
            &SimConfig {
                stepping: Stepping::PerSecond,
                ..cfg
            },
        );
        assert_eq!(per_second.stepping_effective, Stepping::PerSecond);
        per_second
            .check_replay_equivalent(&event, 1e-9)
            .unwrap_or_else(|e| panic!("failure-injected steppings diverged: {e}"));
    }

    #[test]
    fn noisy_predictor_takes_event_path() {
        use bml_trace::NoisyPredictor;
        let trace = synthetic::diurnal(5.0, 900.0, 4.0, 1);
        let bml = bml();
        let run_mode = |stepping| {
            let mut p = NoisyPredictor::new(LookaheadMaxPredictor::new(&trace, 378), 0.2, 99);
            simulate_bml(
                &trace,
                &bml,
                &mut p,
                &SimConfig {
                    stepping,
                    ..Default::default()
                },
            )
        };
        let event = run_mode(Stepping::EventDriven);
        assert_eq!(event.stepping_effective, Stepping::EventDriven);
        let per_second = run_mode(Stepping::PerSecond);
        per_second
            .check_replay_equivalent(&event, 1e-9)
            .unwrap_or_else(|e| panic!("noisy steppings diverged: {e}"));
    }

    #[test]
    fn steppings_agree_with_noise_and_failures_combined() {
        // Both new event sources active at once: noise-resample points
        // and failure epochs interleave with the usual change-points.
        use bml_trace::NoisyPredictor;
        let mut rates = vec![80.0; 900];
        rates.extend(vec![1_100.0; 900]);
        rates.extend(vec![10.0; 900]);
        let trace = LoadTrace::new(0, rates);
        let bml = bml();
        let run_mode = |stepping| {
            let mut p = NoisyPredictor::new(LookaheadMaxPredictor::new(&trace, 378), 0.15, 13);
            simulate_bml(
                &trace,
                &bml,
                &mut p,
                &SimConfig {
                    failures: Some(FailureModel::new(600.0, 25, 3)),
                    stepping,
                    ..Default::default()
                },
            )
        };
        let event = run_mode(Stepping::EventDriven);
        assert_eq!(event.stepping_effective, Stepping::EventDriven);
        let per_second = run_mode(Stepping::PerSecond);
        per_second
            .check_replay_equivalent(&event, 1e-9)
            .unwrap_or_else(|e| panic!("noisy+failure steppings diverged: {e}"));
    }

    #[test]
    fn unsegmented_predictor_still_falls_back() {
        // EWMA genuinely depends on observing every second: the recorded
        // effective stepping must expose the fallback.
        let trace = synthetic::constant(100.0, 500);
        let bml = bml();
        let mut p = bml_trace::EwmaPredictor::new(&trace, 0.5);
        let r = simulate_bml(&trace, &bml, &mut p, &SimConfig::default());
        assert_eq!(r.stepping_effective, Stepping::PerSecond);
    }

    #[test]
    fn no_failures_without_model() {
        let trace = synthetic::constant(100.0, 500);
        let r = run(&trace, &SimConfig::default());
        assert_eq!(r.failures_injected, 0);
    }

    #[test]
    fn transition_aware_scheduler_runs_in_engine() {
        let mut rates = vec![520.0; 1_000];
        rates.extend(vec![540.0; 1_000]);
        let trace = LoadTrace::new(0, rates);
        let aware = run(
            &trace,
            &SimConfig {
                scheduler: SchedulerKind::TransitionAware(
                    bml_core::transition_aware::TransitionAwareConfig::paper(),
                ),
                ..Default::default()
            },
        );
        let baseline = run(&trace, &SimConfig::default());
        // Around the 529 threshold the aware scheduler churns no more
        // than the baseline.
        assert!(aware.reconfigurations <= baseline.reconfigurations);
        assert!(aware.qos.shortfall_fraction() < 0.01);
    }

    #[test]
    fn migration_accounting_disabled() {
        let mut rates = vec![5.0; 400];
        rates.extend(vec![500.0; 400]);
        let trace = LoadTrace::new(0, rates);
        let r = run(
            &trace,
            &SimConfig {
                app: None,
                ..Default::default()
            },
        );
        assert_eq!(r.instance_migrations, 0);
    }

    #[test]
    fn steppings_agree_on_step_trace() {
        let mut rates = vec![50.0; 700];
        rates.extend(vec![1_200.0; 700]);
        rates.extend(vec![5.0; 700]);
        let trace = LoadTrace::new(0, rates);
        assert_steppings_agree(&trace, &SimConfig::default());
    }

    #[test]
    fn steppings_agree_on_diurnal_and_cold_start() {
        let trace = synthetic::diurnal(5.0, 900.0, 4.0, 1);
        assert_steppings_agree(&trace, &SimConfig::default());
        assert_steppings_agree(
            &trace,
            &SimConfig {
                cold_start: true,
                ..Default::default()
            },
        );
    }

    #[test]
    fn steppings_agree_with_transition_aware_scheduler() {
        let mut rates = vec![520.0; 800];
        rates.extend(vec![30.0; 800]);
        rates.extend(vec![2_600.0; 800]);
        let trace = LoadTrace::new(0, rates);
        assert_steppings_agree(
            &trace,
            &SimConfig {
                scheduler: SchedulerKind::TransitionAware(TransitionAwareConfig::paper()),
                ..Default::default()
            },
        );
    }

    #[test]
    fn engine_counters_expose_batching_on_the_fast_path() {
        // Mode-independent counters (reconfigurations, failure epochs)
        // agree across steppings; stepping-only counters (segments
        // batched, events skipped) are non-zero exactly on the event
        // path. This is the telemetry contract the grid rides on.
        let trace = synthetic::diurnal(5.0, 800.0, 4.0, 1);
        let cfg = SimConfig {
            failures: Some(FailureModel::new(2_000.0, 30, 11)),
            ..Default::default()
        };
        let event = run(
            &trace,
            &SimConfig {
                stepping: Stepping::EventDriven,
                ..cfg.clone()
            },
        );
        let per_second = run(
            &trace,
            &SimConfig {
                stepping: Stepping::PerSecond,
                ..cfg
            },
        );
        assert_eq!(event.reconfigurations, per_second.reconfigurations);
        assert_eq!(event.failures_injected, per_second.failures_injected);
        // The fast path actually batched and skipped.
        assert!(event.segments_batched > 0, "no spans batched");
        assert!(event.events_skipped > 0, "no seconds skipped");
        assert!(event.events_skipped < trace.len(), "skip count overran");
        assert_eq!(event.fallback_unsegmented, 0);
        // The reference loop batches and skips nothing, and an honored
        // PerSecond request is not a fallback.
        assert_eq!(per_second.segments_batched, 0);
        assert_eq!(per_second.events_skipped, 0);
        assert_eq!(per_second.fallback_unsegmented, 0);
        // Summaries carry the counters through to grid aggregation.
        assert_eq!(event.summary().segments_batched, event.segments_batched);
        assert_eq!(event.summary().events_skipped, event.events_skipped);
    }

    #[test]
    fn fallback_reason_counter_marks_unsegmented_predictors() {
        let trace = synthetic::constant(100.0, 500);
        let bml = bml();
        let mut p = bml_trace::EwmaPredictor::new(&trace, 0.5);
        let r = simulate_bml(&trace, &bml, &mut p, &SimConfig::default());
        assert_eq!(r.stepping_effective, Stepping::PerSecond);
        assert_eq!(r.fallback_unsegmented, 1, "fallback must be recorded");
        assert_eq!(r.segments_batched, 0);
        assert_eq!(r.summary().fallback_unsegmented, 1);
    }

    #[test]
    fn event_mode_handles_day_boundaries() {
        // A flat trace spanning two days: one span crosses the boundary;
        // the meter must split it into the right daily bins.
        let trace = synthetic::constant(40.0, bml_trace::SECONDS_PER_DAY + 600);
        let r = run(&trace, &SimConfig::default());
        assert_eq!(r.daily_energy_j.len(), 2);
        let b = bml();
        let counts = b.ideal_combination(40.0).counts(3);
        let (w, _) = b.config_power(&counts, 40.0, SplitPolicy::EfficiencyGreedy);
        assert!((r.daily_energy_j[0] - w * bml_trace::SECONDS_PER_DAY as f64).abs() < 1e-3);
        assert!((r.daily_energy_j[1] - w * 600.0).abs() < 1e-6);
    }
}
