//! The BML simulation engine: the paper's pro-active placement loop
//! (Sec. V-C) driven at 1 Hz over a load trace.
//!
//! Each second the engine (1) promotes matured machine transitions,
//! (2) lets the scheduler decide — unless a reconfiguration is in flight —
//! using the predictor's window view, (3) applies any reconfiguration plan
//! to the cluster, then (4) measures power (serving + transition ramps)
//! and QoS for that second. Daily energies therefore contain "the energy
//! consumed by computation and by On/Off reconfigurations", exactly as
//! Fig. 5 accounts them.
//!
//! The per-second ideal-combination queries (the scheduler's no-change
//! test and the target configuration) are served by the infrastructure's
//! precomputed [`bml_core::table::CombinationTable`] in O(log segments),
//! so long trace replays and the rayon sweep runners never pay the full
//! combination search once per simulated second.

use bml_app::{plan_migrations, ApplicationSpec};
use bml_core::bml::BmlInfrastructure;
use bml_core::combination::SplitPolicy;
use bml_core::reconfig::Configuration;
use bml_core::scheduler::{paper_window_length, Decision, ProActiveScheduler, SchedulerStats};
use bml_core::transition_aware::{TransitionAwareConfig, TransitionAwareScheduler};
use bml_metrics::EnergyMeter;
use bml_trace::{LoadTrace, Predictor};
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::qos::QosReport;

/// Which reconfiguration scheduler drives the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's pro-active scheduler: always jump to the ideal
    /// combination for the prediction.
    Baseline,
    /// The future-work transition-aware scheduler: weigh candidate
    /// configurations by serving + transition energy over the horizon.
    TransitionAware(TransitionAwareConfig),
}

/// Internal dispatch over the two scheduler implementations.
enum AnyScheduler {
    Baseline(ProActiveScheduler),
    Aware(TransitionAwareScheduler),
}

impl AnyScheduler {
    fn decide(&mut self, now: u64, predicted: f64, bml: &BmlInfrastructure) -> Decision {
        match self {
            AnyScheduler::Baseline(s) => s.decide(now, predicted, bml),
            AnyScheduler::Aware(s) => s.decide(now, predicted, bml),
        }
    }
    fn is_locked(&self, now: u64) -> bool {
        match self {
            AnyScheduler::Baseline(s) => s.is_locked(now),
            AnyScheduler::Aware(s) => s.is_locked(now),
        }
    }
    fn stats(&self) -> &SchedulerStats {
        match self {
            AnyScheduler::Baseline(s) => s.stats(),
            AnyScheduler::Aware(s) => s.stats(),
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Look-ahead window (s); `None` uses the paper's rule of
    /// 2 x the longest switch-on duration.
    pub window: Option<u64>,
    /// Load-split policy across online machines.
    pub split: SplitPolicy,
    /// Start with every machine off (cold start) instead of pre-warming
    /// the combination for the first prediction.
    pub cold_start: bool,
    /// Application spec used for instance migration accounting; `None`
    /// disables instance-level bookkeeping.
    pub app: Option<ApplicationSpec>,
    /// Scheduler implementation.
    pub scheduler: SchedulerKind,
    /// Optional machine-crash injection.
    pub failures: Option<FailureModel>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            window: None,
            split: SplitPolicy::EfficiencyGreedy,
            cold_start: false,
            app: Some(ApplicationSpec::stateless_web_server()),
            scheduler: SchedulerKind::Baseline,
            failures: None,
        }
    }
}

/// Random machine-crash model: every online machine fails independently
/// with rate `1 / mtbf_s` per second; a crashed machine is dark for
/// `repair_s` seconds and then reboots (normal boot time and energy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time between failures of one machine (s).
    pub mtbf_s: f64,
    /// Repair delay before the automatic reboot starts (s).
    pub repair_s: u64,
    /// RNG seed (failures are deterministic given the seed).
    pub seed: u64,
}

/// Aggregated outcome of one simulated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name (e.g. `"Big-Medium-Little"`).
    pub name: String,
    /// Energy per simulated day (J).
    pub daily_energy_j: Vec<f64>,
    /// Total energy (J).
    pub total_energy_j: f64,
    /// Mean power over the run (W).
    pub mean_power_w: f64,
    /// QoS outcome.
    pub qos: QosReport,
    /// Reconfigurations launched.
    pub reconfigurations: u64,
    /// Machines booted over the run.
    pub nodes_switched_on: u64,
    /// Machines shut down over the run.
    pub nodes_switched_off: u64,
    /// Energy charged to On/Off transitions (J), included in the totals.
    pub reconfig_energy_j: f64,
    /// Stop+start instance migrations performed by the application layer.
    pub instance_migrations: u64,
    /// Machine crashes injected by the failure model.
    pub failures_injected: u64,
}

/// Run the BML pro-active scenario over `trace` with the given predictor.
///
/// The predictor is generic: the paper's emulated prediction is
/// [`bml_trace::LookaheadMaxPredictor`] over a 378 s window; noisy or
/// reactive predictors plug in for the future-work experiments.
pub fn simulate_bml(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    predictor: &mut dyn Predictor,
    config: &SimConfig,
) -> ScenarioResult {
    let window = config
        .window
        .unwrap_or_else(|| paper_window_length(bml.candidates()));
    let _ = window; // the window is baked into the predictor; kept for reports
    let n = bml.n_archs();

    let initial = if config.cold_start {
        Configuration::off(n)
    } else {
        Configuration(bml.combination_table().counts_for(predictor.predict(0)))
    };
    let mut cluster = Cluster::with_online(bml.candidates().to_vec(), &initial.0, config.split);
    let mut sched = match &config.scheduler {
        SchedulerKind::Baseline => {
            AnyScheduler::Baseline(ProActiveScheduler::with_initial(initial))
        }
        SchedulerKind::TransitionAware(cfg) => {
            AnyScheduler::Aware(TransitionAwareScheduler::with_initial(initial, cfg.clone()))
        }
    };
    let mut meter = EnergyMeter::new();
    let mut qos = QosReport::default();
    let mut migrations = 0u64;
    let mut failures_injected = 0u64;
    let mut failure_rng = config
        .failures
        .as_ref()
        .map(|f| rand::SeedableRng::seed_from_u64(f.seed));

    for t in 0..trace.len() {
        cluster.tick(t);
        if let (Some(model), Some(rng)) = (&config.failures, failure_rng.as_mut()) {
            failures_injected += inject_failures(&mut cluster, model, t, rng);
        }
        let prediction = if sched.is_locked(t) {
            0.0 // ignored; decide() returns Locked without reading it
        } else {
            predictor.predict(t)
        };
        if let Decision::Reconfigure(plan) = sched.decide(t, prediction, bml) {
            if let Some(app) = &config.app {
                let mplan = plan_migrations(&plan.from.0, &plan.target.0, app.migration);
                migrations += u64::from(mplan.migrations);
                meter.add_energy(mplan.energy_j);
            }
            // Zero-duration transitions cannot be spread over time; charge
            // them as an instantaneous lump.
            let mut lump = 0.0;
            for &(k, c) in &plan.switch_on {
                if bml.candidates()[k].on_duration == 0.0 {
                    lump += f64::from(c) * bml.candidates()[k].on_energy;
                }
            }
            for &(k, c) in &plan.switch_off {
                if bml.candidates()[k].off_duration == 0.0 {
                    lump += f64::from(c) * bml.candidates()[k].off_energy;
                }
            }
            if lump > 0.0 {
                meter.add_energy(lump);
            }
            cluster.apply(&plan, t);
        }
        let load = trace.get(t);
        let (power, served) = cluster.power(load);
        meter.record(power);
        qos.record(load, served);
    }

    let stats = sched.stats();
    ScenarioResult {
        name: "Big-Medium-Little".into(),
        daily_energy_j: meter.daily_joules().to_vec(),
        total_energy_j: meter.total_joules(),
        mean_power_w: meter.mean_power(),
        qos,
        reconfigurations: stats.reconfigurations,
        nodes_switched_on: stats.nodes_switched_on,
        nodes_switched_off: stats.nodes_switched_off,
        reconfig_energy_j: stats.reconfig_energy,
        instance_migrations: migrations,
        failures_injected,
    }
}

/// Sample this second's machine crashes: each online machine of each
/// architecture dies independently with probability `1 / mtbf_s`.
fn inject_failures(
    cluster: &mut Cluster,
    model: &FailureModel,
    now: u64,
    rng: &mut rand::rngs::StdRng,
) -> u64 {
    use rand::Rng;
    let p = (1.0 / model.mtbf_s).clamp(0.0, 1.0);
    if p <= 0.0 {
        return 0;
    }
    let mut injected = 0u64;
    for k in 0..cluster.profiles().len() {
        let online = cluster.pools()[k].online;
        for _ in 0..online {
            if rng.gen_bool(p) && cluster.fail_one(k, now, model.repair_s) {
                injected += 1;
            }
        }
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::catalog;
    use bml_trace::synthetic;
    use bml_trace::LookaheadMaxPredictor;

    fn bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    fn run(trace: &LoadTrace, config: &SimConfig) -> ScenarioResult {
        let bml = bml();
        let mut p = LookaheadMaxPredictor::new(trace, 378);
        simulate_bml(trace, &bml, &mut p, config)
    }

    #[test]
    fn constant_load_never_reconfigures_after_warm_start() {
        let trace = synthetic::constant(100.0, 2_000);
        let r = run(&trace, &SimConfig::default());
        assert_eq!(r.reconfigurations, 0);
        assert_eq!(r.qos.violation_seconds, 0);
        // Power: the combination's machines (3 chromebooks + 1 raspberry)
        // serving 100 req/s under the greedy split, constant over the run.
        let b = bml();
        let counts = b.ideal_combination(100.0).counts(3);
        let (w, _) = b.config_power(&counts, 100.0, SplitPolicy::EfficiencyGreedy);
        assert!((r.mean_power_w - w).abs() < 1e-6);
        assert!((r.total_energy_j - w * 2_000.0).abs() < 1e-3);
    }

    #[test]
    fn cold_start_boots_and_violates_briefly() {
        let trace = synthetic::constant(100.0, 2_000);
        let r = run(
            &trace,
            &SimConfig {
                cold_start: true,
                ..Default::default()
            },
        );
        assert_eq!(r.reconfigurations, 1);
        assert!(r.nodes_switched_on >= 4);
        // Until the chromebooks are up (12 s) demand goes unserved.
        assert!(r.qos.violation_seconds >= 12);
        assert!(r.qos.violation_seconds < 60);
        assert!(r.qos.worst_shortfall > 0.99);
    }

    #[test]
    fn step_up_preboots_within_window() {
        // Load steps from 50 to 1000 at t=1000; the 378 s look-ahead max
        // must boot the Big early enough that no second is unserved.
        let mut rates = vec![50.0; 1_000];
        rates.extend(vec![1_000.0; 1_000]);
        let trace = LoadTrace::new(0, rates);
        let r = run(&trace, &SimConfig::default());
        assert_eq!(
            r.qos.violation_seconds, 0,
            "look-ahead must hide the boot latency"
        );
        assert!(r.reconfigurations >= 1);
        assert!(r.nodes_switched_on >= 1);
        assert!(r.reconfig_energy_j > 0.0);
    }

    #[test]
    fn reconfig_energy_appears_in_total() {
        let mut rates = vec![5.0; 500];
        rates.extend(vec![600.0; 500]);
        let trace = LoadTrace::new(0, rates);
        let r = run(&trace, &SimConfig::default());
        // Total energy strictly exceeds pure serving energy.
        let bml = bml();
        let serving: f64 = (0..trace.len())
            .map(|t| {
                let (w, _) = bml.config_power(
                    &bml.ideal_combination(trace.get(t)).counts(3),
                    trace.get(t),
                    SplitPolicy::EfficiencyGreedy,
                );
                w
            })
            .sum();
        assert!(r.total_energy_j > serving * 0.5); // sanity
        assert!(r.reconfig_energy_j > 0.0);
        assert!(r.instance_migrations <= r.nodes_switched_on.max(r.nodes_switched_off));
    }

    #[test]
    fn daily_energy_sums_to_total() {
        let trace = synthetic::diurnal(5.0, 800.0, 4.0, 2);
        let r = run(&trace, &SimConfig::default());
        let daily_sum: f64 = r.daily_energy_j.iter().sum();
        assert!((daily_sum - r.total_energy_j).abs() < 1e-6);
        assert_eq!(r.daily_energy_j.len(), 2);
    }

    #[test]
    fn diurnal_load_scales_down_at_night() {
        let trace = synthetic::diurnal(5.0, 800.0, 4.0, 1);
        let r = run(&trace, &SimConfig::default());
        assert!(r.reconfigurations > 4, "must follow the diurnal cycle");
        // Energy far below an always-on Big provisioning for the peak.
        let big = catalog::paravance();
        let always_on = big.max_power * trace.len() as f64; // generous bound
        assert!(r.total_energy_j < always_on * 0.5);
        // QoS essentially intact (tolerant class).
        assert!(r.qos.shortfall_fraction() < 0.01);
    }

    #[test]
    fn zero_trace_zero_energy_after_warm_start() {
        let trace = synthetic::constant(0.0, 100);
        let r = run(&trace, &SimConfig::default());
        assert_eq!(r.total_energy_j, 0.0);
        assert_eq!(r.qos.demand_seconds, 0);
    }

    #[test]
    fn failure_injection_degrades_qos_and_recovers() {
        let trace = synthetic::constant(100.0, 4_000);
        let r = run(
            &trace,
            &SimConfig {
                failures: Some(FailureModel {
                    mtbf_s: 500.0, // aggressive: ~8 crashes per machine over the run
                    repair_s: 30,
                    seed: 7,
                }),
                ..Default::default()
            },
        );
        assert!(r.failures_injected > 0, "no failures injected");
        // Crashes of serving machines cause transient shortfall...
        assert!(r.qos.violation_seconds > 0);
        // ...but auto-repair keeps the system alive: most demand served.
        assert!(
            r.qos.shortfall_fraction() < 0.2,
            "shortfall {}",
            r.qos.shortfall_fraction()
        );
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let trace = synthetic::constant(200.0, 2_000);
        let cfg = SimConfig {
            failures: Some(FailureModel {
                mtbf_s: 300.0,
                repair_s: 10,
                seed: 42,
            }),
            ..Default::default()
        };
        let a = run(&trace, &cfg);
        let b = run(&trace, &cfg);
        assert_eq!(a.failures_injected, b.failures_injected);
        assert_eq!(a.total_energy_j, b.total_energy_j);
    }

    #[test]
    fn no_failures_without_model() {
        let trace = synthetic::constant(100.0, 500);
        let r = run(&trace, &SimConfig::default());
        assert_eq!(r.failures_injected, 0);
    }

    #[test]
    fn transition_aware_scheduler_runs_in_engine() {
        let mut rates = vec![520.0; 1_000];
        rates.extend(vec![540.0; 1_000]);
        let trace = LoadTrace::new(0, rates);
        let aware = run(
            &trace,
            &SimConfig {
                scheduler: SchedulerKind::TransitionAware(
                    bml_core::transition_aware::TransitionAwareConfig::paper(),
                ),
                ..Default::default()
            },
        );
        let baseline = run(&trace, &SimConfig::default());
        // Around the 529 threshold the aware scheduler churns no more
        // than the baseline.
        assert!(aware.reconfigurations <= baseline.reconfigurations);
        assert!(aware.qos.shortfall_fraction() < 0.01);
    }

    #[test]
    fn migration_accounting_disabled() {
        let mut rates = vec![5.0; 400];
        rates.extend(vec![500.0; 400]);
        let trace = LoadTrace::new(0, rates);
        let r = run(
            &trace,
            &SimConfig {
                app: None,
                ..Default::default()
            },
        );
        assert_eq!(r.instance_migrations, 0);
    }
}
