//! The scheduler hot path: direct greedy `ideal_combination` versus the
//! precomputed piecewise `CombinationTable` lookups.
//!
//! Each benchmark sweeps the same 4096 pseudo-random rates spanning the
//! paper catalog's interesting range (sub-Little up to several Big
//! periods), so the figures are directly comparable:
//!
//! * `direct` — the paper's greedy fill, recomputed per query (what every
//!   simulated second cost before the table existed);
//! * `table_lookup` — the O(log segments) piecewise lookup behind
//!   `BmlInfrastructure::ideal_combination`;
//! * `table_counts_into` — allocation-free counts into a reused buffer
//!   (the `LowerBound Theoretical` per-second path);
//! * `table_counts_match` — the allocation-free no-change test the
//!   pro-active scheduler runs once per second on steady load.

use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Deterministic rate sweep: 4096 points over [0, ~4 Big periods).
fn rate_sweep() -> Vec<f64> {
    (0..4096u64).map(|i| (i as f64 * 137.13) % 5400.0).collect()
}

fn bench_ideal_combination_paths(c: &mut Criterion) {
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let rates = rate_sweep();
    let mut g = c.benchmark_group("ideal_combination");

    g.bench_function("direct", |b| {
        b.iter(|| {
            rates
                .iter()
                .map(|&r| bml.ideal_combination_direct(black_box(r)).total_nodes())
                .sum::<u32>()
        })
    });

    g.bench_function("table_lookup", |b| {
        b.iter(|| {
            rates
                .iter()
                .map(|&r| bml.ideal_combination(black_box(r)).total_nodes())
                .sum::<u32>()
        })
    });

    g.bench_function("table_counts_into", |b| {
        let table = bml.combination_table();
        let mut counts = vec![0u32; bml.n_archs()];
        b.iter(|| {
            rates
                .iter()
                .map(|&r| {
                    table.counts_into(black_box(r), &mut counts);
                    counts.iter().sum::<u32>()
                })
                .sum::<u32>()
        })
    });

    g.bench_function("table_counts_match", |b| {
        let table = bml.combination_table();
        let steady = table.counts_for(100.0);
        b.iter(|| {
            rates
                .iter()
                .filter(|&&r| table.counts_match(black_box(r), &steady))
                .count()
        })
    });

    g.finish();
}

fn bench_power_paths(c: &mut Criterion) {
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let rates = rate_sweep();
    let mut g = c.benchmark_group("power_at");

    g.bench_function("direct_combination_power", |b| {
        b.iter(|| {
            rates
                .iter()
                .map(|&r| {
                    bml.ideal_combination_direct(black_box(r))
                        .power(bml.candidates())
                })
                .sum::<f64>()
        })
    });

    g.bench_function("table_power_for", |b| {
        b.iter(|| {
            rates
                .iter()
                .map(|&r| bml.power_at(black_box(r)))
                .sum::<f64>()
        })
    });

    g.finish();
}

fn bench_table_build(c: &mut Criterion) {
    // One-off cost paid per infrastructure: worth knowing it stays tiny.
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let thresholds = bml.threshold_rates();
    c.bench_function("combination_table_build", |b| {
        b.iter(|| {
            bml_core::table::CombinationTable::build(
                black_box(bml.candidates()),
                black_box(&thresholds),
            )
            .n_segments()
        })
    });
}

criterion_group!(
    benches,
    bench_ideal_combination_paths,
    bench_power_paths,
    bench_table_build,
);
criterion_main!(benches);
