//! Criterion benches for the BML core algorithms: Step-5 fill, Steps 3-4
//! threshold computation, the exact DP packer and full infrastructure
//! construction.

use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_core::combination::{ideal_fill, optimal_dp};
use bml_core::crossing::compute_thresholds;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_ideal_fill(c: &mut Criterion) {
    let trio = catalog::paper_bml_trio();
    let thresholds: Vec<f64> = compute_thresholds(&trio).iter().map(|t| t.rate).collect();
    let mut g = c.benchmark_group("ideal_fill");
    for rate in [10.0, 529.0, 2000.0, 5323.0] {
        g.bench_function(format!("rate_{rate}"), |b| {
            b.iter(|| ideal_fill(black_box(&trio), black_box(&thresholds), black_box(rate)))
        });
    }
    g.finish();
}

fn bench_thresholds(c: &mut Criterion) {
    let trio = catalog::paper_bml_trio();
    c.bench_function("compute_thresholds_paper_trio", |b| {
        b.iter(|| compute_thresholds(black_box(&trio)))
    });
}

fn bench_build(c: &mut Criterion) {
    let all = catalog::table1();
    c.bench_function("bml_build_from_table1", |b| {
        b.iter(|| BmlInfrastructure::build(black_box(&all)).unwrap())
    });
}

fn bench_dp(c: &mut Criterion) {
    let trio = catalog::paper_bml_trio();
    c.bench_function("optimal_dp_rate_2662", |b| {
        b.iter(|| optimal_dp(black_box(&trio), black_box(2662)))
    });
}

criterion_group!(
    benches,
    bench_ideal_fill,
    bench_thresholds,
    bench_build,
    bench_dp
);
criterion_main!(benches);
