//! Replay-throughput bench: per-second vs event-driven stepping on a
//! two-day synthetic trace with realistic plateau structure (5-minute
//! constant-load blocks following a diurnal shape — the granularity of
//! binned production traffic), in three flavors:
//!
//! * **clean** — exact look-ahead-max prediction, no failures;
//! * **noisy** — sigma-0.2 counter-based prediction noise (resampled
//!   once per look-ahead window, like the grid's noisy cells);
//! * **failures** — counter-based machine-crash injection (geometric
//!   inter-failure gaps per machine slot).
//!
//! The noisy and failure flavors used to silently fall back to the
//! per-second reference loop (sequential RNG draws); counter-based
//! sampling keeps them on the event path, and this bench is the proof.
//!
//! The headline metric printed before the criterion timings is
//! **simulated-seconds per wall-clock second** for each engine, plus one
//! speedup ratio per flavor. The development acceptance floor on this
//! trace is 5x the per-second reference for every flavor (measured
//! ~8-15x clean on dev hardware); CI parses the speedup lines from this
//! bench's output and fails below a conservative 3x floor, absorbing
//! shared-runner timing noise.

use std::time::Instant;

use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_sim::{run_cell, CellConfig, FailureModel, ScenarioResult, SimConfig, Stepping};
use bml_trace::LoadTrace;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Deterministic two-day trace of 5-minute constant-load plateaus
/// tracking a diurnal cycle between ~10 and ~2510 req/s.
fn plateau_trace(days: u32) -> LoadTrace {
    let n = days as usize * 86_400;
    let mut rates = Vec::with_capacity(n);
    for t in 0..n {
        let block_start = t / 300 * 300; // 5-minute plateaus
        let hour = (block_start % 86_400) as f64 / 3_600.0;
        let phase = (hour - 4.0) / 24.0 * std::f64::consts::TAU;
        let diurnal = 0.5 - 0.5 * phase.cos();
        rates.push((10.0 + 2_500.0 * diurnal).round());
    }
    LoadTrace::new(0, rates)
}

/// The three benched flavors: (label, cell template with stepping unset).
fn flavors() -> [(&'static str, CellConfig); 3] {
    let clean = CellConfig::from_sim(&SimConfig::default());
    let noisy = CellConfig {
        noise_sigma: 0.2,
        noise_seed: 42,
        ..clean.clone()
    };
    let failures = CellConfig {
        // ~2 expected crashes per machine per simulated day.
        failures: Some(FailureModel::new(43_200.0, 300, 7)),
        ..clean.clone()
    };
    [("clean", clean), ("noisy", noisy), ("failures", failures)]
}

fn with_stepping(cell: &CellConfig, stepping: Stepping) -> CellConfig {
    CellConfig {
        stepping,
        ..cell.clone()
    }
}

fn bench_engine_replay(c: &mut Criterion) {
    let trace = plateau_trace(2);
    let bml = BmlInfrastructure::build(&catalog::table1()).unwrap();
    let sim_secs = trace.len() as f64;

    // Headline: simulated-seconds per wall-clock second, per engine and
    // flavor. Best-of-5 (minimum wall time) so the CI-gated ratios are
    // not at the mercy of a single OS-scheduling stall on a shared
    // runner — the event-driven replay finishes in ~1 ms, where one-shot
    // timing would be dominated by jitter.
    for (flavor, cell) in flavors() {
        let mut rates = [0.0f64; 2];
        for (i, stepping) in [Stepping::PerSecond, Stepping::EventDriven]
            .into_iter()
            .enumerate()
        {
            let cfg = with_stepping(&cell, stepping);
            let mut best_wall = f64::INFINITY;
            let mut result: Option<ScenarioResult> = None;
            for _ in 0..5 {
                let started = Instant::now();
                let r = run_cell(&trace, &bml, &cfg);
                best_wall = best_wall.min(started.elapsed().as_secs_f64());
                result = Some(black_box(r));
            }
            let r = result.expect("five runs happened");
            assert_eq!(
                r.stepping_effective, stepping,
                "engine_replay/{flavor}: requested {stepping:?} but ran \
                 {:?} — a silent fallback would fake the speedup",
                r.stepping_effective
            );
            rates[i] = sim_secs / best_wall;
            let name = match stepping {
                Stepping::PerSecond => "per-second",
                Stepping::EventDriven => "event-driven",
            };
            println!(
                "engine_replay/{flavor}/{name:<12} {:>12.0} simulated-s/wallclock-s  \
                 ({:.0} sim-s in {:.4} s)",
                rates[i], sim_secs, best_wall
            );
        }
        // CI greps these lines; keep the format in sync with ci.yml.
        println!(
            "engine_replay/{flavor} speedup: event-driven is {:.1}x the per-second engine",
            rates[1] / rates[0]
        );
    }

    let mut g = c.benchmark_group("engine_replay");
    g.sample_size(10);
    for (flavor, cell) in flavors() {
        for (suffix, stepping) in [
            ("per_second", Stepping::PerSecond),
            ("event_driven", Stepping::EventDriven),
        ] {
            let cfg = with_stepping(&cell, stepping);
            g.bench_function(format!("{flavor}_{suffix}_2day"), |b| {
                b.iter(|| run_cell(black_box(&trace), black_box(&bml), &cfg))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_engine_replay);
criterion_main!(benches);
