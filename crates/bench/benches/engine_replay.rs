//! Replay-throughput bench: per-second vs event-driven stepping on a
//! two-day synthetic trace with realistic plateau structure (5-minute
//! constant-load blocks following a diurnal shape — the granularity of
//! binned production traffic).
//!
//! The headline metric printed before the criterion timings is
//! **simulated-seconds per wall-clock second** for each engine, plus the
//! speedup ratio. The development acceptance floor on this trace is 5x
//! the per-second reference (measured ~8-15x on dev hardware); CI parses
//! the speedup line from this bench's output and fails below a
//! conservative 3x floor, absorbing shared-runner timing noise.

use std::time::Instant;

use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_sim::{scenarios, SimConfig, Stepping};
use bml_trace::LoadTrace;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Deterministic two-day trace of 5-minute constant-load plateaus
/// tracking a diurnal cycle between ~10 and ~2510 req/s.
fn plateau_trace(days: u32) -> LoadTrace {
    let n = days as usize * 86_400;
    let mut rates = Vec::with_capacity(n);
    for t in 0..n {
        let block_start = t / 300 * 300; // 5-minute plateaus
        let hour = (block_start % 86_400) as f64 / 3_600.0;
        let phase = (hour - 4.0) / 24.0 * std::f64::consts::TAU;
        let diurnal = 0.5 - 0.5 * phase.cos();
        rates.push((10.0 + 2_500.0 * diurnal).round());
    }
    LoadTrace::new(0, rates)
}

fn bench_engine_replay(c: &mut Criterion) {
    let trace = plateau_trace(2);
    let bml = BmlInfrastructure::build(&catalog::table1()).unwrap();
    let per_second = SimConfig {
        stepping: Stepping::PerSecond,
        ..Default::default()
    };
    let event_driven = SimConfig {
        stepping: Stepping::EventDriven,
        ..Default::default()
    };

    // Headline: simulated-seconds per wall-clock second, per engine.
    // Best-of-5 (minimum wall time) so the CI-gated ratio is not at the
    // mercy of a single OS-scheduling stall on a shared runner — the
    // event-driven replay finishes in ~1 ms, where one-shot timing would
    // be dominated by jitter.
    let sim_secs = trace.len() as f64;
    let mut rates = [0.0f64; 2];
    for (i, (name, cfg)) in [("per-second", &per_second), ("event-driven", &event_driven)]
        .into_iter()
        .enumerate()
    {
        let mut best_wall = f64::INFINITY;
        for _ in 0..5 {
            let started = Instant::now();
            let r = scenarios::bml_proactive(&trace, &bml, cfg);
            best_wall = best_wall.min(started.elapsed().as_secs_f64());
            black_box(r);
        }
        rates[i] = sim_secs / best_wall;
        println!(
            "engine_replay/{name:<12} {:>12.0} simulated-s/wallclock-s  ({:.0} sim-s in {:.4} s)",
            rates[i], sim_secs, best_wall
        );
    }
    println!(
        "engine_replay speedup: event-driven is {:.1}x the per-second engine",
        rates[1] / rates[0]
    );

    let mut g = c.benchmark_group("engine_replay");
    g.sample_size(10);
    g.bench_function("per_second_2day", |b| {
        b.iter(|| scenarios::bml_proactive(black_box(&trace), black_box(&bml), &per_second))
    });
    g.bench_function("event_driven_2day", |b| {
        b.iter(|| scenarios::bml_proactive(black_box(&trace), black_box(&bml), &event_driven))
    });
    g.finish();
}

criterion_group!(benches, bench_engine_replay);
criterion_main!(benches);
