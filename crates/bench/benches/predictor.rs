//! Criterion benches for trace machinery: the O(n) sliding-window-max
//! table (build + query) and the World-Cup generator.

use bml_trace::window::LookaheadMaxTable;
use bml_trace::worldcup::{generate, WorldCupParams};
use bml_trace::{LookaheadMaxPredictor, Predictor};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn one_day_trace() -> bml_trace::LoadTrace {
    generate(&WorldCupParams {
        n_days: 1,
        ..Default::default()
    })
}

fn bench_window_build(c: &mut Criterion) {
    let trace = one_day_trace();
    c.bench_function("lookahead_table_build_1day", |b| {
        b.iter(|| LookaheadMaxTable::new(black_box(&trace.rates), black_box(378)))
    });
}

fn bench_window_query(c: &mut Criterion) {
    let trace = one_day_trace();
    let mut p = LookaheadMaxPredictor::new(&trace, 378);
    c.bench_function("lookahead_predict_86400_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in 0..trace.len() {
                acc += p.predict(black_box(t));
            }
            acc
        })
    });
}

fn bench_worldcup_generation(c: &mut Criterion) {
    c.bench_function("worldcup_generate_1day", |b| {
        b.iter(|| {
            generate(black_box(&WorldCupParams {
                n_days: 1,
                ..Default::default()
            }))
        })
    });
}

criterion_group!(
    benches,
    bench_window_build,
    bench_window_query,
    bench_worldcup_generation
);
criterion_main!(benches);
