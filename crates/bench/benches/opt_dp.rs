//! Offline-optimal DP throughput: exact segment DP (and a beam-pruned
//! variant) over the two-day plateau trace the engine-replay bench uses,
//! plus the replay verification pass.
//!
//! The headline metric printed before the criterion timings is
//! **simulated-seconds per wall-clock second** for the full
//! solve-then-verify pipeline — the number that bounds how much trace
//! the optimality-gap columns can afford to cover in CI. The exact DP
//! must clear the whole 144-cell smoke grid inside the existing CI
//! budget; this bench is where a state-space regression shows up first.

use std::time::Instant;

use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_core::combination::SplitPolicy;
use bml_opt::{solve, solve_verified, OptOptions};
use bml_trace::LoadTrace;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Deterministic two-day trace of 5-minute constant-load plateaus
/// tracking a diurnal cycle between ~10 and ~2510 req/s — the same shape
/// as `engine_replay`'s, so the solver and engine throughputs compare.
fn plateau_trace(days: u32) -> LoadTrace {
    let n = days as usize * 86_400;
    let mut rates = Vec::with_capacity(n);
    for t in 0..n {
        let block_start = t / 300 * 300; // 5-minute plateaus
        let hour = (block_start % 86_400) as f64 / 3_600.0;
        let phase = (hour - 4.0) / 24.0 * std::f64::consts::TAU;
        let diurnal = 0.5 - 0.5 * phase.cos();
        rates.push((10.0 + 2_500.0 * diurnal).round());
    }
    LoadTrace::new(0, rates)
}

fn bench_opt_dp(c: &mut Criterion) {
    let trace = plateau_trace(2);
    let bml = BmlInfrastructure::build(&catalog::table1()).unwrap();
    let split = SplitPolicy::EfficiencyGreedy;
    let sim_secs = trace.len() as f64;

    // Headline: best-of-3 wall time for the exact solve + replay verify,
    // so the printed rate is not hostage to one scheduling stall.
    let mut best_wall = f64::INFINITY;
    let mut last = None;
    for _ in 0..3 {
        let started = Instant::now();
        let r = solve_verified(&trace, &bml, split, &OptOptions::default());
        best_wall = best_wall.min(started.elapsed().as_secs_f64());
        last = Some(black_box(r));
    }
    let (sched, _) = last.flatten().expect("exact DP cannot dead-end");
    println!(
        "opt_dp/exact+verify {:>12.0} simulated-s/wallclock-s  \
         ({:.0} sim-s, {} segments x {} states, {} records, in {:.4} s)",
        sim_secs / best_wall,
        sim_secs,
        sched.n_segments,
        sched.n_states,
        sched.schedule.len(),
        best_wall
    );

    let mut g = c.benchmark_group("opt_dp");
    g.sample_size(10);
    g.bench_function("exact_2day", |b| {
        b.iter(|| {
            solve(
                black_box(&trace),
                black_box(&bml),
                split,
                &OptOptions::default(),
            )
        })
    });
    let beam = OptOptions {
        beam_width: Some(4),
        extra_states: vec![],
    };
    g.bench_function("beam4_2day", |b| {
        b.iter(|| solve(black_box(&trace), black_box(&bml), split, &beam))
    });
    g.bench_function("exact_verified_2day", |b| {
        b.iter(|| {
            solve_verified(
                black_box(&trace),
                black_box(&bml),
                split,
                &OptOptions::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_opt_dp);
criterion_main!(benches);
