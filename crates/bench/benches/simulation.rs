//! Criterion benches for the simulator: one simulated day per scenario.

use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_core::combination::SplitPolicy;
use bml_sim::{scenarios, SimConfig};
use bml_trace::worldcup::{generate, WorldCupParams};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn busy_day() -> bml_trace::LoadTrace {
    // A tournament day with kick-off crowds: the adversarial case for the
    // scheduler.
    let p = WorldCupParams::default();
    generate(&WorldCupParams {
        first_day: p.tournament_start + 10,
        n_days: 1,
        ..p
    })
}

fn bench_bml_day(c: &mut Criterion) {
    let trace = busy_day();
    let bml = BmlInfrastructure::build(&catalog::table1()).unwrap();
    let config = SimConfig::default();
    let mut g = c.benchmark_group("simulate_one_day");
    g.sample_size(10);
    g.bench_function("bml_proactive", |b| {
        b.iter(|| scenarios::bml_proactive(black_box(&trace), black_box(&bml), black_box(&config)))
    });
    g.bench_function("lower_bound", |b| {
        b.iter(|| {
            scenarios::lower_bound_theoretical(
                black_box(&trace),
                black_box(&bml),
                SplitPolicy::EfficiencyGreedy,
            )
        })
    });
    let big = catalog::paravance();
    g.bench_function("upper_bound_global", |b| {
        b.iter(|| {
            scenarios::upper_bound_global(
                black_box(&trace),
                black_box(&big),
                SplitPolicy::EfficiencyGreedy,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bml_day);
criterion_main!(benches);
