//! Figure 1 — candidate filtering on the illustrative architectures A-D.
//!
//! Prints the repeated (staircase) power profiles of A, B, C, D and the
//! Step-2 verdict: A, B, C are good BML candidates, D is removed because
//! its maximum power exceeds A's while it performs worse.
//!
//! ```text
//! cargo run --release -p bml-bench --bin fig1_candidates [--csv]
//! ```

use bml_bench::Args;
use bml_core::candidates::filter_candidates;
use bml_core::catalog;
use bml_core::profile::stack_power;
use bml_metrics::Table;

fn main() {
    let args = Args::parse();
    let archs = catalog::illustrative();

    // The staircase curves of Fig. 1, sampled every 25 rate units up to
    // beyond A's capacity so each profile repeats at least once.
    let mut curve = Table::new(&["rate", "A (W)", "B (W)", "C (W)", "D (W)"]);
    let limit = 700u64;
    for r in (0..=limit).step_by(25) {
        let rate = r as f64;
        curve.row(&[
            format!("{r}"),
            format!("{:.1}", stack_power(&archs[0], rate)),
            format!("{:.1}", stack_power(&archs[1], rate)),
            format!("{:.1}", stack_power(&archs[2], rate)),
            format!("{:.1}", stack_power(&archs[3], rate)),
        ]);
    }
    println!("Fig. 1 — stacked power profiles of illustrative architectures:\n");
    if args.csv {
        print!("{}", curve.to_csv());
    } else {
        print!("{}", curve.render());
    }

    let set = filter_candidates(&archs).expect("illustrative set is valid");
    println!("\nStep 2 verdict:");
    for (p, label) in set.kept.iter().zip(set.class_labels()) {
        println!(
            "  kept    {:<2} -> {:<7} (maxPerf {:>5.0}, maxPower {:>6.1} W)",
            p.name, label, p.max_perf, p.max_power
        );
    }
    for (p, reason) in &set.removed {
        println!(
            "  removed {:<2} -> {:?} (maxPerf {:>5.0}, maxPower {:>6.1} W)",
            p.name, reason, p.max_perf, p.max_power
        );
    }
}
