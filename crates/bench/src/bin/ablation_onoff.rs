//! Ablation — sensitivity of BML to switch On/Off overheads.
//!
//! Scales the Table I transition durations and energies and re-runs the
//! BML scenario: with free transitions BML approaches the theoretical
//! lower bound; with inflated ones the scheduler's overheads grow and the
//! look-ahead window (tied to boot duration) widens.
//!
//! ```text
//! cargo run --release -p bml-bench --bin ablation_onoff [--days N] [--csv]
//! ```

use bml_bench::Args;
use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_core::combination::SplitPolicy;
use bml_core::profile::ArchProfile;
use bml_metrics::{joules_to_kwh, overhead_stats, Table};
use bml_sim::{scenarios, SimConfig};
use bml_trace::worldcup::{generate, WorldCupParams};

fn scaled(profiles: &[ArchProfile], factor: f64) -> Vec<ArchProfile> {
    profiles
        .iter()
        .map(|p| ArchProfile {
            on_duration: p.on_duration * factor,
            on_energy: p.on_energy * factor,
            off_duration: p.off_duration * factor,
            off_energy: p.off_energy * factor,
            ..p.clone()
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let days = args.days_or(7); // the sweep repeats the simulation; default smaller
    let trace = generate(&WorldCupParams {
        seed: args.seed,
        n_days: days,
        tournament_start: 8,
        final_day: 6 + days.saturating_sub(2),
        ..Default::default()
    });

    println!(
        "On/Off overhead ablation ({} days, seed {}):\n",
        days, args.seed
    );
    let mut t = Table::new(&[
        "cost factor",
        "window (s)",
        "energy (kWh)",
        "vs LB mean (%)",
        "reconfigs",
        "QoS shortfall (%)",
    ]);
    for factor in [0.0, 0.5, 1.0, 2.0, 5.0] {
        let profiles = scaled(&catalog::table1(), factor);
        let bml = BmlInfrastructure::build(&profiles).expect("scaled catalog builds");
        let window = bml_core::scheduler::paper_window_length(bml.candidates()).max(1);
        let config = SimConfig {
            window: Some(window),
            stepping: args.stepping_or_default(),
            ..Default::default()
        };
        let r = scenarios::bml_proactive(&trace, &bml, &config);
        let lb = scenarios::lower_bound_theoretical(&trace, &bml, SplitPolicy::EfficiencyGreedy);
        let stats = overhead_stats(&r.daily_energy_j, &lb.daily_energy_j);
        t.row(&[
            format!("{factor}x"),
            format!("{window}"),
            format!("{:.2}", joules_to_kwh(r.total_energy_j)),
            format!("{:.1}", stats.mean),
            format!("{}", r.reconfigurations),
            format!("{:.4}", 100.0 * r.qos.shortfall_fraction()),
        ]);
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\nTransition costs are what separates BML from the unreachable lower bound.");
}
