//! Future-work experiment (paper Sec. VI) — impact of load prediction
//! errors on reconfiguration decisions.
//!
//! Injects relative gaussian error into the look-ahead-max prediction and
//! reports how energy, reconfiguration churn and QoS degrade with the
//! error magnitude.
//!
//! The sweep is a 1-D slice of the `bml-grid` experiment space (the
//! `noise_sigmas` dimension); it routes through the same shared cell
//! executor as the `grid` binary and honors `--threads`.
//!
//! ```text
//! cargo run --release -p bml-bench --bin ablation_prediction \
//!     [--days N] [--seed N] [--threads N] [--csv]
//! ```

use bml_bench::Args;
use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_metrics::{joules_to_kwh, Table};
use bml_sim::{runner::sweep_prediction_noise, SimConfig};
use bml_trace::worldcup::{generate, WorldCupParams};

fn main() {
    let args = Args::parse();
    let days = args.days_or(7); // the sweep repeats the simulation; default smaller
    let trace = generate(&WorldCupParams {
        seed: args.seed,
        n_days: days,
        tournament_start: 8,
        final_day: 6 + days.saturating_sub(2),
        ..Default::default()
    });
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let sigmas = [0.0, 0.02, 0.05, 0.1, 0.2, 0.4];
    eprintln!(
        "sweeping {} noise levels over {} days...",
        sigmas.len(),
        days
    );
    // Noise is counter-based and resampled once per look-ahead window,
    // so every sigma honors this stepping choice — noisy runs included.
    let config = SimConfig {
        stepping: args.stepping_or_default(),
        ..Default::default()
    };
    let results = args
        .pool()
        .install(|| sweep_prediction_noise(&trace, &bml, &sigmas, args.seed, &config));

    println!(
        "Prediction-error ablation ({} days, seed {}):\n",
        days, args.seed
    );
    let mut t = Table::new(&[
        "sigma",
        "energy (kWh)",
        "reconfigs",
        "boots",
        "QoS shortfall (%)",
        "worst shortfall (%)",
    ]);
    for (sigma, r) in &results {
        t.row(&[
            format!("{sigma:.2}"),
            format!("{:.2}", joules_to_kwh(r.total_energy_j)),
            format!("{}", r.reconfigurations),
            format!("{}", r.nodes_switched_on),
            format!("{:.4}", 100.0 * r.qos.shortfall_fraction()),
            format!("{:.1}", 100.0 * r.qos.worst_shortfall),
        ]);
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\nUnder-predictions erode QoS; over-predictions waste energy and churn machines.");
}
