//! Figure 2 — crossing points between architectures (Step 3, left) and
//! between architectures and combinations of smaller ones (Step 4,
//! right), on the illustrative A/B/C trio.
//!
//! ```text
//! cargo run --release -p bml-bench --bin fig2_crossing [--csv]
//! ```

use bml_bench::Args;
use bml_core::catalog;
use bml_core::combination::ideal_fill;
use bml_core::crossing::{compute_thresholds, pairwise_thresholds};
use bml_core::profile::stack_power;
use bml_metrics::Table;

fn main() {
    let args = Args::parse();
    let abc = vec![
        catalog::illustrative_a(),
        catalog::illustrative_b(),
        catalog::illustrative_c(),
    ];
    let step3 = pairwise_thresholds(&abc);
    let step4 = compute_thresholds(&abc);

    println!("Fig. 2 — minimum utilization thresholds (A=Big, B=Medium, C=Little):\n");
    let mut t = Table::new(&[
        "architecture",
        "step 3 (pairwise)",
        "step 4 (vs combinations)",
    ]);
    for (i, name) in ["A (Big)", "B (Medium)", "C (Little)"].iter().enumerate() {
        t.row(&[
            name.to_string(),
            format!("{:.0} ({:?})", step3[i].rate, step3[i].kind),
            format!("{:.0} ({:?})", step4[i].rate, step4[i].kind),
        ]);
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }

    // The curves around the Big crossing: single Big vs pure Medium stacks
    // (left plot) vs Medium+Little ideal combinations (right plot).
    let small = &abc[1..];
    let small_t: Vec<f64> = step4[1..].iter().map(|x| x.rate).collect();
    let mut curves = Table::new(&[
        "rate",
        "Big single (W)",
        "Medium stacks (W)",
        "Medium+Little combos (W)",
    ]);
    for r in (250..=500u64).step_by(10) {
        let rate = r as f64;
        curves.row(&[
            format!("{r}"),
            format!("{:.1}", abc[0].power_at(rate)),
            format!("{:.1}", stack_power(&abc[1], rate)),
            format!("{:.1}", ideal_fill(small, &small_t, rate).power(small)),
        ]);
    }
    println!("\nPower curves around the Big crossing:\n");
    if args.csv {
        print!("{}", curves.to_csv());
    } else {
        print!("{}", curves.render());
    }
    println!(
        "\nStep 4 raises Big's threshold from {:.0} to {:.0}: mixing Little nodes into\n\
         Medium combinations removes the power jump of the Step-3 crossing.",
        step3[0].rate, step4[0].rate
    );
}
