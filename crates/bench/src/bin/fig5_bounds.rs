//! Figure 5 — energy consumption comparison with lower and upper bounds
//! over the World-Cup-like trace, days 6-92.
//!
//! Runs the four scenarios of paper Sec. V-C (UpperBound Global,
//! UpperBound PerDay, Big-Medium-Little, LowerBound Theoretical), prints
//! the per-day energies and the BML-vs-lower-bound overhead statistics
//! the paper quotes (+32% average, +6.8% min, +161.4% max). A fifth row,
//! `Offline Optimal`, is the replay-verified minimum achievable energy
//! from `bml-opt`'s segment DP — the *reachable* floor between the
//! theoretical lower bound (free transitions) and the live scheduler.
//!
//! ```text
//! cargo run --release -p bml-bench --bin fig5_bounds \
//!     [--days N] [--seed N] [--csv] [--json PATH]
//! ```
//!
//! With `--json PATH` a machine-readable summary (totals, per-day
//! energies, overhead statistics, wall time) is also written — the CI
//! smoke job runs `--days 2 --json BENCH_fig5.json` and uploads it as the
//! perf-trajectory artifact. With `--telemetry-out PATH` a `bml-obs/v1`
//! telemetry document is written too: engine counters (reconfigurations,
//! segments batched, events skipped, failure epochs) merged in scenario
//! order on the deterministic plane, the comparison and DP-solve wall
//! clocks as spans on the host plane.

use bml_bench::{json, Args};
use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_metrics::{fmt_percent, joules_to_kwh, Table};
use bml_sim::{run_comparison, SimConfig};
use bml_trace::worldcup::{generate, WorldCupParams};

fn main() {
    let args = Args::parse();
    let days = args.days_or(87); // the paper's full span
    let params = WorldCupParams {
        seed: args.seed,
        n_days: days,
        ..Default::default()
    };
    let trace = generate(&params);
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let config = SimConfig {
        window: args.window,
        stepping: args.stepping_or_default(),
        ..Default::default()
    };
    let stepping_name = match args.stepping_or_default() {
        bml_sim::Stepping::PerSecond => "per-second",
        bml_sim::Stepping::EventDriven => "event-driven",
    };

    eprintln!(
        "simulating {} days ({} seconds) x 4 scenarios ({stepping_name} stepping)...",
        days,
        trace.len()
    );
    let started = std::time::Instant::now();
    let c = run_comparison(&trace, &bml, &config);
    let wall_s = started.elapsed().as_secs_f64();
    eprintln!("solving the offline-optimal reconfiguration schedule (exact DP)...");
    let opt_started = std::time::Instant::now();
    let (opt_sched, opt_row) =
        bml_opt::solve_verified(&trace, &bml, config.split, &bml_opt::OptOptions::default())
            .expect("exact DP cannot dead-end");
    let opt_wall_s = opt_started.elapsed().as_secs_f64();
    eprintln!(
        "optimal schedule: {} records over {} segments x {} states, \
         replay-verified to 1e-9 in {opt_wall_s:.3} s",
        opt_sched.schedule.len(),
        opt_sched.n_segments,
        opt_sched.n_states,
    );
    let optimality_gap = (c.bml.total_energy_j - opt_sched.energy_j) / opt_sched.energy_j;
    // Four scenarios replay the trace, so the engine throughput CI tracks
    // is total simulated seconds across scenarios per wall-clock second.
    let sim_seconds = trace.len();
    let sim_rate = 4.0 * sim_seconds as f64 / wall_s;
    eprintln!(
        "replayed 4 x {sim_seconds} simulated seconds in {wall_s:.3} s \
         ({sim_rate:.0} simulated-s/wallclock-s)"
    );

    println!(
        "Fig. 5 — energy per day (kWh), days {}..={}:\n",
        c.first_day,
        c.first_day + days - 1
    );
    let mut t = Table::new(&[
        "day",
        "UB Global",
        "UB PerDay",
        "BML",
        "LB Theoretical",
        "BML vs LB",
    ]);
    for d in 0..c.bml.daily_energy_j.len() {
        let lb = c.lower_bound.daily_energy_j[d];
        let bmld = c.bml.daily_energy_j[d];
        t.row(&[
            format!("{}", c.first_day + d as u32),
            format!("{:.2}", joules_to_kwh(c.ub_global.daily_energy_j[d])),
            format!("{:.2}", joules_to_kwh(c.ub_per_day.daily_energy_j[d])),
            format!("{:.2}", joules_to_kwh(bmld)),
            format!("{:.2}", joules_to_kwh(lb)),
            fmt_percent(100.0 * (bmld - lb) / lb),
        ]);
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }

    println!("\nTotals over {} days:", days);
    let mut rows = c.scenarios().to_vec();
    rows.push(&opt_row);
    for s in rows.iter().copied() {
        println!(
            "  {:<22} {:>9.1} kWh  (mean {:>7.1} W, QoS shortfall {:.4}%, {} reconfigs, {} boots)",
            s.name,
            joules_to_kwh(s.total_energy_j),
            s.mean_power_w,
            100.0 * s.qos.shortfall_fraction(),
            s.reconfigurations,
            s.nodes_switched_on,
        );
    }
    println!(
        "\nBML vs theoretical lower bound (per-day): mean {}, min {}, max {}",
        fmt_percent(c.bml_vs_lower.mean),
        fmt_percent(c.bml_vs_lower.min),
        fmt_percent(c.bml_vs_lower.max)
    );
    println!(
        "BML vs offline optimum (reachable floor): {} — the part of the \
         lower-bound overhead a better scheduler could still recover",
        fmt_percent(100.0 * optimality_gap)
    );
    println!("Paper reports: mean +32%, min +6.8%, max +161.4% (on the real WC98 trace).");
    let saved = 1.0 - c.bml.total_energy_j / c.ub_global.total_energy_j;
    println!(
        "BML saves {:.1}% of the energy of the classical over-provisioned data center.",
        100.0 * saved
    );

    if let Some(path) = &args.json {
        let mut json_rows = c.scenarios().to_vec();
        json_rows.push(&opt_row);
        let scenarios = json_rows
            .iter()
            .map(|s| {
                let effective = match s.stepping_effective {
                    bml_sim::Stepping::PerSecond => "per-second",
                    bml_sim::Stepping::EventDriven => "event",
                };
                json::Object::new()
                    .str("name", &s.name)
                    .num("total_energy_j", s.total_energy_j)
                    .num("mean_power_w", s.mean_power_w)
                    .nums("daily_energy_j", &s.daily_energy_j)
                    .int("reconfigurations", s.reconfigurations)
                    .int("nodes_switched_on", s.nodes_switched_on)
                    .num("qos_shortfall", s.qos.shortfall_fraction())
                    .str("stepping_effective", effective)
            })
            .collect();
        let summary = json::Object::new()
            .str("experiment", "fig5_bounds")
            .int("seed", args.seed)
            .int("days", u64::from(days))
            .str("stepping", stepping_name)
            .num("wall_s", wall_s)
            .int("sim_seconds", sim_seconds)
            .num("sim_seconds_per_wall_second", sim_rate)
            .num("energy_saving_vs_ub_global", saved)
            .num("optimal_energy_j", opt_sched.energy_j)
            .num("optimality_gap", optimality_gap)
            .int("optimal_reconfigurations", opt_sched.schedule.len() as u64)
            .num("optimal_wall_s", opt_wall_s)
            .obj(
                "bml_vs_lower_pct",
                json::Object::new()
                    .num("mean", c.bml_vs_lower.mean)
                    .num("min", c.bml_vs_lower.min)
                    .num("max", c.bml_vs_lower.max),
            )
            .objs("scenarios", scenarios);
        summary.write(path).expect("write JSON summary");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &args.telemetry_out {
        let mut rec = bml_obs::Recorder::new();
        // Deterministic plane: engine counters merged in scenario order
        // (the four comparison rows, then the verified optimum's replay).
        let mut rows = c.scenarios().to_vec();
        rows.push(&opt_row);
        for s in rows.iter().copied() {
            rec.count("engine.reconfigurations", s.reconfigurations);
            rec.count("engine.nodes_switched_on", s.nodes_switched_on);
            rec.count("engine.nodes_switched_off", s.nodes_switched_off);
            rec.count("engine.failure_epochs", s.failures_injected);
            rec.count("engine.segments_batched", s.segments_batched);
            rec.count("engine.events_skipped", s.events_skipped);
            rec.count("engine.fallback_unsegmented", s.fallback_unsegmented);
            rec.count("engine.violation_seconds", s.qos.violation_seconds);
            rec.count("scenarios.run", 1);
        }
        rec.count("opt.solves", 1);
        rec.count("opt.states", opt_sched.n_states as u64);
        rec.count("opt.segments", opt_sched.n_segments as u64);
        rec.count("opt.boundaries", opt_sched.n_boundaries as u64);
        rec.count("opt.states_pruned", opt_sched.states_pruned);
        // Host plane: where the wall clock went.
        rec.span(
            "phase.comparison",
            std::time::Duration::from_secs_f64(wall_s),
        );
        rec.span(
            "phase.opt_solve",
            std::time::Duration::from_secs_f64(opt_wall_s),
        );
        let document = rec.render_document(&[
            ("experiment", "fig5_bounds".to_string()),
            ("seed", args.seed.to_string()),
            ("days", days.to_string()),
            ("stepping", stepping_name.to_string()),
        ]);
        std::fs::write(path, document).expect("write telemetry document");
        eprintln!("wrote {path}");
    }
}
