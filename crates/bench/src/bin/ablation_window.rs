//! Ablation — sensitivity of BML to the look-ahead window length.
//!
//! The paper fixes the window at 2x the longest boot (378 s). This sweep
//! shows the trade-off: short windows react later (QoS risk, more
//! reconfigurations), long windows over-provision (energy).
//!
//! The sweep is a 1-D slice of the `bml-grid` experiment space (the
//! `windows` dimension); it routes through the same shared cell executor
//! as the `grid` binary and honors `--threads`.
//!
//! ```text
//! cargo run --release -p bml-bench --bin ablation_window [--days N] [--threads N] [--csv]
//! ```

use bml_bench::Args;
use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_metrics::{joules_to_kwh, Table};
use bml_sim::{runner::sweep_window, SimConfig};
use bml_trace::worldcup::{generate, WorldCupParams};

fn main() {
    let args = Args::parse();
    let days = args.days_or(7); // the sweep repeats the simulation; default smaller
    let trace = generate(&WorldCupParams {
        seed: args.seed,
        n_days: days,
        tournament_start: 8, // pull the tournament into the short span
        final_day: 6 + days.saturating_sub(2),
        ..Default::default()
    });
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let windows = [60u64, 189, 378, 756, 1800, 3600];
    eprintln!("sweeping {} windows over {} days...", windows.len(), days);
    let config = SimConfig {
        stepping: args.stepping_or_default(),
        ..Default::default()
    };
    let results = args
        .pool()
        .install(|| sweep_window(&trace, &bml, &windows, &config));

    println!(
        "Window-length ablation ({} days, seed {}):\n",
        days, args.seed
    );
    let mut t = Table::new(&[
        "window (s)",
        "energy (kWh)",
        "reconfigs",
        "boots",
        "QoS shortfall (%)",
        "violation secs",
    ]);
    for (w, r) in &results {
        t.row(&[
            format!("{w}"),
            format!("{:.2}", joules_to_kwh(r.total_energy_j)),
            format!("{}", r.reconfigurations),
            format!("{}", r.nodes_switched_on),
            format!("{:.4}", 100.0 * r.qos.shortfall_fraction()),
            format!("{}", r.qos.violation_seconds),
        ]);
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\nThe paper's 378 s window (2x longest boot) hides boot latency with minimal over-provisioning.");
}
