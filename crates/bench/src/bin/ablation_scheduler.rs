//! Ablation — baseline pro-active scheduler vs the future-work
//! transition-aware scheduler (paper Sec. VI) on the World-Cup-like
//! trace: energy, churn and QoS side by side.
//!
//! The sweep is a 1-D slice of the `bml-grid` experiment space (the
//! `schedulers` dimension); it routes through the same shared cell
//! executor as the `grid` binary and honors `--threads`.
//!
//! ```text
//! cargo run --release -p bml-bench --bin ablation_scheduler [--days N] [--threads N] [--csv]
//! ```

use bml_bench::Args;
use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_metrics::{joules_to_kwh, Table};
use bml_sim::{runner::sweep_scheduler, SimConfig};
use bml_trace::worldcup::{generate, WorldCupParams};

fn main() {
    let args = Args::parse();
    let days = args.days_or(7); // the sweep repeats the simulation; default smaller
    let trace = generate(&WorldCupParams {
        seed: args.seed,
        n_days: days,
        tournament_start: 8,
        final_day: 6 + days.saturating_sub(2),
        ..Default::default()
    });
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let config = SimConfig {
        stepping: args.stepping_or_default(),
        ..Default::default()
    };
    let results = args
        .pool()
        .install(|| sweep_scheduler(&trace, &bml, &config));

    println!("Scheduler ablation ({} days, seed {}):\n", days, args.seed);
    let mut t = Table::new(&[
        "scheduler",
        "energy (kWh)",
        "reconfigs",
        "boots",
        "reconfig energy (kJ)",
        "QoS shortfall (%)",
    ]);
    for (name, r) in &results {
        t.row(&[
            name.clone(),
            format!("{:.2}", joules_to_kwh(r.total_energy_j)),
            format!("{}", r.reconfigurations),
            format!("{}", r.nodes_switched_on),
            format!("{:.1}", r.reconfig_energy_j / 1_000.0),
            format!("{:.4}", 100.0 * r.qos.shortfall_fraction()),
        ]);
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!(
        "\nThe transition-aware scheduler suppresses reconfigurations whose On/Off energy\n\
         exceeds what the better-fitting combination saves within the decision horizon."
    );
}
