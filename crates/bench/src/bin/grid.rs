//! Multi-dimensional scenario grid over the BML simulator.
//!
//! Enumerates the smoke grid — catalog mixes x schedulers x windows x
//! prediction noise x split policies x both stepping modes on a
//! World-Cup-like tournament trace — executes every cell rayon-parallel
//! with deterministic per-cell seeds, and streams the versioned
//! `BENCH_grid.json` + `BENCH_grid.csv` artifacts as cells complete. For
//! a fixed seed the artifacts are byte-identical at any `--threads`
//! setting and at any cache temperature.
//!
//! ```text
//! cargo run --release -p bml-bench --bin grid -- \
//!     [--days N] [--seed N] [--threads N] [--out-dir PATH] [--csv] \
//!     [--cache-dir PATH] [--stepping event|per-second] \
//!     [--resume] [--max-retries N] [--chaos SEED] [--kill-after N]
//! ```
//!
//! Without `--stepping` the grid sweeps *both* modes as a dimension (CI
//! diffs the twins); with it, only the requested mode runs. With
//! `--cache-dir`, cell results are memoized content-addressed under that
//! directory.
//!
//! # Telemetry
//!
//! Every run writes a `bml-obs/v1` telemetry document (default
//! `BENCH_grid.telemetry.json` under `--out-dir`, overridable with
//! `--telemetry-out`): deterministic counters in the `counters` section
//! (byte-identical across thread counts and cache temperature — CI gates
//! on them), host timings and host-variant counts (cache hits, steals,
//! retries) in the `timings` section (never gated). Progress goes to
//! stderr as single-line JSON events — a throttled `heartbeat` with the
//! cells-per-second rate while running, then `cache`/`phases`/`done`
//! summaries; every event keeps a human-readable `message` field.
//!
//! # Fault tolerance
//!
//! Every run journals decided cells into `--out-dir` (checksummed,
//! append-only `BENCH_grid.journal`); `--kill-after N` crashes the run
//! deterministically after N cells, and `--resume` replays the journal
//! instead of recomputing — the resumed artifacts are byte-identical to
//! an uninterrupted run. Panicking cells are retried (`--max-retries`,
//! default 1) with the same seed and then quarantined into the
//! artifact's `failed_cells` section instead of aborting the grid.
//! `--chaos SEED` injects cell panics (p=0.25 per attempt) and torn
//! journal writes (p=0.1 per record) on a seeded, thread-count-
//! independent schedule — the CI chaos job kills such a run mid-flight,
//! resumes it, and diffs the artifacts against a clean run.

use std::path::Path;
use std::time::Duration;

use bml_bench::{json, Args};
use bml_core::combination::SplitPolicy;
use bml_grid::spec::{CatalogSpec, GridSpec, SchedulerDim};
use bml_grid::{
    pareto_frontier, per_dimension_bests, ChaosPolicy, GridRunner, StreamingArtifactWriter,
};
use bml_metrics::{joules_to_kwh, Table};
use bml_sim::Stepping;

/// The default smoke grid: 144 cells (3 catalogs x 2 schedulers x
/// 3 windows x 2 sigmas x 2 splits x 2 steppings) on one tournament
/// trace. Both stepping modes are included by default on purpose — CI
/// diffs event-driven cells against their per-second twins; an explicit
/// `--stepping` restricts the dimension to that one mode (72 cells).
fn smoke_spec(days: u32, seed: u64, steppings: Vec<Stepping>) -> GridSpec {
    GridSpec::builder()
        .name(format!("smoke-{days}d"))
        .root_seed(seed)
        .trace("worldcup-tournament", days, seed)
        .catalogs(vec![
            CatalogSpec::table1(),
            CatalogSpec::big_medium(),
            CatalogSpec::big_little(),
        ])
        .schedulers(vec![SchedulerDim::Baseline, SchedulerDim::TransitionAware])
        .windows(vec![None, Some(189), Some(756)])
        .noise_sigmas(vec![0.0, 0.2])
        .splits(vec![
            SplitPolicy::EfficiencyGreedy,
            SplitPolicy::ProportionalToCapacity,
        ])
        .steppings(steppings)
        .build()
        .expect("the smoke grid is always a valid spec")
}

/// Print one structured event as a single JSON line on stderr.
fn event(obj: json::Object) {
    eprintln!("{}", obj.render());
}

fn main() {
    let args = Args::parse();
    let days = args.days_or(3); // the grid multiplies the trace 144-fold; default small
    let steppings = match args.stepping {
        None => vec![Stepping::EventDriven, Stepping::PerSecond],
        Some(s) => vec![s],
    };
    let spec = smoke_spec(days, args.seed, steppings);
    let threads_label = args
        .threads
        .map_or_else(|| "default".to_string(), |n| n.to_string());
    event(
        json::Object::new()
            .str("event", "start")
            .str("grid", &spec.name)
            .int("cells", spec.n_cells() as u64)
            .int("days", u64::from(days))
            .str("threads", &threads_label)
            .str(
                "message",
                &format!(
                    "grid '{}': {} cells x {days} days, {threads_label} threads...",
                    spec.name,
                    spec.n_cells(),
                ),
            ),
    );
    let mut sink = StreamingArtifactWriter::create(Path::new(&args.out_dir)).unwrap_or_else(|e| {
        event(json::Object::new().str("event", "error").str(
            "message",
            &format!("cannot open artifacts under {}: {e}", args.out_dir),
        ));
        std::process::exit(1)
    });
    let started = std::time::Instant::now();
    let out_dir = Path::new(&args.out_dir);
    let mut runner = GridRunner::new(&spec)
        .threads_opt(args.threads)
        .cache_dir_opt(args.cache_dir.as_deref())
        .max_retries(args.max_retries_or(1))
        .heartbeat(Duration::from_secs(1))
        .sink(&mut sink);
    runner = if args.resume {
        runner.resume(out_dir)
    } else {
        runner.journal_dir(out_dir)
    };
    if let Some(seed) = args.chaos {
        // The smoke chaos schedule: enough cell panics that retries and
        // quarantine both fire on a 144-cell grid, plus torn journal
        // records to exercise resume recovery. Sink/cache I/O faults are
        // deliberately excluded — CI gates on the artifact file.
        runner = runner.chaos(ChaosPolicy::new(seed).panic_prob(0.25).torn_write_prob(0.1));
    }
    if let Some(n) = args.kill_after {
        runner = runner.kill_after_cells(n);
    }
    let mut run = runner.run().unwrap_or_else(|e| {
        event(
            json::Object::new()
                .str("event", "error")
                .str("message", &format!("grid run failed: {e}")),
        );
        std::process::exit(2)
    });
    let wall_s = started.elapsed().as_secs_f64();
    for w in &run.warnings {
        event(
            json::Object::new()
                .str("event", "warning")
                .str("component", w.component)
                .str(
                    "message",
                    &format!("warning: {} degraded: {}", w.component, w.message),
                ),
        );
    }
    if !run.outcome.failed_cells.is_empty() {
        let failed = run.outcome.failed_cells.len();
        let total = run.outcome.cells.len() + failed;
        event(
            json::Object::new()
                .str("event", "quarantine")
                .int("failed_cells", failed as u64)
                .int("total_cells", total as u64)
                .str(
                    "message",
                    &format!(
                        "quarantined {failed} of {total} cells after exhausted retries \
                         (see failed_cells in the artifact)"
                    ),
                ),
        );
    }
    let n_ok = run.outcome.cells.len();
    let sim_seconds = n_ok as u64 * u64::from(days) * 86_400;
    event(
        json::Object::new()
            .str("event", "done")
            .int("cells", n_ok as u64)
            .int("sim_seconds", sim_seconds)
            .num("wall_s", wall_s)
            .num("cells_per_s", n_ok as f64 / wall_s)
            .num("sim_seconds_per_wall_second", sim_seconds as f64 / wall_s)
            .str(
                "message",
                &format!(
                    "ran {n_ok} cells ({sim_seconds} simulated seconds) in {wall_s:.2} s \
                     ({:.1} cells/s)",
                    n_ok as f64 / wall_s,
                ),
            ),
    );
    if args.cache_dir.is_some() {
        // Telemetry only — CI reads the same numbers from the telemetry
        // artifact's host section; artifacts never carry them.
        event(
            json::Object::new()
                .str("event", "cache")
                .int("hits", run.cache.hits)
                .int("lookups", run.cache.lookups)
                .int("opt_hits", run.cache.opt_hits)
                .int("opt_lookups", run.cache.opt_lookups)
                .num("hit_rate", run.cache.hit_rate())
                .str(
                    "message",
                    &format!(
                        "cell cache: {} hits / {} lookups ({:.1}%), \
                         {} opt hits / {} opt lookups",
                        run.cache.hits,
                        run.cache.lookups,
                        100.0 * run.cache.hit_rate(),
                        run.cache.opt_hits,
                        run.cache.opt_lookups,
                    ),
                ),
        );
    }

    let render_t0 = std::time::Instant::now();
    let out = &run.outcome;
    println!(
        "Grid '{}' — best cell per dimension value (root seed {}):\n",
        spec.name, spec.root_seed
    );
    let mut t = Table::new(&[
        "dimension",
        "value",
        "best cell",
        "energy (kWh)",
        "QoS shortfall (%)",
    ]);
    for b in per_dimension_bests(out) {
        t.row(&[
            b.dimension,
            b.value,
            format!("{}", b.cell),
            format!("{:.2}", joules_to_kwh(b.total_energy_j)),
            format!("{:.4}", 100.0 * b.qos_shortfall),
        ]);
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }

    let frontier = pareto_frontier(out);
    println!(
        "\nEnergy-vs-QoS Pareto frontier: {} of {} cells:\n",
        frontier.len(),
        out.cells.len()
    );
    let mut p = Table::new(&[
        "cell",
        "catalog",
        "scheduler",
        "window",
        "sigma",
        "split",
        "energy (kWh)",
        "QoS shortfall (%)",
    ]);
    for &i in &frontier {
        let c = &out.cells[i];
        p.row(&[
            // Enumeration index, matching the artifact's pareto entries.
            format!("{}", c.coords.index),
            c.labels[1].clone(),
            c.labels[2].clone(),
            c.labels[3].clone(),
            c.labels[4].clone(),
            c.labels[5].clone(),
            format!("{:.2}", joules_to_kwh(c.summary.total_energy_j)),
            format!("{:.4}", 100.0 * c.summary.qos_shortfall),
        ]);
    }
    if args.csv {
        print!("{}", p.to_csv());
    } else {
        print!("{}", p.render());
    }

    run.telemetry.span("phase.render", render_t0.elapsed());

    // Phase-timing summary: where the wall clock went, host plane only.
    let phase_us = |name: &str| run.telemetry.timings.span(name).map_or(0, |s| s.total_us);
    event(
        json::Object::new()
            .str("event", "phases")
            .int("opt_solve_us", phase_us("phase.opt_solve"))
            .int("cells_us", phase_us("phase.cells"))
            .int("render_us", phase_us("phase.render"))
            .str(
                "message",
                &format!(
                    "phases: opt solve {} us, cells {} us, render {} us",
                    phase_us("phase.opt_solve"),
                    phase_us("phase.cells"),
                    phase_us("phase.render"),
                ),
            ),
    );

    let telemetry_path = args.telemetry_out.clone().unwrap_or_else(|| {
        out_dir
            .join("BENCH_grid.telemetry.json")
            .display()
            .to_string()
    });
    let document = run.telemetry.render_document(&[
        ("experiment", "grid".to_string()),
        ("grid", spec.name.clone()),
        ("root_seed", spec.root_seed.to_string()),
        ("days", days.to_string()),
    ]);
    if let Err(e) = std::fs::write(&telemetry_path, document) {
        event(
            json::Object::new()
                .str("event", "warning")
                .str("component", "telemetry")
                .str(
                    "message",
                    &format!("warning: telemetry degraded: {telemetry_path}: {e}"),
                ),
        );
    }

    let (json_path, csv_path) = sink.paths();
    event(
        json::Object::new()
            .str("event", "artifacts")
            .str("json", &json_path.display().to_string())
            .str("csv", &csv_path.display().to_string())
            .str("telemetry", &telemetry_path)
            .str(
                "message",
                &format!(
                    "wrote {}, {}, and {telemetry_path}",
                    json_path.display(),
                    csv_path.display(),
                ),
            ),
    );
}
