//! Figure 3 — power and performance profiles of the web server on the
//! five profiled architectures.
//!
//! Prints the measured power-vs-request-rate curve of every machine (one
//! node each), as the profiling harness sees it.
//!
//! ```text
//! cargo run --release -p bml-bench --bin fig3_profiles [--seed N] [--csv]
//! ```

use bml_bench::Args;
use bml_metrics::Table;
use bml_profiler::{paper_machines, profile_park, BenchmarkConfig, ProfilerConfig};

fn main() {
    let args = Args::parse();
    let cfg = ProfilerConfig {
        benchmark: BenchmarkConfig {
            seed: args.seed,
            ..Default::default()
        },
        round_max_perf: true,
    };
    let profiles = profile_park(&paper_machines(), &cfg);

    println!("Fig. 3 — measured power/performance profiles (linear model, one node):\n");
    let mut t = Table::new(&[
        "utilization",
        "paravance",
        "taurus",
        "graphene",
        "chromebook",
        "raspberry",
    ]);
    for pct in (0..=100u32).step_by(10) {
        let u = f64::from(pct) / 100.0;
        let mut row = vec![format!("{pct}%")];
        for p in &profiles {
            row.push(format!(
                "{:.2} W @ {:.0} req/s",
                p.power_at(u * p.max_perf),
                u * p.max_perf
            ));
        }
        t.row(&row);
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!("\nmaxPerf summary (req/s):");
    for p in &profiles {
        println!(
            "  {:<10} {:>6.0} req/s, {:>6.1}-{:>6.1} W ({:.3} W per req/s at full load)",
            p.name,
            p.max_perf,
            p.idle_power,
            p.max_power,
            p.full_load_cost()
        );
    }
}
