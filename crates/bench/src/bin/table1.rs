//! Table I — performance and power profiles of each architecture.
//!
//! Runs the Step-1 profiling harness (Siege-like ramp + wattmeter + On/Off
//! measurement) against the five synthetic machine models and prints the
//! measured profiles next to the values published in the paper.
//!
//! ```text
//! cargo run --release -p bml-bench --bin table1 [--seed N] [--csv] [--json PATH]
//! ```
//!
//! With `--json PATH` the measured profiles (plus harness wall time) are
//! also written — the CI smoke job uploads `BENCH_table1.json` as part of
//! the perf-trajectory artifact.

use bml_bench::{json, Args};
use bml_core::catalog;
use bml_metrics::Table;
use bml_profiler::{paper_machines, profile_park, BenchmarkConfig, ProfilerConfig};

fn main() {
    let args = Args::parse();
    let cfg = ProfilerConfig {
        benchmark: BenchmarkConfig {
            seed: args.seed,
            ..Default::default()
        },
        round_max_perf: true,
    };
    let machines = paper_machines();
    let started = std::time::Instant::now();
    let measured = profile_park(&machines, &cfg);
    let wall_s = started.elapsed().as_secs_f64();
    let published = catalog::table1();
    // Emulated benchmark-harness time: per machine, one idle run plus
    // `cores x max_concurrency_factor` levels of `repetitions` runs, each
    // `run_seconds` long — the table-1 equivalent of simulated seconds.
    let b = &cfg.benchmark;
    let emulated_s: u64 = machines
        .iter()
        .map(|m| {
            (1 + u64::from(m.cores * b.max_concurrency_factor) * u64::from(b.repetitions))
                * b.run_seconds
        })
        .sum();

    let mut table = Table::new(&[
        "architecture",
        "maxPerf (req/s)",
        "idle-max power (W)",
        "On (s)",
        "On (J)",
        "Off (s)",
        "Off (J)",
        "paper maxPerf",
        "paper idle-max",
    ]);
    for (m, p) in measured.iter().zip(&published) {
        table.row(&[
            m.name.clone(),
            format!("{:.0}", m.max_perf),
            format!("{:.1} - {:.1}", m.idle_power, m.max_power),
            format!("{:.0}", m.on_duration),
            format!("{:.0}", m.on_energy),
            format!("{:.0}", m.off_duration),
            format!("{:.1}", m.off_energy),
            format!("{:.0}", p.max_perf),
            format!("{:.1} - {:.1}", p.idle_power, p.max_power),
        ]);
    }
    println!(
        "Table I — measured by the profiling harness (seed {}) vs paper:\n",
        args.seed
    );
    if args.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }

    if let Some(path) = &args.json {
        let machine_objs = measured
            .iter()
            .map(|m| {
                json::Object::new()
                    .str("name", &m.name)
                    .num("max_perf", m.max_perf)
                    .num("idle_power_w", m.idle_power)
                    .num("max_power_w", m.max_power)
                    .num("on_duration_s", m.on_duration)
                    .num("on_energy_j", m.on_energy)
                    .num("off_duration_s", m.off_duration)
                    .num("off_energy_j", m.off_energy)
            })
            .collect();
        let summary = json::Object::new()
            .str("experiment", "table1")
            .int("seed", args.seed)
            .num("wall_s", wall_s)
            .int("sim_seconds", emulated_s)
            .num("sim_seconds_per_wall_second", emulated_s as f64 / wall_s)
            .objs("machines", machine_objs);
        summary.write(path).expect("write JSON summary");
        eprintln!("wrote {path}");
    }
}
