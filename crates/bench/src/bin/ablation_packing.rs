//! Ablation — the paper's greedy Step-5 fill versus the exact optimum.
//!
//! Quantifies how far "fill Bigs first, route the remainder by threshold"
//! sits from the optimal machine combination on the Table I hardware.
//!
//! The optimum column is [`bml_opt::optimal_instant`] — the one-segment
//! special case of the offline-optimal segment DP, seeded with the
//! knapsack packing of [`bml_core::combination::optimal_dp`] so the two
//! solvers share one code path (and are asserted to agree in this
//! binary's tests).
//!
//! ```text
//! cargo run --release -p bml-bench --bin ablation_packing [--csv]
//! ```

use bml_bench::Args;
use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_core::combination::SplitPolicy;
use bml_metrics::Table;

fn main() {
    let args = Args::parse();
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let profiles = bml.candidates();
    let split = SplitPolicy::EfficiencyGreedy;

    let mut t = Table::new(&[
        "rate (req/s)",
        "greedy (W)",
        "optimal DP (W)",
        "gap (%)",
        "greedy combo",
        "DP combo",
    ]);
    let mut worst_gap = 0.0f64;
    let mut total_greedy = 0.0;
    let mut total_dp = 0.0;
    for r in (1..=2662u64).step_by(7) {
        let greedy_combo = bml.ideal_combination(r as f64);
        let greedy = greedy_combo.power(profiles);
        let (dp, dp_counts) = bml_opt::optimal_instant(&bml, r, split);
        let gap = 100.0 * (greedy - dp) / dp;
        worst_gap = worst_gap.max(gap);
        total_greedy += greedy;
        total_dp += dp;
        if r % 133 == 1 || gap > 5.0 {
            let gc = greedy_combo.counts(3);
            t.row(&[
                format!("{r}"),
                format!("{greedy:.2}"),
                format!("{dp:.2}"),
                format!("{gap:.2}"),
                format!("{}/{}/{}", gc[0], gc[1], gc[2]),
                format!("{}/{}/{}", dp_counts[0], dp_counts[1], dp_counts[2]),
            ]);
        }
    }
    println!("Greedy (paper Step 5) vs optimal DP packing:\n");
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!(
        "\nworst-case gap {:.2}%, mean gap {:.2}% over the sampled rates — the paper's greedy is near-optimal.",
        worst_gap,
        100.0 * (total_greedy - total_dp) / total_dp
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::combination::optimal_dp;

    /// The segment DP collapsed to one segment must reproduce the
    /// standalone knapsack packer exactly — they are the same optimum
    /// computed two ways, and this binary quotes them interchangeably.
    #[test]
    fn instant_dp_agrees_with_the_knapsack_packer() {
        let bml = BmlInfrastructure::build(&catalog::table1()).unwrap();
        let profiles = bml.candidates();
        for r in (1..=2662u64).step_by(7) {
            let (knapsack_w, _) = optimal_dp(profiles, r);
            let (instant_w, counts) =
                bml_opt::optimal_instant(&bml, r, SplitPolicy::EfficiencyGreedy);
            assert!(
                (instant_w - knapsack_w).abs() <= 1e-9 * knapsack_w.max(1.0),
                "rate {r}: segment DP {instant_w} W vs knapsack {knapsack_w} W ({counts:?})"
            );
        }
    }
}
