//! Ablation — the paper's greedy Step-5 fill versus an exact DP packer.
//!
//! Quantifies how far "fill Bigs first, route the remainder by threshold"
//! sits from the optimal machine combination on the Table I hardware.
//!
//! ```text
//! cargo run --release -p bml-bench --bin ablation_packing [--csv]
//! ```

use bml_bench::Args;
use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_core::combination::optimal_dp;
use bml_metrics::Table;

fn main() {
    let args = Args::parse();
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let profiles = bml.candidates();

    let mut t = Table::new(&[
        "rate (req/s)",
        "greedy (W)",
        "optimal DP (W)",
        "gap (%)",
        "greedy combo",
        "DP combo",
    ]);
    let mut worst_gap = 0.0f64;
    let mut total_greedy = 0.0;
    let mut total_dp = 0.0;
    for r in (1..=2662u64).step_by(7) {
        let greedy_combo = bml.ideal_combination(r as f64);
        let greedy = greedy_combo.power(profiles);
        let (dp, dp_counts) = optimal_dp(profiles, r);
        let gap = 100.0 * (greedy - dp) / dp;
        worst_gap = worst_gap.max(gap);
        total_greedy += greedy;
        total_dp += dp;
        if r % 133 == 1 || gap > 5.0 {
            let gc = greedy_combo.counts(3);
            t.row(&[
                format!("{r}"),
                format!("{greedy:.2}"),
                format!("{dp:.2}"),
                format!("{gap:.2}"),
                format!("{}/{}/{}", gc[0], gc[1], gc[2]),
                format!("{}/{}/{}", dp_counts[0], dp_counts[1], dp_counts[2]),
            ]);
        }
    }
    println!("Greedy (paper Step 5) vs optimal DP packing:\n");
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!(
        "\nworst-case gap {:.2}%, mean gap {:.2}% over the sampled rates — the paper's greedy is near-optimal.",
        worst_gap,
        100.0 * (total_greedy - total_dp) / total_dp
    );
}
