//! Figure 4 — consumption of the ideal BML combination over an increasing
//! performance rate, up to `maxPerf(Big)`, compared to the all-Big
//! provisioning and to the "BML linear" goal line.
//!
//! ```text
//! cargo run --release -p bml-bench --bin fig4_combination [--csv]
//! ```

use bml_bench::Args;
use bml_core::bml::BmlInfrastructure;
use bml_core::catalog;
use bml_metrics::Table;

fn main() {
    let args = Args::parse();
    let bml = BmlInfrastructure::build(&catalog::table1()).expect("paper catalog builds");
    let max_rate = bml.big().max_perf as u64;

    println!(
        "Fig. 4 — BML combination power vs rate (candidates: {:?}, thresholds {:?}):\n",
        bml.candidates()
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>(),
        bml.threshold_rates()
    );

    let mut t = Table::new(&[
        "rate (req/s)",
        "BML (W)",
        "Big only (W)",
        "BML linear (W)",
        "combination (Big/Med/Little)",
    ]);
    let step = if args.csv { 1 } else { 37 };
    for r in (0..=max_rate).step_by(step) {
        let rate = r as f64;
        let combo = bml.ideal_combination(rate);
        let counts = combo.counts(bml.n_archs());
        t.row(&[
            format!("{r}"),
            format!("{:.2}", bml.power_at(rate)),
            format!("{:.2}", bml.big_stack_power(rate)),
            format!("{:.2}", bml.bml_linear_power(rate)),
            format!("{}/{}/{}", counts[0], counts[1], counts[2]),
        ]);
    }
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }

    // Key operating points called out in the paper's Sec. V-B.
    println!("\nKey points:");
    for r in [1u64, 9, 10, 33, 100, 528, 529, 1000, 1331] {
        let rate = r as f64;
        let counts = bml.ideal_combination(rate).counts(3);
        println!(
            "  {:>5} req/s -> {:>7.2} W  (Big {:>2}, Medium {:>2}, Little {:>2}) vs Big-only {:>7.2} W",
            r,
            bml.power_at(rate),
            counts[0],
            counts[1],
            counts[2],
            bml.big_stack_power(rate)
        );
    }
    let idle_savings = bml.big().idle_power / bml.little().idle_power;
    println!(
        "\nAt 1 req/s BML draws {:.2} W against the Big's {:.1} W idle floor ({:.0}x less static cost).",
        bml.power_at(1.0),
        bml.big().idle_power,
        idle_savings
    );
}
