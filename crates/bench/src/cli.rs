//! Shared CLI argument plumbing for the experiment binaries.
//!
//! Every binary parses the same flag set through [`Args`], so
//! `--seed`/`--days`/`--threads`/`--out-dir`/`--stepping` mean the same
//! thing everywhere and the parse rules live (and are tested) once.
//! The load-bearing rule: optional flags that binaries default
//! differently (`--days`, `--stepping`) parse to `Option` — an explicit
//! value is never silently rewritten to a binary's default (see
//! [`Args::days_or`]).

/// The usage line printed by `--help` and on any parse error.
pub const USAGE: &str = "usage: [--seed N] [--days N] [--window S] [--noise SIGMA] [--csv] \
     [--json PATH] [--threads N] [--out-dir PATH] [--cache-dir PATH] \
     [--stepping event|per-second] [--resume] [--max-retries N] \
     [--chaos SEED] [--kill-after N] [--telemetry-out PATH]";

/// Common command-line options of the experiment binaries.
///
/// Flags: `--seed N`, `--days N`, `--window S`, `--csv`, `--noise SIGMA`,
/// `--json PATH`, `--threads N`, `--out-dir PATH`, `--cache-dir PATH`,
/// `--stepping event|per-second`. Unknown flags abort with a usage
/// message.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// RNG seed (default 1998, the shipped experiment seed).
    pub seed: u64,
    /// Number of trace days to simulate; `None` when `--days` was not
    /// given, so each binary applies its own default (the paper's 87 for
    /// the figure replays, smaller for the repeated sweeps) without
    /// mistaking an explicit request for the default. Read through
    /// [`Args::days_or`].
    pub days: Option<u32>,
    /// Look-ahead window override (seconds); `None` = the paper's 378 s.
    pub window: Option<u64>,
    /// Emit CSV instead of aligned text tables.
    pub csv: bool,
    /// Prediction noise sigma for the ablations.
    pub noise: f64,
    /// Also write a machine-readable summary (the `BENCH_*.json` perf
    /// trajectory CI uploads) to this path.
    pub json: Option<String>,
    /// Worker-thread cap for the parallel sweeps and grids; `None` =
    /// rayon's default. Thread count never changes results, only
    /// wall-clock time.
    pub threads: Option<usize>,
    /// Directory artifact-writing binaries (`grid`) emit into
    /// (default `.`).
    pub out_dir: String,
    /// Content-addressed cell-cache directory for the `grid` binary;
    /// `None` disables caching. Safe to share across specs and thread
    /// counts — keys hash cell content, never execution shape.
    pub cache_dir: Option<String>,
    /// Engine stepping mode for the simulation binaries; `None` when
    /// `--stepping` was not given (single-run binaries default to
    /// event-driven via [`Args::stepping_or_default`]; the `grid` binary
    /// sweeps both modes unless one is requested explicitly).
    pub stepping: Option<bml_sim::Stepping>,
    /// Resume the `grid` binary from the journal a previous (killed) run
    /// left in `--out-dir`: already-decided cells replay from disk.
    pub resume: bool,
    /// Retry budget for panicking grid cells; `None` = the runner's
    /// default (one retry). Read through [`Args::max_retries_or`].
    pub max_retries: Option<u32>,
    /// Chaos seed for the `grid` binary; `None` disables fault injection.
    /// A seed enables the smoke chaos schedule (cell panics + torn
    /// journal writes) — see the `grid` binary docs.
    pub chaos: Option<u64>,
    /// Deterministically crash the `grid` binary after N emitted cells
    /// (crash-resume testing); `None` runs to completion.
    pub kill_after: Option<usize>,
    /// Path for the `bml-obs/v1` telemetry document. The `grid` binary
    /// defaults to `BENCH_grid.telemetry.json` under `--out-dir`; other
    /// binaries only write telemetry when this flag is given.
    pub telemetry_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 1998,
            days: None,
            window: None,
            csv: false,
            noise: 0.0,
            json: None,
            threads: None,
            out_dir: ".".into(),
            cache_dir: None,
            stepping: None,
            resume: false,
            max_retries: None,
            chaos: None,
            kill_after: None,
            telemetry_out: None,
        }
    }
}

impl Args {
    /// Parse from `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator, exiting on error.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        Self::try_parse_from(args).unwrap_or_else(|msg| die(&msg))
    }

    /// Parse from an explicit iterator; errors (including `--help`)
    /// become the message the CLI would print before exiting, usage line
    /// included — this is what the unknown-flag tests exercise.
    pub fn try_parse_from(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("missing value for {name}\n{USAGE}"))
            };
            match flag.as_str() {
                "--seed" => out.seed = parse_num(&value("--seed")?, "--seed")?,
                "--days" => out.days = Some(parse_num(&value("--days")?, "--days")?),
                "--window" => out.window = Some(parse_num(&value("--window")?, "--window")?),
                "--noise" => out.noise = parse_num(&value("--noise")?, "--noise")?,
                "--threads" => {
                    let n: usize = parse_num(&value("--threads")?, "--threads")?;
                    if n == 0 {
                        return Err(format!("--threads must be at least 1\n{USAGE}"));
                    }
                    out.threads = Some(n);
                }
                "--out-dir" => out.out_dir = value("--out-dir")?,
                "--cache-dir" => out.cache_dir = Some(value("--cache-dir")?),
                "--csv" => out.csv = true,
                "--json" => out.json = Some(value("--json")?),
                "--stepping" => {
                    out.stepping = Some(match value("--stepping")?.as_str() {
                        "event" | "event-driven" => bml_sim::Stepping::EventDriven,
                        "per-second" | "per_second" => bml_sim::Stepping::PerSecond,
                        other => {
                            return Err(format!(
                                "bad value '{other}' for --stepping (want 'event' or 'per-second')\n{USAGE}"
                            ))
                        }
                    })
                }
                "--resume" => out.resume = true,
                "--max-retries" => {
                    out.max_retries = Some(parse_num(&value("--max-retries")?, "--max-retries")?)
                }
                "--chaos" => out.chaos = Some(parse_num(&value("--chaos")?, "--chaos")?),
                "--kill-after" => {
                    let n: usize = parse_num(&value("--kill-after")?, "--kill-after")?;
                    if n == 0 {
                        return Err(format!("--kill-after must be at least 1\n{USAGE}"));
                    }
                    out.kill_after = Some(n);
                }
                "--telemetry-out" => out.telemetry_out = Some(value("--telemetry-out")?),
                "--help" | "-h" => return Err(USAGE.into()),
                other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
            }
        }
        Ok(out)
    }

    /// The trace span to simulate: `--days` when given, otherwise the
    /// binary's own default.
    pub fn days_or(&self, default: u32) -> u32 {
        self.days.unwrap_or(default)
    }

    /// The retry budget for panicking cells: `--max-retries` when given,
    /// otherwise the runner's default.
    pub fn max_retries_or(&self, default: u32) -> u32 {
        self.max_retries.unwrap_or(default)
    }

    /// The stepping mode for single-run binaries: `--stepping` when
    /// given, otherwise event-driven.
    pub fn stepping_or_default(&self) -> bml_sim::Stepping {
        self.stepping.unwrap_or_default()
    }

    /// A rayon pool honoring `--threads` (the default pool when unset).
    /// Run parallel sections under `pool().install(|| ...)`.
    pub fn pool(&self) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads.unwrap_or(0))
            .build()
            .expect("thread pool construction cannot fail")
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("bad value '{s}' for {flag}\n{USAGE}"))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse_from(v.iter().map(|s| s.to_string()))
    }

    fn try_parse(v: &[&str]) -> Result<Args, String> {
        Args::try_parse_from(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn telemetry_out_requires_a_value() {
        let err = try_parse(&["--telemetry-out"]).unwrap_err();
        assert!(err.contains("missing value for --telemetry-out"), "{err}");
        assert!(err.contains("--telemetry-out PATH"), "{err}");
        assert_eq!(parse(&[]).telemetry_out, None);
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.seed, 1998);
        assert_eq!(a.days, None);
        assert_eq!(a.days_or(87), 87);
        assert_eq!(a.window, None);
        assert!(!a.csv);
        assert_eq!(a.threads, None);
        assert_eq!(a.out_dir, ".");
        assert_eq!(a.cache_dir, None);
        assert_eq!(a.stepping, None);
        assert_eq!(a.stepping_or_default(), bml_sim::Stepping::EventDriven);
        assert!(!a.resume);
        assert_eq!(a.max_retries, None);
        assert_eq!(a.max_retries_or(1), 1);
        assert_eq!(a.chaos, None);
        assert_eq!(a.kill_after, None);
    }

    #[test]
    fn explicit_days_survive_even_at_a_binary_default_value() {
        // `--days 87` must be distinguishable from "no --days": binaries
        // with smaller defaults must not silently shrink an explicit 87.
        let a = parse(&["--days", "87"]);
        assert_eq!(a.days, Some(87));
        assert_eq!(a.days_or(3), 87);
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--seed",
            "7",
            "--days",
            "3",
            "--window",
            "600",
            "--noise",
            "0.2",
            "--csv",
            "--json",
            "out.json",
            "--threads",
            "4",
            "--out-dir",
            "artifacts",
            "--cache-dir",
            "/tmp/cells",
            "--stepping",
            "per-second",
            "--telemetry-out",
            "telemetry.json",
        ]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.days, Some(3));
        assert_eq!(a.window, Some(600));
        assert_eq!(a.noise, 0.2);
        assert!(a.csv);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.out_dir, "artifacts");
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/cells"));
        assert_eq!(a.stepping, Some(bml_sim::Stepping::PerSecond));
        assert_eq!(a.telemetry_out.as_deref(), Some("telemetry.json"));
    }

    #[test]
    fn fault_tolerance_flags() {
        let a = parse(&[
            "--resume",
            "--max-retries",
            "3",
            "--chaos",
            "42",
            "--kill-after",
            "72",
        ]);
        assert!(a.resume);
        assert_eq!(a.max_retries, Some(3));
        assert_eq!(a.max_retries_or(1), 3);
        assert_eq!(a.chaos, Some(42));
        assert_eq!(a.kill_after, Some(72));

        let err = try_parse(&["--kill-after", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = try_parse(&["--chaos"]).unwrap_err();
        assert!(err.contains("missing value for --chaos"), "{err}");
    }

    #[test]
    fn stepping_aliases() {
        assert_eq!(
            parse(&["--stepping", "event-driven"]).stepping,
            Some(bml_sim::Stepping::EventDriven)
        );
        assert_eq!(
            parse(&["--stepping", "per_second"]).stepping,
            Some(bml_sim::Stepping::PerSecond)
        );
    }

    #[test]
    fn unknown_flag_reports_usage() {
        let err = try_parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("unknown flag '--bogus'"), "{err}");
        assert!(err.contains("usage:"), "{err}");
        assert!(err.contains("--threads N"), "{err}");
        assert!(err.contains("--out-dir PATH"), "{err}");
        assert!(err.contains("--cache-dir PATH"), "{err}");
    }

    #[test]
    fn cache_dir_requires_a_value() {
        let err = try_parse(&["--cache-dir"]).unwrap_err();
        assert!(err.contains("missing value for --cache-dir"), "{err}");
    }

    #[test]
    fn missing_and_bad_values_report_usage() {
        let err = try_parse(&["--threads"]).unwrap_err();
        assert!(err.contains("missing value for --threads"), "{err}");
        assert!(err.contains("usage:"), "{err}");
        let err = try_parse(&["--threads", "zero"]).unwrap_err();
        assert!(err.contains("bad value 'zero' for --threads"), "{err}");
        let err = try_parse(&["--threads", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = try_parse(&["--stepping", "warp"]).unwrap_err();
        assert!(err.contains("bad value 'warp' for --stepping"), "{err}");
    }

    #[test]
    fn help_is_the_usage_line() {
        assert_eq!(try_parse(&["--help"]).unwrap_err(), USAGE);
        assert_eq!(try_parse(&["-h"]).unwrap_err(), USAGE);
    }

    #[test]
    fn pool_honors_threads() {
        let mut a = parse(&["--threads", "3"]);
        assert_eq!(a.pool().current_num_threads(), 3);
        a.threads = None;
        assert!(a.pool().current_num_threads() >= 1);
    }

    #[test]
    fn json_reexport_renders() {
        // The builder itself is tested in bml-grid; pin the crate-root
        // re-export every binary imports.
        assert_eq!(crate::json::Object::new().int("d", 0).render(), "{\"d\":0}");
    }
}
