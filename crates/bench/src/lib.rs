//! # bml-bench — experiment binaries and Criterion benches
//!
//! One binary per paper table/figure (see DESIGN.md's per-experiment
//! index) plus ablation studies. This library hosts the tiny shared CLI
//! helper the binaries use.

#![warn(missing_docs)]

/// Common command-line options of the experiment binaries.
///
/// Flags: `--seed N`, `--days N`, `--window S`, `--csv`, `--noise SIGMA`,
/// `--json PATH`, `--stepping event|per-second`. Unknown flags abort with
/// a usage message.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// RNG seed (default 1998, the shipped experiment seed).
    pub seed: u64,
    /// Number of trace days to simulate (default 87, the paper's span).
    pub days: u32,
    /// Look-ahead window override (seconds); `None` = the paper's 378 s.
    pub window: Option<u64>,
    /// Emit CSV instead of aligned text tables.
    pub csv: bool,
    /// Prediction noise sigma for the ablations.
    pub noise: f64,
    /// Also write a machine-readable summary (the `BENCH_*.json` perf
    /// trajectory CI uploads) to this path.
    pub json: Option<String>,
    /// Engine stepping mode for the simulation binaries: event-driven
    /// skip-ahead (default) or the per-second reference loop.
    pub stepping: bml_sim::Stepping,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 1998,
            days: 87,
            window: None,
            csv: false,
            noise: 0.0,
            json: None,
            stepping: bml_sim::Stepping::default(),
        }
    }
}

impl Args {
    /// Parse from `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| die(&format!("missing value for {name}")))
            };
            match flag.as_str() {
                "--seed" => out.seed = parse_num(&value("--seed"), "--seed"),
                "--days" => out.days = parse_num(&value("--days"), "--days"),
                "--window" => out.window = Some(parse_num(&value("--window"), "--window")),
                "--noise" => out.noise = parse_num(&value("--noise"), "--noise"),
                "--csv" => out.csv = true,
                "--json" => out.json = Some(value("--json")),
                "--stepping" => {
                    out.stepping = match value("--stepping").as_str() {
                        "event" | "event-driven" => bml_sim::Stepping::EventDriven,
                        "per-second" | "per_second" => bml_sim::Stepping::PerSecond,
                        other => die(&format!(
                            "bad value '{other}' for --stepping (want 'event' or 'per-second')"
                        )),
                    }
                }
                "--help" | "-h" => die(
                    "usage: [--seed N] [--days N] [--window S] [--noise SIGMA] [--csv] \
                     [--json PATH] [--stepping event|per-second]",
                ),
                other => die(&format!("unknown flag '{other}'")),
            }
        }
        out
    }
}

/// Minimal JSON emission for the `BENCH_*.json` perf-trajectory artifacts.
///
/// The vendored serde stand-in deliberately does not serialize, so the
/// handful of summary fields the CI smoke job uploads are written by hand
/// through this ordered object builder.
pub mod json {
    /// An ordered JSON object under construction.
    #[derive(Debug, Default)]
    pub struct Object {
        fields: Vec<(String, String)>,
    }

    impl Object {
        /// Empty object.
        pub fn new() -> Self {
            Self::default()
        }

        /// Add a string field (escaped).
        pub fn str(mut self, key: &str, v: &str) -> Self {
            let escaped = escape(v);
            self.fields.push((key.into(), format!("\"{escaped}\"")));
            self
        }

        /// Add an integer field.
        pub fn int(mut self, key: &str, v: u64) -> Self {
            self.fields.push((key.into(), v.to_string()));
            self
        }

        /// Add a number field (`null` when not finite).
        pub fn num(mut self, key: &str, v: f64) -> Self {
            self.fields.push((key.into(), fmt_f64(v)));
            self
        }

        /// Add an array of numbers.
        pub fn nums(mut self, key: &str, vs: &[f64]) -> Self {
            let body: Vec<String> = vs.iter().map(|&v| fmt_f64(v)).collect();
            self.fields
                .push((key.into(), format!("[{}]", body.join(","))));
            self
        }

        /// Add a nested object.
        pub fn obj(mut self, key: &str, v: Object) -> Self {
            self.fields.push((key.into(), v.render()));
            self
        }

        /// Add an array of nested objects.
        pub fn objs(mut self, key: &str, vs: Vec<Object>) -> Self {
            let body: Vec<String> = vs.into_iter().map(|o| o.render()).collect();
            self.fields
                .push((key.into(), format!("[{}]", body.join(","))));
            self
        }

        /// Serialize to a JSON string.
        pub fn render(&self) -> String {
            let body: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
                .collect();
            format!("{{{}}}", body.join(","))
        }

        /// Write to `path` with a trailing newline.
        pub fn write(&self, path: &str) -> std::io::Result<()> {
            std::fs::write(path, self.render() + "\n")
        }
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    fn fmt_f64(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".into()
        }
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value '{s}' for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse_from(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.seed, 1998);
        assert_eq!(a.days, 87);
        assert_eq!(a.window, None);
        assert!(!a.csv);
        assert_eq!(a.stepping, bml_sim::Stepping::EventDriven);
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--seed",
            "7",
            "--days",
            "3",
            "--window",
            "600",
            "--noise",
            "0.2",
            "--csv",
            "--json",
            "out.json",
            "--stepping",
            "per-second",
        ]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.days, 3);
        assert_eq!(a.window, Some(600));
        assert_eq!(a.noise, 0.2);
        assert!(a.csv);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.stepping, bml_sim::Stepping::PerSecond);
    }

    #[test]
    fn stepping_aliases() {
        assert_eq!(
            parse(&["--stepping", "event-driven"]).stepping,
            bml_sim::Stepping::EventDriven
        );
        assert_eq!(
            parse(&["--stepping", "per_second"]).stepping,
            bml_sim::Stepping::PerSecond
        );
    }

    #[test]
    fn json_builder_renders_ordered_fields() {
        let o = json::Object::new()
            .str("name", "fig5 \"smoke\"")
            .int("days", 2)
            .num("energy", 1.5)
            .num("bad", f64::NAN)
            .nums("daily", &[1.0, 2.5])
            .obj("stats", json::Object::new().num("mean", 0.25))
            .objs("rows", vec![json::Object::new().int("d", 0)]);
        assert_eq!(
            o.render(),
            "{\"name\":\"fig5 \\\"smoke\\\"\",\"days\":2,\"energy\":1.5,\"bad\":null,\
             \"daily\":[1,2.5],\"stats\":{\"mean\":0.25},\"rows\":[{\"d\":0}]}"
        );
    }
}
