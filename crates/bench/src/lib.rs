//! # bml-bench — experiment binaries and Criterion benches
//!
//! One binary per paper table/figure (see DESIGN.md's per-experiment
//! index) plus ablation studies. This library hosts the tiny shared CLI
//! helper the binaries use.

#![warn(missing_docs)]

/// Common command-line options of the experiment binaries.
///
/// Flags: `--seed N`, `--days N`, `--window S`, `--csv`, `--noise SIGMA`.
/// Unknown flags abort with a usage message.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// RNG seed (default 1998, the shipped experiment seed).
    pub seed: u64,
    /// Number of trace days to simulate (default 87, the paper's span).
    pub days: u32,
    /// Look-ahead window override (seconds); `None` = the paper's 378 s.
    pub window: Option<u64>,
    /// Emit CSV instead of aligned text tables.
    pub csv: bool,
    /// Prediction noise sigma for the ablations.
    pub noise: f64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 1998,
            days: 87,
            window: None,
            csv: false,
            noise: 0.0,
        }
    }
}

impl Args {
    /// Parse from `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| die(&format!("missing value for {name}")))
            };
            match flag.as_str() {
                "--seed" => out.seed = parse_num(&value("--seed"), "--seed"),
                "--days" => out.days = parse_num(&value("--days"), "--days"),
                "--window" => out.window = Some(parse_num(&value("--window"), "--window")),
                "--noise" => out.noise = parse_num(&value("--noise"), "--noise"),
                "--csv" => out.csv = true,
                "--help" | "-h" => die("usage: [--seed N] [--days N] [--window S] [--noise SIGMA] [--csv]"),
                other => die(&format!("unknown flag '{other}'")),
            }
        }
        out
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value '{s}' for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse_from(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.seed, 1998);
        assert_eq!(a.days, 87);
        assert_eq!(a.window, None);
        assert!(!a.csv);
    }

    #[test]
    fn all_flags() {
        let a = parse(&["--seed", "7", "--days", "3", "--window", "600", "--noise", "0.2", "--csv"]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.days, 3);
        assert_eq!(a.window, Some(600));
        assert_eq!(a.noise, 0.2);
        assert!(a.csv);
    }
}
