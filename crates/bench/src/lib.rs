//! # bml-bench — experiment binaries and Criterion benches
//!
//! One binary per paper table/figure (see DESIGN.md's per-experiment
//! index) plus ablation studies and the multi-dimensional `grid` runner.
//! This library hosts the shared CLI argument plumbing ([`cli`]) so the
//! twelve binaries parse `--seed`/`--days`/`--threads`/... one way.

#![warn(missing_docs)]

pub mod cli;

pub use cli::{Args, USAGE};

/// Ordered-JSON emission for the `BENCH_*.json` artifacts, re-exported
/// from `bml-grid` (where the grid artifact writer lives) so every bench
/// binary renders machine-readable summaries the same way.
pub use bml_grid::json;
