//! Property-based tests for traces, windows and predictors.

use bml_trace::predictor::{LookaheadMaxPredictor, Predictor};
use bml_trace::trace::LoadTrace;
use bml_trace::window::{naive_lookahead_max, LookaheadMaxTable};
use proptest::prelude::*;

fn arb_rates() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10_000.0, 0..2_000)
}

proptest! {
    #[test]
    fn window_max_equals_naive(rates in arb_rates(), horizon in 1u64..500) {
        let table = LookaheadMaxTable::new(&rates, horizon);
        prop_assert_eq!(table.len(), rates.len());
        for t in (0..rates.len() as u64).step_by(17) {
            prop_assert_eq!(table.max_from(t), naive_lookahead_max(&rates, t, horizon));
        }
    }

    #[test]
    fn window_max_dominates_current(rates in arb_rates(), horizon in 1u64..500) {
        let table = LookaheadMaxTable::new(&rates, horizon);
        for (t, &r) in rates.iter().enumerate() {
            prop_assert!(table.max_from(t as u64) >= r);
        }
    }

    #[test]
    fn window_max_monotone_in_horizon(rates in arb_rates(), h1 in 1u64..200, h2 in 1u64..200) {
        let (lo, hi) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
        let small = LookaheadMaxTable::new(&rates, lo);
        let big = LookaheadMaxTable::new(&rates, hi);
        for t in (0..rates.len() as u64).step_by(23) {
            prop_assert!(big.max_from(t) >= small.max_from(t));
        }
    }

    #[test]
    fn csv_roundtrip_preserves_trace(rates in arb_rates(), first_day in 0u32..100) {
        let t = LoadTrace::new(first_day, rates);
        let parsed = LoadTrace::from_csv(&t.to_csv()).unwrap();
        prop_assert_eq!(parsed.first_day, t.first_day);
        prop_assert_eq!(parsed.rates.len(), t.rates.len());
        for (a, b) in parsed.rates.iter().zip(&t.rates) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn daily_max_bounds_global_max(rates in arb_rates()) {
        let t = LoadTrace::new(0, rates);
        let dm = t.daily_max();
        let global = t.max();
        let dm_max = dm.iter().copied().fold(0.0, f64::max);
        prop_assert!((dm_max - global).abs() < 1e-9);
    }

    #[test]
    fn lookahead_predictor_never_underestimates_window(
        rates in proptest::collection::vec(0.0f64..5_000.0, 1..500),
        horizon in 1u64..100,
    ) {
        let t = LoadTrace::new(0, rates.clone());
        let mut p = LookaheadMaxPredictor::new(&t, horizon);
        for now in 0..rates.len() as u64 {
            let pred = p.predict(now);
            // Paper's QoS argument: prediction covers every load value
            // inside the look-ahead window.
            for dt in 0..horizon {
                let idx = (now + dt) as usize;
                if idx < rates.len() {
                    prop_assert!(pred >= rates[idx]);
                }
            }
        }
    }
}
