//! # bml-trace — workload traces and load predictors
//!
//! Substrate crate of the BML reproduction: per-second load traces
//! ([`trace::LoadTrace`]), deterministic synthetic generators
//! ([`synthetic`], and the World-Cup-98-like tournament workload in
//! [`worldcup`] substituting the paper's 1998 World Cup trace), an O(n)
//! sliding-window maximum ([`window`]), constant-run segment iteration
//! for the event-driven replay engine ([`segments`]), the load
//! predictors the pro-active scheduler consumes ([`predictor`]), and a
//! named trace-source registry ([`registry`]) so experiment grids can
//! reference workloads declaratively.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod predictor;
pub mod registry;
pub mod segments;
pub mod synthetic;
pub mod trace;
pub mod wc98;
pub mod window;
pub mod worldcup;

pub use predictor::{
    EwmaPredictor, LastValuePredictor, LookaheadMaxPredictor, NoisyPredictor, OraclePredictor,
    Predictor,
};
pub use segments::{constant_runs, Segment};
pub use trace::{LoadTrace, SECONDS_PER_DAY};
pub use window::LookaheadMaxTable;
