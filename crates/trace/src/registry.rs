//! Named trace-source registry.
//!
//! Experiment grids (`bml-grid`) name their trace sources declaratively —
//! `"worldcup"`, `"diurnal"`, `"random-walk"` — instead of hard-coding a
//! generator call per experiment. This registry maps a source name plus
//! the two knobs every source shares (`days`, `seed`) to a concrete
//! [`LoadTrace`]. All sources are deterministic given `(name, days, seed)`.
//!
//! | name                   | shape                                              |
//! |------------------------|----------------------------------------------------|
//! | `worldcup`             | the paper's WC98-like trace, days 6.. (quiet lead-in for short spans) |
//! | `worldcup-tournament`  | WC98-like with the tournament pulled into the span (the ablation binaries' default) |
//! | `diurnal`              | clean diurnal sinusoid, 10..2000 req/s, trough 4 am |
//! | `flash-crowd`          | baseline 50 req/s with one mid-run spike to 3000    |
//! | `square-bursts`        | 20 req/s with 10-minute hourly plateaus at 1500     |
//! | `random-walk`          | bounded random walk in 5..2500 req/s (seeded)       |
//! | `constant`             | flat 300 req/s                                      |

use crate::synthetic;
use crate::trace::LoadTrace;
use crate::worldcup::{generate as wc_generate, WorldCupParams};

/// Every registered source name, in registry order.
pub const NAMES: [&str; 7] = [
    "worldcup",
    "worldcup-tournament",
    "diurnal",
    "flash-crowd",
    "square-bursts",
    "random-walk",
    "constant",
];

/// WC98-like params with the tournament pulled into a short span, exactly
/// as the ablation binaries configure it for `--days` runs.
fn tournament_params(days: u32, seed: u64) -> WorldCupParams {
    WorldCupParams {
        seed,
        n_days: days,
        tournament_start: 8,
        final_day: 6 + days.saturating_sub(2),
        ..Default::default()
    }
}

/// Generate the named trace source over `days` days with `seed`.
///
/// Returns `None` for unknown names (callers turn that into a spec
/// validation error listing [`NAMES`]). `days` is clamped to at least 1 —
/// every source yields a non-empty trace; callers that must distinguish
/// "zero days requested" (e.g. `bml-grid` spec validation) reject 0
/// before calling.
pub fn generate(name: &str, days: u32, seed: u64) -> Option<LoadTrace> {
    let days = days.max(1);
    let seconds = u64::from(days) * crate::trace::SECONDS_PER_DAY;
    Some(match name {
        "worldcup" => wc_generate(&WorldCupParams {
            seed,
            n_days: days,
            ..Default::default()
        }),
        "worldcup-tournament" => wc_generate(&tournament_params(days, seed)),
        "diurnal" => synthetic::diurnal(10.0, 2_000.0, 4.0, days),
        "flash-crowd" => synthetic::flash_crowd(50.0, 3_000.0, seconds / 2, 120, 1_800.0, seconds),
        "square-bursts" => synthetic::square_bursts(20.0, 1_500.0, 3_600, 600, seconds),
        "random-walk" => synthetic::random_walk(5.0, 2_500.0, 10.0, seconds, seed),
        "constant" => synthetic::constant(300.0, seconds),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_generates() {
        for name in NAMES {
            let t = generate(name, 1, 7).unwrap_or_else(|| panic!("{name} not generated"));
            assert_eq!(t.len(), crate::trace::SECONDS_PER_DAY, "{name}");
            assert!(t.max() > 0.0, "{name} is all-zero");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(generate("no-such-source", 1, 0).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        for name in NAMES {
            let a = generate(name, 1, 42).unwrap();
            let b = generate(name, 1, 42).unwrap();
            assert_eq!(a, b, "{name} not deterministic");
        }
    }

    #[test]
    fn seed_changes_seeded_sources() {
        for name in ["worldcup", "worldcup-tournament", "random-walk"] {
            let a = generate(name, 1, 1).unwrap();
            let b = generate(name, 1, 2).unwrap();
            assert_ne!(a, b, "{name} ignored the seed");
        }
    }

    #[test]
    fn tournament_variant_is_busier_than_lead_in() {
        let plain = generate("worldcup", 3, 1998).unwrap();
        let tour = generate("worldcup-tournament", 3, 1998).unwrap();
        assert!(tour.max() > plain.max() * 2.0, "tournament not pulled in");
    }

    #[test]
    fn zero_days_clamps_to_one() {
        let t = generate("constant", 0, 0).unwrap();
        assert_eq!(t.len(), crate::trace::SECONDS_PER_DAY);
    }
}
