//! Synthetic load generators for testing and domain examples.
//!
//! These produce the kinds of variable loads the paper's introduction
//! motivates: diurnal web traffic, flash crowds, bursty enterprise
//! services. All generators are deterministic given their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::LoadTrace;

/// Constant load, useful as a baseline and in tests.
pub fn constant(rate: f64, seconds: u64) -> LoadTrace {
    LoadTrace::new(0, vec![rate.max(0.0); seconds as usize])
}

/// Diurnal sinusoid: daily cycle between `min_rate` and `max_rate`, with
/// the trough at `trough_hour` (0-23). One sample per second.
pub fn diurnal(min_rate: f64, max_rate: f64, trough_hour: f64, days: u32) -> LoadTrace {
    let n = days as usize * 86_400;
    let mut rates = Vec::with_capacity(n);
    let amplitude = (max_rate - min_rate) / 2.0;
    let mid = min_rate + amplitude;
    for t in 0..n {
        let hour = (t % 86_400) as f64 / 3_600.0;
        // Cosine with minimum at `trough_hour`.
        let phase = (hour - trough_hour) / 24.0 * std::f64::consts::TAU;
        rates.push((mid - amplitude * phase.cos()).max(0.0));
    }
    LoadTrace::new(0, rates)
}

/// Square-wave bursts: `low` load with periodic plateaus at `high`.
pub fn square_bursts(low: f64, high: f64, period_s: u64, burst_s: u64, seconds: u64) -> LoadTrace {
    assert!(period_s > 0 && burst_s <= period_s);
    let rates = (0..seconds)
        .map(|t| if t % period_s < burst_s { high } else { low })
        .collect();
    LoadTrace::new(0, rates)
}

/// A flash crowd: baseline load, then a sudden spike at `onset_s` that
/// ramps to `peak` within `ramp_s` seconds and decays exponentially with
/// time constant `decay_s` — the classic slashdot/match-kickoff shape.
pub fn flash_crowd(
    baseline: f64,
    peak: f64,
    onset_s: u64,
    ramp_s: u64,
    decay_s: f64,
    seconds: u64,
) -> LoadTrace {
    let rates = (0..seconds)
        .map(|t| {
            if t < onset_s {
                baseline
            } else if t < onset_s + ramp_s {
                let frac = (t - onset_s) as f64 / ramp_s.max(1) as f64;
                baseline + (peak - baseline) * frac
            } else {
                let dt = (t - onset_s - ramp_s) as f64;
                baseline + (peak - baseline) * (-dt / decay_s.max(1.0)).exp()
            }
        })
        .collect();
    LoadTrace::new(0, rates)
}

/// Bounded random walk between `min_rate` and `max_rate`, step size drawn
/// uniformly from `[-max_step, max_step]` each second. Seeded and
/// deterministic.
pub fn random_walk(
    min_rate: f64,
    max_rate: f64,
    max_step: f64,
    seconds: u64,
    seed: u64,
) -> LoadTrace {
    assert!(max_rate >= min_rate);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = (min_rate + max_rate) / 2.0;
    let rates = (0..seconds)
        .map(|_| {
            let step: f64 = rng.gen_range(-max_step..=max_step);
            cur = (cur + step).clamp(min_rate, max_rate);
            cur
        })
        .collect();
    LoadTrace::new(0, rates)
}

/// Multiplicative noise wrapper: scales every sample of `trace` by
/// `1 + e`, `e` uniform in `[-jitter, jitter]`, clamped at 0.
pub fn with_noise(trace: &LoadTrace, jitter: f64, seed: u64) -> LoadTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let rates = trace
        .rates
        .iter()
        .map(|&r| {
            let e: f64 = rng.gen_range(-jitter..=jitter);
            (r * (1.0 + e)).max(0.0)
        })
        .collect();
    LoadTrace::new(trace.first_day, rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let t = constant(42.0, 100);
        assert_eq!(t.len(), 100);
        assert_eq!(t.max(), 42.0);
        assert!((t.mean() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn constant_clamps_negative() {
        assert_eq!(constant(-5.0, 3).max(), 0.0);
    }

    #[test]
    fn diurnal_cycle_shape() {
        let t = diurnal(10.0, 100.0, 4.0, 1);
        assert_eq!(t.len(), 86_400);
        // Trough near 4 am.
        let at_4am = t.get(4 * 3_600);
        assert!((at_4am - 10.0).abs() < 0.1, "trough {at_4am}");
        // Peak near 4 pm (12 h later).
        let at_4pm = t.get(16 * 3_600);
        assert!((at_4pm - 100.0).abs() < 0.1, "peak {at_4pm}");
        assert!(t.max() <= 100.0 + 1e-9);
    }

    #[test]
    fn diurnal_repeats_daily() {
        let t = diurnal(5.0, 50.0, 3.0, 2);
        for s in (0..86_400).step_by(3_600) {
            assert!((t.get(s) - t.get(s + 86_400)).abs() < 1e-9);
        }
    }

    #[test]
    fn square_bursts_pattern() {
        let t = square_bursts(1.0, 10.0, 10, 3, 25);
        assert_eq!(t.get(0), 10.0);
        assert_eq!(t.get(2), 10.0);
        assert_eq!(t.get(3), 1.0);
        assert_eq!(t.get(10), 10.0);
        assert_eq!(t.get(14), 1.0);
    }

    #[test]
    fn flash_crowd_shape() {
        let t = flash_crowd(10.0, 1000.0, 100, 20, 60.0, 400);
        assert_eq!(t.get(50), 10.0);
        // Peak reached at onset + ramp.
        assert!((t.get(120) - 1000.0).abs() < 60.0);
        // Decays after the peak.
        assert!(t.get(200) < t.get(130));
        assert!(t.get(399) < 300.0);
        // Never below the baseline.
        for s in 0..400 {
            assert!(t.get(s) >= 10.0 - 1e-9);
        }
    }

    #[test]
    fn random_walk_bounded_and_deterministic() {
        let a = random_walk(5.0, 50.0, 2.0, 1000, 7);
        let b = random_walk(5.0, 50.0, 2.0, 1000, 7);
        assert_eq!(a, b);
        for &r in &a.rates {
            assert!((5.0..=50.0).contains(&r));
        }
        let c = random_walk(5.0, 50.0, 2.0, 1000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_stays_close_and_nonnegative() {
        let base = constant(100.0, 1000);
        let noisy = with_noise(&base, 0.1, 3);
        for &r in &noisy.rates {
            assert!((90.0..=110.0).contains(&r), "rate {r}");
        }
        let noisy0 = with_noise(&base, 0.0, 3);
        assert_eq!(noisy0, base);
    }
}
