//! Synthetic 1998 World Cup-like workload (paper Sec. V-C substitute).
//!
//! The paper replays days 6-92 of the public 1998 World Cup web trace.
//! That trace is distributed as ~30 GB of binary HTTP logs which cannot be
//! shipped here, so this module generates a load trace that reproduces its
//! *structure*, which is what the Fig. 5 comparison actually exercises:
//!
//! * 87 days with a quiet pre-tournament lead-in,
//! * a pronounced diurnal cycle with deep night troughs,
//! * match-day flash crowds (kick-off bumps at 14:30 / 17:30 / 21:00 CET)
//!   growing steadily through the group stage and knock-out rounds,
//! * the global peak on the final's day, sized so a homogeneous data
//!   center needs **4 Big (Paravance) machines** — matching the paper's
//!   `UpperBound Global` dimensioning,
//! * a sharp post-final decay.
//!
//! Generation is deterministic given the seed. Real traces in the CSV
//! interchange format can be substituted anywhere this one is used.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::trace::LoadTrace;

/// Parameters of the World-Cup-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldCupParams {
    /// RNG seed; the default (1998) is used by all shipped experiments.
    pub seed: u64,
    /// Label of the first generated day (paper: 6).
    pub first_day: u32,
    /// Number of days (paper: 87, i.e. days 6..=92).
    pub n_days: u32,
    /// Global peak rate, reached on the final's day. The default (5200
    /// req/s) requires `ceil(5200 / 1331) = 4` Paravance machines.
    pub peak_rate: f64,
    /// Typical daily peak before the tournament starts.
    pub pre_tournament_peak: f64,
    /// Fraction of the daily peak remaining in the deepest night trough.
    pub night_fraction: f64,
    /// Absolute day on which the tournament (group stage) starts.
    pub tournament_start: u32,
    /// Absolute day of the final (global peak).
    pub final_day: u32,
    /// Multiplicative noise amplitude (uniform in `[-noise, +noise]`).
    pub noise: f64,
    /// Strength of the per-second arrival (Poisson-like) noise: the
    /// sampled rate is `rate + poisson_noise * sqrt(rate) * N(0,1)`.
    /// Real request traces have exactly this shot noise — at 5 req/s the
    /// per-second count fluctuates by ~45% — and it is what makes the
    /// paper's windowed-max prediction over-provision at night.
    pub poisson_noise: f64,
    /// Mean number of minute-scale burst events per day (news flashes,
    /// replays, linked articles); more frequent on match days.
    pub bursts_per_day: f64,
    /// Largest burst amplitude (multiplier on the base load).
    pub burst_max_amplitude: f64,
}

impl Default for WorldCupParams {
    fn default() -> Self {
        WorldCupParams {
            seed: 1998,
            first_day: 6,
            n_days: 87,
            peak_rate: 5200.0,
            pre_tournament_peak: 220.0,
            night_fraction: 0.06,
            tournament_start: 40,
            final_day: 89,
            noise: 0.04,
            poisson_noise: 4.0,
            bursts_per_day: 5.0,
            burst_max_amplitude: 2.6,
        }
    }
}

impl WorldCupParams {
    /// Is `day` (absolute label) a match day under this parameterization?
    ///
    /// Group stage (first 16 tournament days): matches every day.
    /// Knock-out rounds: matches every other day up to the final.
    pub fn is_match_day(&self, day: u32) -> bool {
        if day < self.tournament_start || day > self.final_day {
            return false;
        }
        let dt = day - self.tournament_start;
        if dt < 16 {
            true
        } else {
            (day - self.tournament_start).is_multiple_of(2) || day == self.final_day
        }
    }

    /// The target peak load of `day` (absolute label), before noise.
    pub fn daily_peak(&self, day: u32) -> f64 {
        if day > self.final_day {
            // Post-final decay: 35% of the pre-final level, halving daily.
            let dt = (day - self.final_day) as f64;
            return (self.peak_rate * 0.35 * 0.5f64.powf(dt - 1.0)).max(self.pre_tournament_peak);
        }
        if day < self.tournament_start {
            // Pre-tournament: slow linear build-up of interest.
            let span = (self.tournament_start - self.first_day).max(1) as f64;
            let frac = (day.saturating_sub(self.first_day)) as f64 / span;
            return self.pre_tournament_peak * (0.4 + 0.6 * frac);
        }
        // Tournament: exponential growth from the opening level to the
        // final's peak.
        let opening = self.pre_tournament_peak * 4.0;
        let span = (self.final_day - self.tournament_start).max(1) as f64;
        let frac = (day - self.tournament_start) as f64 / span;
        let level = opening * (self.peak_rate / opening).powf(frac);
        if self.is_match_day(day) {
            level
        } else {
            level * 0.45 // rest days: interest but no kick-off crowds
        }
    }
}

/// Gaussian bump helper: `exp(-(x/sigma)^2 / 2)`.
fn bump(dist_s: f64, sigma_s: f64) -> f64 {
    (-0.5 * (dist_s / sigma_s).powi(2)).exp()
}

/// One standard gaussian sample (Box-Muller, clamped to 4 sigma).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()).clamp(-4.0, 4.0)
}

/// A minute-scale burst event: gaussian-shaped multiplicative surge.
struct Burst {
    center_s: f64,
    sigma_s: f64,
    /// Extra amplitude at the center (multiplier is `1 + extra`).
    extra: f64,
}

impl Burst {
    fn multiplier(&self, s: f64) -> f64 {
        1.0 + self.extra * bump(s - self.center_s, self.sigma_s)
    }
}

/// Draw the burst schedule of one day.
fn day_bursts(params: &WorldCupParams, match_day: bool, rng: &mut StdRng) -> Vec<Burst> {
    let mean = params.bursts_per_day * if match_day { 1.5 } else { 1.0 };
    let n = (mean + gaussian(rng) * mean.sqrt()).round().max(0.0) as usize;
    (0..n)
        .map(|_| Burst {
            // Bursts cluster in waking hours (8h-24h).
            center_s: rng.gen_range(8.0 * 3_600.0..24.0 * 3_600.0),
            sigma_s: rng.gen_range(45.0..400.0),
            extra: rng.gen_range(0.2..params.burst_max_amplitude - 1.0),
        })
        .collect()
}

/// Generate the trace.
pub fn generate(params: &WorldCupParams) -> LoadTrace {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n = params.n_days as usize * 86_400;
    let mut rates = Vec::with_capacity(n);
    // Kick-off times (seconds since midnight): 14:30, 17:30, 21:00.
    const KICKOFFS: [f64; 3] = [14.5 * 3_600.0, 17.5 * 3_600.0, 21.0 * 3_600.0];
    const MATCH_SIGMA: f64 = 2_700.0; // 45 min crowd build-up/drain

    for di in 0..params.n_days {
        let day = params.first_day + di;
        let peak = params.daily_peak(day);
        let match_day = params.is_match_day(day);
        let bursts = day_bursts(params, match_day, &mut rng);
        for s in 0..86_400u64 {
            let hour = s as f64 / 3_600.0;
            // Diurnal base: trough at 4 am, crest at 4 pm.
            let phase = (hour - 4.0) / 24.0 * std::f64::consts::TAU;
            let diurnal = 0.5 - 0.5 * phase.cos(); // 0 at 4 am, 1 at 4 pm
            let base_level = params.night_fraction + (1.0 - params.night_fraction) * diurnal;
            // Non-match share of the day's traffic.
            let mut level = base_level * if match_day { 0.45 } else { 1.0 };
            if match_day {
                // Kick-off crowds; the evening match draws the full peak.
                let weights = [0.55, 0.7, 1.0];
                for (k, &t0) in KICKOFFS.iter().enumerate() {
                    level +=
                        weights[k] * (1.0 - 0.45 * base_level) * bump(s as f64 - t0, MATCH_SIGMA);
                }
            }
            let jitter: f64 = rng.gen_range(-params.noise..=params.noise);
            let mut rate = peak * level * (1.0 + jitter);
            // Minute-scale surges.
            for b in &bursts {
                rate *= b.multiplier(s as f64);
            }
            // Per-second arrival shot noise (Poisson-like): dominant in
            // relative terms at night, negligible at the match peaks.
            rate += params.poisson_noise * rate.max(0.0).sqrt() * gaussian(&mut rng);
            rates.push(rate.clamp(0.0, params.peak_rate).round());
        }
    }
    LoadTrace::new(params.first_day, rates)
}

/// The default trace used by the shipped Fig.-5 experiments.
pub fn paper_trace() -> LoadTrace {
    generate(&WorldCupParams::default())
}

/// A reduced version (fewer days) for fast tests: same structure, same
/// relative day labels.
pub fn short_trace(n_days: u32) -> LoadTrace {
    generate(&WorldCupParams {
        n_days,
        ..WorldCupParams::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let p = WorldCupParams::default();
        assert_eq!(p.first_day, 6);
        assert_eq!(p.n_days, 87);
        // Days 6..=92 inclusive.
        assert_eq!(p.first_day + p.n_days - 1, 92);
    }

    #[test]
    fn determinism() {
        let a = short_trace(3);
        let b = short_trace(3);
        assert_eq!(a, b);
    }

    #[test]
    fn peak_needs_exactly_four_bigs() {
        // Generate only the final's day for speed.
        let p = WorldCupParams::default();
        let all = generate(&WorldCupParams {
            first_day: p.final_day,
            n_days: 1,
            tournament_start: p.tournament_start,
            final_day: p.final_day,
            ..p
        });
        let max = all.max();
        assert!(max > 3.0 * 1331.0, "peak {max} should need > 3 Bigs");
        assert!(max <= 4.0 * 1331.0, "peak {max} must fit in 4 Bigs");
    }

    #[test]
    fn pre_tournament_days_are_quiet() {
        let t = short_trace(5); // days 6..=10, all pre-tournament
                                // Base peaks stay near `pre_tournament_peak`; bursts and shot
                                // noise can push single seconds a couple of multiples higher, but
                                // nowhere near tournament scale (thousands of req/s).
        assert!(t.max() < 1_000.0, "pre-tournament peak {}", t.max());
        assert!(t.max() > 30.0);
        assert!(t.mean() < 150.0, "pre-tournament mean {}", t.mean());
    }

    #[test]
    fn diurnal_troughs_are_deep() {
        let t = short_trace(2);
        // Night (4 am) load far below the day's peak.
        let night = t.get(4 * 3_600);
        let day_max = t.day(0).iter().copied().fold(0.0, f64::max);
        assert!(night < day_max * 0.25, "night {night} vs peak {day_max}");
    }

    #[test]
    fn daily_peaks_grow_through_tournament() {
        let p = WorldCupParams::default();
        let start = p.daily_peak(p.tournament_start);
        let mid = p.daily_peak(p.tournament_start + 10);
        let end = p.daily_peak(p.final_day);
        assert!(start < mid && mid < end);
        assert_eq!(end, p.peak_rate);
    }

    #[test]
    fn post_final_decay() {
        let p = WorldCupParams {
            final_day: 89,
            ..Default::default()
        };
        assert!(p.daily_peak(90) < p.daily_peak(89) * 0.5);
        assert!(p.daily_peak(92) < p.daily_peak(90));
    }

    #[test]
    fn match_day_schedule() {
        let p = WorldCupParams::default();
        assert!(!p.is_match_day(10)); // pre-tournament
        assert!(p.is_match_day(p.tournament_start)); // opening match
        assert!(p.is_match_day(p.tournament_start + 5)); // group stage daily
        assert!(p.is_match_day(p.final_day));
        assert!(!p.is_match_day(p.final_day + 1));
    }

    #[test]
    fn match_day_kickoff_bump_visible() {
        // Compare 21:00 vs 12:00 on the final's day: kick-off crowd must
        // dominate.
        let p = WorldCupParams::default();
        let t = generate(&WorldCupParams {
            first_day: p.final_day,
            n_days: 1,
            ..p
        });
        let noon = t.get(12 * 3_600);
        let kickoff = t.get(21 * 3_600);
        assert!(kickoff > noon * 1.5, "kickoff {kickoff} vs noon {noon}");
    }

    #[test]
    fn rates_are_rounded_nonnegative() {
        let t = short_trace(1);
        for &r in &t.rates {
            assert!(r >= 0.0);
            assert_eq!(r, r.round());
        }
    }

    #[test]
    fn full_trace_has_87_days() {
        // Only generated once here (slow-ish); keep assertions together.
        let t = paper_trace();
        assert_eq!(t.n_days(), 87);
        assert_eq!(t.len(), 87 * 86_400);
        let dm = t.daily_max();
        // Pre-tournament days need a single Big at most...
        assert!(dm[0] < 1331.0);
        // ...while the final week needs several.
        let final_idx = (WorldCupParams::default().final_day - 6) as usize;
        assert!(dm[final_idx] > 3.0 * 1331.0);
        // The global maximum fits the 4-Big dimensioning.
        assert!(t.max() <= 4.0 * 1331.0);
    }
}
