//! Per-second workload traces.
//!
//! A [`LoadTrace`] stores the application load (in application-metric
//! units, e.g. requests per second) for every second of an experiment —
//! the same granularity as the paper's simulator, which slides its
//! prediction window "one time step forwards, a second in this case".

use serde::{Deserialize, Serialize};

/// Seconds per day, the paper's Fig. 5 aggregation unit.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// A per-second load trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    /// Label of the first day in the trace (the paper's World Cup slice
    /// starts at day 6).
    pub first_day: u32,
    /// One load value per second.
    pub rates: Vec<f64>,
}

impl LoadTrace {
    /// Build a trace from raw per-second rates.
    pub fn new(first_day: u32, rates: Vec<f64>) -> Self {
        LoadTrace { first_day, rates }
    }

    /// Number of seconds covered.
    pub fn len(&self) -> u64 {
        self.rates.len() as u64
    }

    /// `true` if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Load at second `t` (0 outside the trace).
    #[inline]
    pub fn get(&self, t: u64) -> f64 {
        self.rates.get(t as usize).copied().unwrap_or(0.0)
    }

    /// End (exclusive) of the maximal constant-load run containing
    /// second `t` — the raw-load sub-segment boundary the event-driven
    /// replay batches power/QoS accounting over. `t` past the end of the
    /// trace returns `len()`.
    #[inline]
    pub fn run_end(&self, t: u64) -> u64 {
        crate::segments::run_end(&self.rates, t)
    }

    /// Iterate the maximal runs of constant load.
    pub fn constant_runs(&self) -> crate::segments::ConstantRuns<'_> {
        crate::segments::constant_runs(&self.rates)
    }

    /// Maximum load over the whole trace.
    pub fn max(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    /// Mean load over the whole trace (0 for an empty trace).
    pub fn mean(&self) -> f64 {
        if self.rates.is_empty() {
            0.0
        } else {
            self.rates.iter().sum::<f64>() / self.rates.len() as f64
        }
    }

    /// Maximum load within `[from, to)` (clamped to the trace).
    pub fn max_in(&self, from: u64, to: u64) -> f64 {
        let from = (from as usize).min(self.rates.len());
        let to = (to as usize).min(self.rates.len());
        self.rates[from..to].iter().copied().fold(0.0, f64::max)
    }

    /// Number of complete or partial days covered.
    pub fn n_days(&self) -> u32 {
        self.rates.len().div_ceil(SECONDS_PER_DAY as usize) as u32
    }

    /// The rates of day `i` (0-based within the trace; day label is
    /// `first_day + i`). Empty slice when out of range.
    pub fn day(&self, i: u32) -> &[f64] {
        let start = (i as usize) * SECONDS_PER_DAY as usize;
        let end = (start + SECONDS_PER_DAY as usize).min(self.rates.len());
        if start >= self.rates.len() {
            &[]
        } else {
            &self.rates[start..end]
        }
    }

    /// Daily maximum loads, one entry per day — the dimensioning input of
    /// the paper's `UpperBound PerDay` scenario.
    pub fn daily_max(&self) -> Vec<f64> {
        (0..self.n_days())
            .map(|d| self.day(d).iter().copied().fold(0.0, f64::max))
            .collect()
    }

    /// Serialize to the simple CSV interchange format
    /// (`second,rate` rows; header line included).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.rates.len() * 12 + 32);
        out.push_str(&format!("# first_day={}\nsecond,rate\n", self.first_day));
        for (t, r) in self.rates.iter().enumerate() {
            out.push_str(&format!("{t},{r}\n"));
        }
        out
    }

    /// Parse the CSV interchange format produced by [`LoadTrace::to_csv`].
    /// Missing seconds are filled with 0; rows may arrive out of order.
    pub fn from_csv(text: &str) -> Result<Self, TraceParseError> {
        let mut first_day = 0u32;
        let mut samples: Vec<(u64, f64)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line == "second,rate" {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(v) = rest.trim().strip_prefix("first_day=") {
                    first_day = v.trim().parse().map_err(|_| TraceParseError {
                        line: lineno + 1,
                        message: format!("bad first_day value '{v}'"),
                    })?;
                }
                continue;
            }
            let (a, b) = line.split_once(',').ok_or_else(|| TraceParseError {
                line: lineno + 1,
                message: "expected 'second,rate'".into(),
            })?;
            let t: u64 = a.trim().parse().map_err(|_| TraceParseError {
                line: lineno + 1,
                message: format!("bad second '{a}'"),
            })?;
            let r: f64 = b.trim().parse().map_err(|_| TraceParseError {
                line: lineno + 1,
                message: format!("bad rate '{b}'"),
            })?;
            if !r.is_finite() || r < 0.0 {
                return Err(TraceParseError {
                    line: lineno + 1,
                    message: format!("rate must be finite and >= 0, got {r}"),
                });
            }
            samples.push((t, r));
        }
        let len = samples.iter().map(|&(t, _)| t + 1).max().unwrap_or(0);
        let mut rates = vec![0.0; len as usize];
        for (t, r) in samples {
            rates[t as usize] = r;
        }
        Ok(LoadTrace { first_day, rates })
    }
}

/// Error parsing a CSV trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> LoadTrace {
        LoadTrace::new(6, vec![1.0, 5.0, 3.0, 9.0, 2.0])
    }

    #[test]
    fn basic_accessors() {
        let t = trace();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.get(3), 9.0);
        assert_eq!(t.get(99), 0.0);
        assert_eq!(t.max(), 9.0);
        assert!((t.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn max_in_window() {
        let t = trace();
        assert_eq!(t.max_in(0, 2), 5.0);
        assert_eq!(t.max_in(2, 4), 9.0);
        assert_eq!(t.max_in(4, 100), 2.0);
        assert_eq!(t.max_in(100, 200), 0.0);
        assert_eq!(t.max_in(3, 3), 0.0);
    }

    #[test]
    fn day_slicing() {
        let mut rates = vec![1.0; SECONDS_PER_DAY as usize];
        rates.extend(vec![2.0; 100]);
        let t = LoadTrace::new(6, rates);
        assert_eq!(t.n_days(), 2);
        assert_eq!(t.day(0).len(), SECONDS_PER_DAY as usize);
        assert_eq!(t.day(1).len(), 100);
        assert!(t.day(2).is_empty());
        assert_eq!(t.daily_max(), vec![1.0, 2.0]);
    }

    #[test]
    fn empty_trace() {
        let t = LoadTrace::new(0, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 0.0);
        assert_eq!(t.n_days(), 0);
        assert!(t.daily_max().is_empty());
    }

    #[test]
    fn csv_roundtrip() {
        let t = trace();
        let parsed = LoadTrace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn csv_out_of_order_and_gaps() {
        let t = LoadTrace::from_csv("second,rate\n3,9.5\n0,1\n").unwrap();
        assert_eq!(t.rates, vec![1.0, 0.0, 0.0, 9.5]);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(LoadTrace::from_csv("second,rate\nxyz").is_err());
        assert!(LoadTrace::from_csv("1,abc").is_err());
        assert!(LoadTrace::from_csv("a,1").is_err());
        assert!(LoadTrace::from_csv("0,-3").is_err());
        assert!(LoadTrace::from_csv("0,NaN").is_err());
        let err = LoadTrace::from_csv("second,rate\n0,1\nbad").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn csv_preserves_first_day() {
        let t = LoadTrace::new(42, vec![7.0]);
        let parsed = LoadTrace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(parsed.first_day, 42);
    }
}
