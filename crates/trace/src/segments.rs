//! Maximal constant runs of piecewise-constant series.
//!
//! The event-driven replay engine (`bml-sim`) exploits the fact that both
//! the look-ahead-max prediction and the raw load are piecewise-constant
//! in time: the scheduler's decision can only change at *prediction*
//! change-points, while power/QoS accounting only changes at *raw-load*
//! change-points. This module provides the shared segment machinery:
//! [`constant_runs`] iterates the maximal runs of a series, and
//! [`run_end`] answers "how long does the current value hold?" in O(run)
//! — amortized O(n) over a monotone forward replay.

/// One maximal run of constant value: `values[start..end]` all equal
/// `value`, and the run cannot be extended in either direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First second of the run (inclusive).
    pub start: u64,
    /// One past the last second of the run (exclusive).
    pub end: u64,
    /// The constant value over `[start, end)`.
    pub value: f64,
}

impl Segment {
    /// Length of the run in seconds.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` for a degenerate empty segment (never yielded by
    /// [`constant_runs`]).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Iterator over the maximal constant runs of a slice, in order.
#[derive(Debug, Clone)]
pub struct ConstantRuns<'a> {
    values: &'a [f64],
    pos: usize,
}

impl Iterator for ConstantRuns<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if self.pos >= self.values.len() {
            return None;
        }
        let start = self.pos;
        let end = run_end(self.values, start as u64) as usize;
        self.pos = end;
        Some(Segment {
            start: start as u64,
            end: end as u64,
            value: self.values[start],
        })
    }
}

/// Iterate the maximal constant runs of `values`.
pub fn constant_runs(values: &[f64]) -> ConstantRuns<'_> {
    ConstantRuns { values, pos: 0 }
}

/// End (exclusive) of the maximal constant run containing second `t`:
/// the smallest `t' > t` with `values[t'] != values[t]`, or `values.len()`
/// when the value holds to the end. `t` past the end returns `len`.
///
/// Comparison is plain `f64` equality — series fed to the replay engines
/// are finite by construction (trace parsers reject NaN).
#[inline]
pub fn run_end(values: &[f64], t: u64) -> u64 {
    let n = values.len();
    let t = t as usize;
    if t >= n {
        return n as u64;
    }
    let v = values[t];
    let mut e = t + 1;
    while e < n && values[e] == v {
        e += 1;
    }
    e as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_partition_the_series() {
        let v = [1.0, 1.0, 2.0, 2.0, 2.0, 1.0, 3.0];
        let runs: Vec<Segment> = constant_runs(&v).collect();
        assert_eq!(runs.len(), 4);
        assert_eq!(
            runs[0],
            Segment {
                start: 0,
                end: 2,
                value: 1.0
            }
        );
        assert_eq!(
            runs[1],
            Segment {
                start: 2,
                end: 5,
                value: 2.0
            }
        );
        assert_eq!(
            runs[2],
            Segment {
                start: 5,
                end: 6,
                value: 1.0
            }
        );
        assert_eq!(
            runs[3],
            Segment {
                start: 6,
                end: 7,
                value: 3.0
            }
        );
        // Partition: contiguous, covering, non-empty.
        let total: u64 = runs.iter().map(Segment::len).sum();
        assert_eq!(total, v.len() as u64);
        assert!(runs.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn empty_series_yields_nothing() {
        assert_eq!(constant_runs(&[]).count(), 0);
        assert_eq!(run_end(&[], 0), 0);
        assert_eq!(run_end(&[], 5), 0);
    }

    #[test]
    fn single_run() {
        let v = [4.0; 10];
        let runs: Vec<Segment> = constant_runs(&v).collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 10);
    }

    #[test]
    fn run_end_within_and_past() {
        let v = [5.0, 5.0, 5.0, 7.0];
        assert_eq!(run_end(&v, 0), 3);
        assert_eq!(run_end(&v, 1), 3);
        assert_eq!(run_end(&v, 3), 4);
        assert_eq!(run_end(&v, 4), 4);
        assert_eq!(run_end(&v, 100), 4);
    }

    #[test]
    fn alternating_values_are_unit_runs() {
        let v = [1.0, 2.0, 1.0, 2.0];
        assert!(constant_runs(&v).all(|s| s.len() == 1));
    }

    // The trace-level face of the same machinery — what the replay
    // engines and the offline-optimal segment DP actually call.

    #[test]
    fn empty_trace_has_no_runs() {
        let trace = crate::LoadTrace::new(0, vec![]);
        assert_eq!(trace.constant_runs().count(), 0);
        assert_eq!(trace.run_end(0), 0);
        assert_eq!(trace.run_end(99), 0);
    }

    #[test]
    fn single_second_trace_is_one_unit_run() {
        let trace = crate::LoadTrace::new(0, vec![42.0]);
        let runs: Vec<Segment> = trace.constant_runs().collect();
        assert_eq!(
            runs,
            vec![Segment {
                start: 0,
                end: 1,
                value: 42.0
            }]
        );
        assert_eq!(trace.run_end(0), 1);
        assert_eq!(trace.run_end(1), 1, "past-the-end clamps to the horizon");
    }

    #[test]
    fn final_run_ends_exactly_at_the_horizon() {
        // The last run's `end` must be the trace length itself — an
        // off-by-one here would make horizon-clamped consumers (span
        // accounting, shutdown-ramp truncation) drop or double the final
        // second.
        let mut rates = vec![1.0; 5];
        rates.extend(vec![9.0; 7]);
        let trace = crate::LoadTrace::new(0, rates);
        let runs: Vec<Segment> = trace.constant_runs().collect();
        assert_eq!(runs.last().unwrap().end, trace.len());
        assert_eq!(trace.run_end(5), 12);
        assert_eq!(trace.run_end(11), 12);
        let covered: u64 = runs.iter().map(Segment::len).sum();
        assert_eq!(covered, trace.len());
    }
}
