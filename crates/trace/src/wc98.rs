//! Parser for the real 1998 World Cup access-log binary format.
//!
//! The trace the paper replays (days 6-92) is publicly distributed as
//! binary logs: fixed 20-byte big-endian records
//!
//! ```text
//! struct request {
//!     uint32 timestamp;  // seconds since epoch
//!     uint32 clientID;
//!     uint32 objectID;
//!     uint32 size;       // response bytes
//!     uint8  method;
//!     uint8  status;     // HTTP status + version bits
//!     uint8  type;       // file type
//!     uint8  server;     // region + server number
//! }
//! ```
//!
//! This module converts such logs into the per-second [`LoadTrace`] the
//! simulator consumes: requests are bucketed per second, and the rate may
//! be rescaled so that the trace's peak matches a target (the paper's
//! experiments size the peak for 4 Big machines). We cannot ship the
//! 30 GB trace itself, but with this parser the shipped experiments run
//! unchanged on the real data.

use bytes::Buf;

use crate::trace::LoadTrace;

/// Size of one binary record.
pub const RECORD_BYTES: usize = 20;

/// One decoded request record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wc98Record {
    /// Seconds since the Unix epoch.
    pub timestamp: u32,
    /// Anonymized client id.
    pub client_id: u32,
    /// Requested object id.
    pub object_id: u32,
    /// Response size in bytes.
    pub size: u32,
    /// HTTP method code.
    pub method: u8,
    /// HTTP status/version byte.
    pub status: u8,
    /// File type code.
    pub file_type: u8,
    /// Region/server byte.
    pub server: u8,
}

/// Errors decoding a WC98 binary log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wc98Error {
    /// The input length is not a multiple of the 20-byte record size.
    TruncatedRecord {
        /// Bytes left over after the last whole record.
        trailing_bytes: usize,
    },
    /// The log contained no records.
    Empty,
    /// Timestamps regressed by more than the tolerated reordering window.
    NonMonotonic {
        /// Index of the offending record.
        at_record: usize,
    },
    /// A timestamp jumped forward by more than the tolerated gap — in a
    /// per-second-bucketed trace a corrupt record near `u32::MAX` would
    /// otherwise force a multi-gigabyte counts allocation.
    TimestampGap {
        /// Index of the offending record.
        at_record: usize,
        /// Seconds skipped past the largest timestamp seen so far.
        gap_s: u32,
    },
    /// The underlying reader failed.
    Io(String),
}

impl std::fmt::Display for Wc98Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Wc98Error::TruncatedRecord { trailing_bytes } => {
                write!(f, "truncated WC98 log: {trailing_bytes} trailing bytes")
            }
            Wc98Error::Empty => write!(f, "empty WC98 log"),
            Wc98Error::NonMonotonic { at_record } => {
                write!(f, "timestamps regress too far at record {at_record}")
            }
            Wc98Error::TimestampGap { at_record, gap_s } => {
                write!(f, "timestamp jumps {gap_s} s ahead at record {at_record}")
            }
            Wc98Error::Io(msg) => write!(f, "WC98 log read failed: {msg}"),
        }
    }
}

impl std::error::Error for Wc98Error {}

/// Decode one whole record from the front of a [`Buf`].
fn decode_record(buf: &mut impl Buf) -> Wc98Record {
    debug_assert!(buf.remaining() >= RECORD_BYTES);
    Wc98Record {
        timestamp: buf.get_u32(),
        client_id: buf.get_u32(),
        object_id: buf.get_u32(),
        size: buf.get_u32(),
        method: buf.get_u8(),
        status: buf.get_u8(),
        file_type: buf.get_u8(),
        server: buf.get_u8(),
    }
}

/// Incremental decoder for the fixed 20-byte records: feed the log in
/// arbitrary chunks (network reads, file blocks); whole records pop out
/// and a record split across a chunk boundary is buffered until its
/// remainder arrives. The streaming counterpart of [`parse_records`] —
/// the 30 GB real logs never have to be resident in memory.
#[derive(Debug, Clone, Default)]
pub struct Wc98Decoder {
    partial: [u8; RECORD_BYTES],
    partial_len: usize,
}

impl Wc98Decoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes of an incomplete record buffered from previous chunks.
    pub fn pending_bytes(&self) -> usize {
        self.partial_len
    }

    /// Decode every whole record available from the buffered remainder
    /// plus `chunk`, appending to `out`; any trailing partial record is
    /// buffered for the next call.
    pub fn feed(&mut self, mut chunk: &[u8], out: &mut Vec<Wc98Record>) {
        // Complete a record straddling the previous chunk boundary first.
        if self.partial_len > 0 {
            let need = RECORD_BYTES - self.partial_len;
            let take = need.min(chunk.len());
            self.partial[self.partial_len..self.partial_len + take].copy_from_slice(&chunk[..take]);
            self.partial_len += take;
            chunk = &chunk[take..];
            if self.partial_len < RECORD_BYTES {
                return; // chunk exhausted mid-record
            }
            let mut head: &[u8] = &self.partial;
            out.push(decode_record(&mut head));
            self.partial_len = 0;
        }
        out.reserve(chunk.len() / RECORD_BYTES);
        while chunk.remaining() >= RECORD_BYTES {
            out.push(decode_record(&mut chunk));
        }
        if !chunk.is_empty() {
            self.partial[..chunk.len()].copy_from_slice(chunk);
            self.partial_len = chunk.len();
        }
    }

    /// Declare the log complete: errors if a partial record is buffered.
    pub fn finish(self) -> Result<(), Wc98Error> {
        if self.partial_len > 0 {
            Err(Wc98Error::TruncatedRecord {
                trailing_bytes: self.partial_len,
            })
        } else {
            Ok(())
        }
    }
}

/// Decode every record of a binary log slice.
pub fn parse_records(data: &[u8]) -> Result<Vec<Wc98Record>, Wc98Error> {
    if !data.len().is_multiple_of(RECORD_BYTES) {
        return Err(Wc98Error::TruncatedRecord {
            trailing_bytes: data.len() % RECORD_BYTES,
        });
    }
    let mut out = Vec::with_capacity(data.len() / RECORD_BYTES);
    let mut decoder = Wc98Decoder::new();
    decoder.feed(data, &mut out);
    decoder.finish()?;
    Ok(out)
}

/// Encode records back to the binary format (used by tests and by tools
/// that need to cut a trace slice).
pub fn encode_records(records: &[Wc98Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * RECORD_BYTES);
    for r in records {
        out.extend_from_slice(&r.timestamp.to_be_bytes());
        out.extend_from_slice(&r.client_id.to_be_bytes());
        out.extend_from_slice(&r.object_id.to_be_bytes());
        out.extend_from_slice(&r.size.to_be_bytes());
        out.push(r.method);
        out.push(r.status);
        out.push(r.file_type);
        out.push(r.server);
    }
    out
}

/// Conversion options from records to a [`LoadTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct Wc98Options {
    /// Label of the first day in the output trace.
    pub first_day: u32,
    /// Tolerated backwards jitter in record timestamps (the real logs are
    /// near-sorted; the distribution tools allow small reordering).
    pub reorder_tolerance_s: u32,
    /// If set, linearly rescale the per-second rates so the peak equals
    /// this value (the paper's metric is requests/s of *its* CGI workload,
    /// not raw WC98 hits/s, so experiments rescale the shape).
    pub rescale_peak_to: Option<f64>,
    /// Largest tolerated forward jump between consecutive timestamps (s).
    /// The trace buckets one `f64` per second, so a single corrupt record
    /// with a timestamp near `u32::MAX` would otherwise force a
    /// multi-gigabyte allocation; a week-long hole (the default) already
    /// means the log is not the near-continuous WC98 distribution.
    pub max_gap_s: u32,
}

impl Default for Wc98Options {
    fn default() -> Self {
        Wc98Options {
            first_day: 6,
            reorder_tolerance_s: 2,
            rescale_peak_to: Some(5_200.0),
            max_gap_s: 7 * 86_400,
        }
    }
}

/// Streaming record-to-trace bucketer: feed binary chunks (or decoded
/// records), read the finished [`LoadTrace`] at the end. Holds only the
/// per-second counts — O(trace seconds), not O(log bytes) — so an
/// arbitrarily large log streams through in constant extra memory.
#[derive(Debug, Clone)]
pub struct Wc98TraceBuilder {
    options: Wc98Options,
    decoder: Wc98Decoder,
    /// Reused scratch for the records decoded from one chunk.
    batch: Vec<Wc98Record>,
    records_seen: usize,
    start: Option<u32>,
    max_seen: u32,
    counts: Vec<f64>,
}

impl Wc98TraceBuilder {
    /// Fresh builder with the given conversion options.
    pub fn new(options: Wc98Options) -> Self {
        Wc98TraceBuilder {
            options,
            decoder: Wc98Decoder::new(),
            batch: Vec::new(),
            records_seen: 0,
            start: None,
            max_seen: 0,
            counts: Vec::new(),
        }
    }

    /// Feed one binary chunk of the log; records may split across chunk
    /// boundaries arbitrarily.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), Wc98Error> {
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        self.decoder.feed(chunk, &mut batch);
        let result = batch.iter().try_for_each(|r| self.push(r));
        self.batch = batch;
        result
    }

    /// Bucket one decoded record.
    fn push(&mut self, r: &Wc98Record) -> Result<(), Wc98Error> {
        let first = self.start.is_none();
        let start = *self.start.get_or_insert(r.timestamp);
        if r.timestamp.saturating_add(self.options.reorder_tolerance_s) < self.max_seen {
            return Err(Wc98Error::NonMonotonic {
                at_record: self.records_seen,
            });
        }
        if !first && r.timestamp > self.max_seen.saturating_add(self.options.max_gap_s) {
            return Err(Wc98Error::TimestampGap {
                at_record: self.records_seen,
                gap_s: r.timestamp - self.max_seen,
            });
        }
        self.max_seen = self.max_seen.max(r.timestamp);
        let idx = r.timestamp.saturating_sub(start) as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0.0);
        }
        self.counts[idx] += 1.0;
        self.records_seen += 1;
        Ok(())
    }

    /// Records bucketed so far.
    pub fn records_seen(&self) -> usize {
        self.records_seen
    }

    /// Finish the stream: rejects a trailing partial record or an empty
    /// log, applies the peak rescaling, and returns the trace.
    pub fn finish(self) -> Result<LoadTrace, Wc98Error> {
        self.decoder.finish()?;
        if self.records_seen == 0 {
            return Err(Wc98Error::Empty);
        }
        let mut counts = self.counts;
        if let Some(target) = self.options.rescale_peak_to {
            let peak = counts.iter().copied().fold(0.0, f64::max);
            if peak > 0.0 {
                let factor = target / peak;
                for c in &mut counts {
                    *c = (*c * factor).round();
                }
            }
        }
        Ok(LoadTrace::new(self.options.first_day, counts))
    }
}

/// Bucket records into a per-second [`LoadTrace`].
///
/// The trace spans from the first record's timestamp to the last's;
/// seconds with no request get rate 0.
pub fn records_to_trace(
    records: &[Wc98Record],
    options: &Wc98Options,
) -> Result<LoadTrace, Wc98Error> {
    let mut builder = Wc98TraceBuilder::new(options.clone());
    records.iter().try_for_each(|r| builder.push(r))?;
    builder.finish()
}

/// Parse a whole binary log into a trace in one call.
pub fn parse_trace(data: &[u8], options: &Wc98Options) -> Result<LoadTrace, Wc98Error> {
    records_to_trace(&parse_records(data)?, options)
}

/// Parse a binary log from any [`std::io::Read`] source in fixed-size
/// chunks — the whole log is never resident in memory, only the decoded
/// per-second counts. This is how the real ~30 GB WC98 distribution is
/// meant to be ingested.
pub fn parse_trace_from_reader<R: std::io::Read>(
    mut reader: R,
    options: &Wc98Options,
) -> Result<LoadTrace, Wc98Error> {
    let mut builder = Wc98TraceBuilder::new(options.clone());
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => builder.feed(&buf[..n])?,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Wc98Error::Io(e.to_string())),
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u32) -> Wc98Record {
        Wc98Record {
            timestamp: ts,
            client_id: 42,
            object_id: 7,
            size: 1024,
            method: 0,
            status: 2,
            file_type: 1,
            server: 3,
        }
    }

    #[test]
    fn roundtrip_encode_parse() {
        let records = vec![record(100), record(100), record(103)];
        let bytes = encode_records(&records);
        assert_eq!(bytes.len(), 3 * RECORD_BYTES);
        let parsed = parse_records(&bytes).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn truncated_input_rejected() {
        let mut bytes = encode_records(&[record(1)]);
        bytes.pop();
        assert_eq!(
            parse_records(&bytes).unwrap_err(),
            Wc98Error::TruncatedRecord { trailing_bytes: 19 }
        );
    }

    #[test]
    fn bucketing_counts_per_second() {
        let records = vec![record(1_000), record(1_000), record(1_000), record(1_002)];
        let trace = records_to_trace(
            &records,
            &Wc98Options {
                rescale_peak_to: None,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(trace.rates, vec![3.0, 0.0, 1.0]);
        assert_eq!(trace.first_day, 6);
    }

    #[test]
    fn rescaling_hits_target_peak() {
        let records = vec![record(0), record(0), record(1)];
        let trace = records_to_trace(
            &records,
            &Wc98Options {
                rescale_peak_to: Some(5_200.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(trace.max(), 5_200.0);
        assert_eq!(trace.rates[1], 2_600.0);
    }

    #[test]
    fn small_reordering_tolerated_large_rejected() {
        let ok = vec![record(10), record(9), record(11)];
        assert!(records_to_trace(&ok, &Wc98Options::default()).is_ok());
        let bad = vec![record(100), record(10)];
        assert_eq!(
            records_to_trace(&bad, &Wc98Options::default()).unwrap_err(),
            Wc98Error::NonMonotonic { at_record: 1 }
        );
    }

    #[test]
    fn empty_log_rejected() {
        assert_eq!(
            records_to_trace(&[], &Wc98Options::default()).unwrap_err(),
            Wc98Error::Empty
        );
        assert_eq!(parse_records(&[]).unwrap(), vec![]);
    }

    #[test]
    fn parse_trace_end_to_end() {
        // A synthetic "day": bursts at second 0 and 5.
        let mut records = Vec::new();
        for _ in 0..10 {
            records.push(record(500));
        }
        for _ in 0..5 {
            records.push(record(505));
        }
        let bytes = encode_records(&records);
        let trace = parse_trace(
            &bytes,
            &Wc98Options {
                rescale_peak_to: None,
                first_day: 6,
                reorder_tolerance_s: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.get(0), 10.0);
        assert_eq!(trace.get(5), 5.0);
        // And the simulator input path accepts it (smoke).
        assert_eq!(trace.daily_max(), vec![10.0]);
    }

    #[test]
    fn decoder_handles_records_split_across_chunks() {
        let records: Vec<Wc98Record> = (0..7).map(|i| record(1_000 + i)).collect();
        let bytes = encode_records(&records);
        // Feed in every chunk size from 1 byte (worst case: each record
        // split across 20 chunks) to larger-than-record chunks.
        for chunk_size in [1usize, 3, 7, 19, 20, 21, 33, 64] {
            let mut decoder = Wc98Decoder::new();
            let mut out = Vec::new();
            for chunk in bytes.chunks(chunk_size) {
                decoder.feed(chunk, &mut out);
            }
            assert_eq!(decoder.pending_bytes(), 0);
            decoder.finish().unwrap();
            assert_eq!(out, records, "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn decoder_finish_rejects_partial_record() {
        let bytes = encode_records(&[record(5)]);
        let mut decoder = Wc98Decoder::new();
        let mut out = Vec::new();
        decoder.feed(&bytes[..13], &mut out);
        assert!(out.is_empty());
        assert_eq!(decoder.pending_bytes(), 13);
        assert_eq!(
            decoder.finish().unwrap_err(),
            Wc98Error::TruncatedRecord { trailing_bytes: 13 }
        );
    }

    #[test]
    fn streaming_builder_matches_batch_conversion() {
        let mut records = Vec::new();
        for _ in 0..10 {
            records.push(record(500));
        }
        records.push(record(499)); // tolerated reordering
        for _ in 0..5 {
            records.push(record(505));
        }
        let bytes = encode_records(&records);
        let batch = parse_trace(&bytes, &Wc98Options::default()).unwrap();
        let mut builder = Wc98TraceBuilder::new(Wc98Options::default());
        for chunk in bytes.chunks(7) {
            builder.feed(chunk).unwrap();
        }
        assert_eq!(builder.records_seen(), records.len());
        assert_eq!(builder.finish().unwrap(), batch);
    }

    #[test]
    fn streaming_builder_rejects_bad_streams() {
        // Non-monotonic stream fails mid-feed with the global record index.
        let bytes = encode_records(&[record(100), record(10)]);
        let mut builder = Wc98TraceBuilder::new(Wc98Options::default());
        assert_eq!(
            builder.feed(&bytes).unwrap_err(),
            Wc98Error::NonMonotonic { at_record: 1 }
        );
        // Empty stream.
        assert_eq!(
            Wc98TraceBuilder::new(Wc98Options::default())
                .finish()
                .unwrap_err(),
            Wc98Error::Empty
        );
        // Trailing partial record.
        let mut builder = Wc98TraceBuilder::new(Wc98Options::default());
        builder.feed(&encode_records(&[record(1)])[..7]).unwrap();
        assert_eq!(
            builder.finish().unwrap_err(),
            Wc98Error::TruncatedRecord { trailing_bytes: 7 }
        );
    }

    #[test]
    fn forward_timestamp_jump_is_rejected_not_allocated() {
        // A corrupt record with a timestamp near u32::MAX must fail fast
        // instead of resizing the per-second counts to gigabytes.
        let bytes = encode_records(&[record(894_000_000), record(u32::MAX)]);
        let mut builder = Wc98TraceBuilder::new(Wc98Options::default());
        match builder.feed(&bytes) {
            Err(Wc98Error::TimestampGap {
                at_record: 1,
                gap_s,
            }) => {
                assert_eq!(gap_s, u32::MAX - 894_000_000);
            }
            other => panic!("expected TimestampGap, got {other:?}"),
        }
        // A gap inside the tolerance passes; one just past it fails.
        let gap = Wc98Options::default().max_gap_s;
        let ok = encode_records(&[record(1_000), record(1_000 + gap)]);
        assert!(Wc98TraceBuilder::new(Wc98Options::default())
            .feed(&ok)
            .is_ok());
        let bad = encode_records(&[record(1_000), record(1_000 + gap + 1)]);
        assert!(matches!(
            Wc98TraceBuilder::new(Wc98Options::default()).feed(&bad),
            Err(Wc98Error::TimestampGap { .. })
        ));
    }

    #[test]
    fn reader_streaming_end_to_end() {
        let records = vec![record(0), record(0), record(1)];
        let bytes = encode_records(&records);
        let from_reader = parse_trace_from_reader(
            bytes.as_slice(),
            &Wc98Options {
                rescale_peak_to: None,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(from_reader.rates, vec![2.0, 1.0]);

        // A reader that errors surfaces as Wc98Error::Io.
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        match parse_trace_from_reader(FailingReader, &Wc98Options::default()) {
            Err(Wc98Error::Io(msg)) => assert!(msg.contains("disk on fire")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn error_messages() {
        assert!(Wc98Error::Empty.to_string().contains("empty"));
        assert!(Wc98Error::TruncatedRecord { trailing_bytes: 3 }
            .to_string()
            .contains('3'));
        assert!(Wc98Error::NonMonotonic { at_record: 9 }
            .to_string()
            .contains('9'));
        assert!(Wc98Error::TimestampGap {
            at_record: 4,
            gap_s: 777
        }
        .to_string()
        .contains("777"));
    }
}
