//! Parser for the real 1998 World Cup access-log binary format.
//!
//! The trace the paper replays (days 6-92) is publicly distributed as
//! binary logs: fixed 20-byte big-endian records
//!
//! ```text
//! struct request {
//!     uint32 timestamp;  // seconds since epoch
//!     uint32 clientID;
//!     uint32 objectID;
//!     uint32 size;       // response bytes
//!     uint8  method;
//!     uint8  status;     // HTTP status + version bits
//!     uint8  type;       // file type
//!     uint8  server;     // region + server number
//! }
//! ```
//!
//! This module converts such logs into the per-second [`LoadTrace`] the
//! simulator consumes: requests are bucketed per second, and the rate may
//! be rescaled so that the trace's peak matches a target (the paper's
//! experiments size the peak for 4 Big machines). We cannot ship the
//! 30 GB trace itself, but with this parser the shipped experiments run
//! unchanged on the real data.

use bytes::Buf;

use crate::trace::LoadTrace;

/// Size of one binary record.
pub const RECORD_BYTES: usize = 20;

/// One decoded request record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wc98Record {
    /// Seconds since the Unix epoch.
    pub timestamp: u32,
    /// Anonymized client id.
    pub client_id: u32,
    /// Requested object id.
    pub object_id: u32,
    /// Response size in bytes.
    pub size: u32,
    /// HTTP method code.
    pub method: u8,
    /// HTTP status/version byte.
    pub status: u8,
    /// File type code.
    pub file_type: u8,
    /// Region/server byte.
    pub server: u8,
}

/// Errors decoding a WC98 binary log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wc98Error {
    /// The input length is not a multiple of the 20-byte record size.
    TruncatedRecord {
        /// Bytes left over after the last whole record.
        trailing_bytes: usize,
    },
    /// The log contained no records.
    Empty,
    /// Timestamps regressed by more than the tolerated reordering window.
    NonMonotonic {
        /// Index of the offending record.
        at_record: usize,
    },
}

impl std::fmt::Display for Wc98Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Wc98Error::TruncatedRecord { trailing_bytes } => {
                write!(f, "truncated WC98 log: {trailing_bytes} trailing bytes")
            }
            Wc98Error::Empty => write!(f, "empty WC98 log"),
            Wc98Error::NonMonotonic { at_record } => {
                write!(f, "timestamps regress too far at record {at_record}")
            }
        }
    }
}

impl std::error::Error for Wc98Error {}

/// Decode every record of a binary log slice.
pub fn parse_records(mut data: &[u8]) -> Result<Vec<Wc98Record>, Wc98Error> {
    if !data.len().is_multiple_of(RECORD_BYTES) {
        return Err(Wc98Error::TruncatedRecord {
            trailing_bytes: data.len() % RECORD_BYTES,
        });
    }
    let mut out = Vec::with_capacity(data.len() / RECORD_BYTES);
    while data.remaining() >= RECORD_BYTES {
        out.push(Wc98Record {
            timestamp: data.get_u32(),
            client_id: data.get_u32(),
            object_id: data.get_u32(),
            size: data.get_u32(),
            method: data.get_u8(),
            status: data.get_u8(),
            file_type: data.get_u8(),
            server: data.get_u8(),
        });
    }
    Ok(out)
}

/// Encode records back to the binary format (used by tests and by tools
/// that need to cut a trace slice).
pub fn encode_records(records: &[Wc98Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * RECORD_BYTES);
    for r in records {
        out.extend_from_slice(&r.timestamp.to_be_bytes());
        out.extend_from_slice(&r.client_id.to_be_bytes());
        out.extend_from_slice(&r.object_id.to_be_bytes());
        out.extend_from_slice(&r.size.to_be_bytes());
        out.push(r.method);
        out.push(r.status);
        out.push(r.file_type);
        out.push(r.server);
    }
    out
}

/// Conversion options from records to a [`LoadTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct Wc98Options {
    /// Label of the first day in the output trace.
    pub first_day: u32,
    /// Tolerated backwards jitter in record timestamps (the real logs are
    /// near-sorted; the distribution tools allow small reordering).
    pub reorder_tolerance_s: u32,
    /// If set, linearly rescale the per-second rates so the peak equals
    /// this value (the paper's metric is requests/s of *its* CGI workload,
    /// not raw WC98 hits/s, so experiments rescale the shape).
    pub rescale_peak_to: Option<f64>,
}

impl Default for Wc98Options {
    fn default() -> Self {
        Wc98Options {
            first_day: 6,
            reorder_tolerance_s: 2,
            rescale_peak_to: Some(5_200.0),
        }
    }
}

/// Bucket records into a per-second [`LoadTrace`].
///
/// The trace spans from the first record's timestamp to the last's;
/// seconds with no request get rate 0.
pub fn records_to_trace(
    records: &[Wc98Record],
    options: &Wc98Options,
) -> Result<LoadTrace, Wc98Error> {
    if records.is_empty() {
        return Err(Wc98Error::Empty);
    }
    let start = records[0].timestamp;
    let mut max_seen = start;
    for (i, r) in records.iter().enumerate() {
        if r.timestamp + options.reorder_tolerance_s < max_seen {
            return Err(Wc98Error::NonMonotonic { at_record: i });
        }
        max_seen = max_seen.max(r.timestamp);
    }
    let len = (max_seen - start + 1) as usize;
    let mut counts = vec![0.0f64; len];
    for r in records {
        let idx = r.timestamp.saturating_sub(start) as usize;
        counts[idx] += 1.0;
    }
    if let Some(target) = options.rescale_peak_to {
        let peak = counts.iter().copied().fold(0.0, f64::max);
        if peak > 0.0 {
            let factor = target / peak;
            for c in &mut counts {
                *c = (*c * factor).round();
            }
        }
    }
    Ok(LoadTrace::new(options.first_day, counts))
}

/// Parse a whole binary log into a trace in one call.
pub fn parse_trace(data: &[u8], options: &Wc98Options) -> Result<LoadTrace, Wc98Error> {
    records_to_trace(&parse_records(data)?, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u32) -> Wc98Record {
        Wc98Record {
            timestamp: ts,
            client_id: 42,
            object_id: 7,
            size: 1024,
            method: 0,
            status: 2,
            file_type: 1,
            server: 3,
        }
    }

    #[test]
    fn roundtrip_encode_parse() {
        let records = vec![record(100), record(100), record(103)];
        let bytes = encode_records(&records);
        assert_eq!(bytes.len(), 3 * RECORD_BYTES);
        let parsed = parse_records(&bytes).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn truncated_input_rejected() {
        let mut bytes = encode_records(&[record(1)]);
        bytes.pop();
        assert_eq!(
            parse_records(&bytes).unwrap_err(),
            Wc98Error::TruncatedRecord { trailing_bytes: 19 }
        );
    }

    #[test]
    fn bucketing_counts_per_second() {
        let records = vec![record(1_000), record(1_000), record(1_000), record(1_002)];
        let trace = records_to_trace(
            &records,
            &Wc98Options {
                rescale_peak_to: None,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(trace.rates, vec![3.0, 0.0, 1.0]);
        assert_eq!(trace.first_day, 6);
    }

    #[test]
    fn rescaling_hits_target_peak() {
        let records = vec![record(0), record(0), record(1)];
        let trace = records_to_trace(
            &records,
            &Wc98Options {
                rescale_peak_to: Some(5_200.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(trace.max(), 5_200.0);
        assert_eq!(trace.rates[1], 2_600.0);
    }

    #[test]
    fn small_reordering_tolerated_large_rejected() {
        let ok = vec![record(10), record(9), record(11)];
        assert!(records_to_trace(&ok, &Wc98Options::default()).is_ok());
        let bad = vec![record(100), record(10)];
        assert_eq!(
            records_to_trace(&bad, &Wc98Options::default()).unwrap_err(),
            Wc98Error::NonMonotonic { at_record: 1 }
        );
    }

    #[test]
    fn empty_log_rejected() {
        assert_eq!(
            records_to_trace(&[], &Wc98Options::default()).unwrap_err(),
            Wc98Error::Empty
        );
        assert_eq!(parse_records(&[]).unwrap(), vec![]);
    }

    #[test]
    fn parse_trace_end_to_end() {
        // A synthetic "day": bursts at second 0 and 5.
        let mut records = Vec::new();
        for _ in 0..10 {
            records.push(record(500));
        }
        for _ in 0..5 {
            records.push(record(505));
        }
        let bytes = encode_records(&records);
        let trace = parse_trace(
            &bytes,
            &Wc98Options {
                rescale_peak_to: None,
                first_day: 6,
                reorder_tolerance_s: 2,
            },
        )
        .unwrap();
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.get(0), 10.0);
        assert_eq!(trace.get(5), 5.0);
        // And the simulator input path accepts it (smoke).
        assert_eq!(trace.daily_max(), vec![10.0]);
    }

    #[test]
    fn error_messages() {
        assert!(Wc98Error::Empty.to_string().contains("empty"));
        assert!(Wc98Error::TruncatedRecord { trailing_bytes: 3 }
            .to_string()
            .contains('3'));
        assert!(Wc98Error::NonMonotonic { at_record: 9 }
            .to_string()
            .contains('9'));
    }
}
