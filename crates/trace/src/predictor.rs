//! Load predictors (paper Sec. III "knowledge of how load evolves" and
//! Sec. V-C's emulated prediction mechanism).
//!
//! The paper emulates a *perfect* windowed prediction: "the maximum load
//! value over a window of 378 seconds" of the real future trace
//! ([`LookaheadMaxPredictor`]). The other predictors model the paper's
//! load-knowledge classes: [`OraclePredictor`] (perfect instantaneous
//! knowledge, used by the theoretical lower bound), [`LastValuePredictor`]
//! (a purely reactive system with unknown load), [`EwmaPredictor`]
//! (partial knowledge, smoothed), and [`NoisyPredictor`] which injects
//! controlled error into any base predictor — the paper's announced
//! future work on "the impact of load prediction errors".
//!
//! Noise injection is **counter-based**: the error factor of second `t`
//! is a pure function of `(seed, t / resample_s)` through the
//! [`bml_core::rng`] PRF, resampled once per `resample_s`-second window
//! rather than once per consulted second. A noisy wrapper around a
//! segmented base predictor is therefore itself piecewise-constant with
//! known change-points, and noisy runs stay on the event-driven replay
//! engine.

use crate::trace::LoadTrace;
use crate::window::LookaheadMaxTable;

/// A load predictor consulted by the scheduler once per decision step.
pub trait Predictor {
    /// Predicted load the infrastructure must be able to serve from `now`.
    fn predict(&mut self, now: u64) -> f64;
    /// Short identifier for reports.
    fn name(&self) -> &'static str;

    /// `true` when the prediction is a pure piecewise-constant function of
    /// time and [`Predictor::next_change`] bounds its constant runs. Only
    /// such predictors can drive the event-driven replay engine; stateful
    /// predictors whose value depends on the query history (EWMA,
    /// last-value) must be polled every second and return `false` (the
    /// default).
    fn is_segmented(&self) -> bool {
        false
    }

    /// For segmented predictors: a `t' > now` such that `predict` is
    /// constant over `[now, t')`, or `None` when the prediction holds for
    /// the rest of the trace. Exact predictors report their change-points
    /// tightly (`predict(t') != predict(now)`); wrappers may be
    /// conservative and report a boundary where the value happens not to
    /// change (e.g. a noise-resample point) — callers may only rely on
    /// constancy *before* `t'`. The default (for non-segmented
    /// predictors) is `None`, which callers must not interpret without
    /// checking [`Predictor::is_segmented`].
    fn next_change(&self, now: u64) -> Option<u64> {
        let _ = now;
        None
    }
}

/// The paper's emulated prediction: maximum of the *actual future* load
/// over a look-ahead window (378 s = 2x the longest switch-on duration in
/// the paper's hardware).
#[derive(Debug, Clone)]
pub struct LookaheadMaxPredictor {
    table: LookaheadMaxTable,
}

impl LookaheadMaxPredictor {
    /// Precompute the windowed maxima for `trace` (O(n)).
    pub fn new(trace: &LoadTrace, horizon: u64) -> Self {
        LookaheadMaxPredictor {
            table: LookaheadMaxTable::new(&trace.rates, horizon),
        }
    }

    /// The look-ahead horizon in seconds.
    pub fn horizon(&self) -> u64 {
        self.table.horizon()
    }
}

impl Predictor for LookaheadMaxPredictor {
    fn predict(&mut self, now: u64) -> f64 {
        self.table.max_from(now)
    }
    fn name(&self) -> &'static str {
        "lookahead-max"
    }
    fn is_segmented(&self) -> bool {
        true
    }
    fn next_change(&self, now: u64) -> Option<u64> {
        self.table.next_change(now)
    }
}

/// Perfect instantaneous knowledge: predicts exactly the current load.
/// Dimensioning every second with this oracle and zero switching costs is
/// the paper's `LowerBound Theoretical`.
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    rates: Vec<f64>,
}

impl OraclePredictor {
    /// Wrap a trace.
    pub fn new(trace: &LoadTrace) -> Self {
        OraclePredictor {
            rates: trace.rates.clone(),
        }
    }
}

impl Predictor for OraclePredictor {
    fn predict(&mut self, now: u64) -> f64 {
        self.rates.get(now as usize).copied().unwrap_or(0.0)
    }
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn is_segmented(&self) -> bool {
        true
    }
    fn next_change(&self, now: u64) -> Option<u64> {
        let n = self.rates.len() as u64;
        if now >= n {
            return None; // 0 forever past the trace
        }
        let end = crate::segments::run_end(&self.rates, now);
        if end < n {
            Some(end)
        } else if self.rates[now as usize] != 0.0 {
            Some(n) // drops to 0 when the trace runs out
        } else {
            None
        }
    }
}

/// Purely reactive baseline for the "unknown load" class: predicts the
/// last *observed* value (the load one step before `now`).
#[derive(Debug, Clone)]
pub struct LastValuePredictor {
    rates: Vec<f64>,
}

impl LastValuePredictor {
    /// Wrap a trace.
    pub fn new(trace: &LoadTrace) -> Self {
        LastValuePredictor {
            rates: trace.rates.clone(),
        }
    }
}

impl Predictor for LastValuePredictor {
    fn predict(&mut self, now: u64) -> f64 {
        if now == 0 {
            return 0.0;
        }
        self.rates.get(now as usize - 1).copied().unwrap_or(0.0)
    }
    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Exponentially weighted moving average over the observed past:
/// `state = alpha * observation + (1 - alpha) * state`.
///
/// Robust to non-consecutive queries (the scheduler skips steps while a
/// reconfiguration is in flight): all samples between the previous and the
/// current query are folded in.
#[derive(Debug, Clone)]
pub struct EwmaPredictor {
    rates: Vec<f64>,
    alpha: f64,
    state: f64,
    next_sample: u64,
}

impl EwmaPredictor {
    /// `alpha` in `(0, 1]`: weight of the newest observation.
    pub fn new(trace: &LoadTrace, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaPredictor {
            rates: trace.rates.clone(),
            alpha,
            state: 0.0,
            next_sample: 0,
        }
    }
}

impl Predictor for EwmaPredictor {
    fn predict(&mut self, now: u64) -> f64 {
        // Fold every observation up to and including `now`.
        let end = (now + 1).min(self.rates.len() as u64);
        while self.next_sample < end {
            let obs = self.rates[self.next_sample as usize];
            self.state = self.alpha * obs + (1.0 - self.alpha) * self.state;
            self.next_sample += 1;
        }
        self.state
    }
    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Error-injection wrapper: multiplies the base prediction by `1 + e`
/// where `e ~ N(0, sigma)` truncated to `[-3 sigma, 3 sigma]`; results are
/// clamped at 0.
///
/// The error is **counter-based** and piecewise-constant: second `t`
/// belongs to resample window `t / resample_s`, and the window's gaussian
/// comes from the PRF stream `bml_core::rng::mix(seed, window)` — a pure
/// function of the seed and the window index, never of how often the
/// predictor was consulted. This keeps the paper's once-per-window
/// resampling semantics (the prediction mechanism re-estimates once per
/// look-ahead window, not per second) while making noisy runs
/// segmentable: [`Predictor::next_change`] reports the union of the inner
/// predictor's change-points and the noise-resample points, so the
/// event-driven replay engine skips noisy stretches exactly like clean
/// ones. Deterministic given the seed, identical across stepping modes
/// and thread counts.
pub struct NoisyPredictor<P: Predictor> {
    inner: P,
    sigma: f64,
    seed: u64,
    resample_s: u64,
}

/// Default noise-resample window: the paper's 378 s look-ahead window
/// (2x the longest switch-on duration of the Table I hardware).
pub const DEFAULT_NOISE_RESAMPLE_S: u64 = 378;

impl<P: Predictor> NoisyPredictor<P> {
    /// Wrap `inner`, injecting relative gaussian error of std-dev `sigma`
    /// resampled once per [`DEFAULT_NOISE_RESAMPLE_S`]-second window.
    pub fn new(inner: P, sigma: f64, seed: u64) -> Self {
        Self::with_resample(inner, sigma, seed, DEFAULT_NOISE_RESAMPLE_S)
    }

    /// Wrap `inner` with an explicit resample window (clamped to `>= 1`;
    /// 1 draws a fresh error every second, like the historical
    /// sequential-RNG wrapper).
    pub fn with_resample(inner: P, sigma: f64, seed: u64, resample_s: u64) -> Self {
        assert!(sigma >= 0.0);
        NoisyPredictor {
            inner,
            sigma,
            seed,
            resample_s: resample_s.max(1),
        }
    }

    /// The multiplicative error factor of the resample window covering
    /// `now` — a pure function of `(seed, now / resample_s)`.
    fn factor(&self, now: u64) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let window = now / self.resample_s;
        1.0 + self.sigma * bml_core::rng::truncated_gaussian(bml_core::rng::mix(self.seed, window))
    }
}

impl<P: Predictor> Predictor for NoisyPredictor<P> {
    fn predict(&mut self, now: u64) -> f64 {
        let base = self.inner.predict(now);
        (base * self.factor(now)).max(0.0)
    }
    fn name(&self) -> &'static str {
        "noisy"
    }
    fn is_segmented(&self) -> bool {
        // The noise factor is piecewise-constant by construction; the
        // wrapper is segmented iff the base prediction is.
        self.inner.is_segmented()
    }
    fn next_change(&self, now: u64) -> Option<u64> {
        if !self.inner.is_segmented() {
            return None;
        }
        let inner = self.inner.next_change(now);
        if self.sigma == 0.0 {
            return inner; // transparent wrapper
        }
        // Inner change-points ∪ noise-resample points. Conservative by
        // design: the value may coincide across a boundary, but it is
        // guaranteed constant before it. A resample boundary is reported
        // even past the inner predictor's last change (the factor keeps
        // changing as long as the prediction is consulted).
        let resample = (now / self.resample_s + 1) * self.resample_s;
        Some(inner.map_or(resample, |i| i.min(resample)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> LoadTrace {
        LoadTrace::new(0, vec![10.0, 50.0, 20.0, 80.0, 5.0, 5.0])
    }

    #[test]
    fn lookahead_max_matches_window() {
        let t = trace();
        let mut p = LookaheadMaxPredictor::new(&t, 3);
        assert_eq!(p.predict(0), 50.0); // max(10,50,20)
        assert_eq!(p.predict(1), 80.0); // max(50,20,80)
        assert_eq!(p.predict(3), 80.0);
        assert_eq!(p.predict(4), 5.0);
        assert_eq!(p.predict(100), 0.0);
        assert_eq!(p.horizon(), 3);
        assert_eq!(p.name(), "lookahead-max");
    }

    #[test]
    fn lookahead_max_change_points_are_exact() {
        let t = trace();
        let mut p = LookaheadMaxPredictor::new(&t, 3);
        assert!(p.is_segmented());
        // Walk the change-points; between them the prediction is constant.
        let mut now = 0;
        while let Some(next) = p.next_change(now) {
            let v = p.predict(now);
            for s in now..next {
                assert_eq!(p.predict(s), v, "changed inside [{now}, {next})");
            }
            assert_ne!(p.predict(next), v, "no change at {next}");
            now = next;
        }
        assert!(now < t.len(), "last segment extends to the end");
    }

    #[test]
    fn oracle_change_points_follow_raw_runs() {
        let t = LoadTrace::new(0, vec![5.0, 5.0, 2.0, 2.0, 2.0]);
        let mut p = OraclePredictor::new(&t);
        assert!(p.is_segmented());
        assert_eq!(p.next_change(0), Some(2));
        assert_eq!(p.next_change(2), Some(5)); // non-zero tail drops to 0
        assert_eq!(p.next_change(5), None);
        assert_eq!(p.predict(5), 0.0);
        // A zero tail never changes again.
        let z = LoadTrace::new(0, vec![1.0, 0.0]);
        let pz = OraclePredictor::new(&z);
        assert_eq!(pz.next_change(1), None);
    }

    #[test]
    fn default_predictors_are_not_segmented() {
        let t = trace();
        assert!(!EwmaPredictor::new(&t, 0.5).is_segmented());
        assert!(!LastValuePredictor::new(&t).is_segmented());
        assert_eq!(EwmaPredictor::new(&t, 0.5).next_change(0), None);
        // A noisy wrapper inherits segmentation from its base: stateful
        // bases stay per-second, segmented bases stay event-drivable.
        let noisy_ewma = NoisyPredictor::new(EwmaPredictor::new(&t, 0.5), 0.1, 1);
        assert!(!noisy_ewma.is_segmented());
        assert_eq!(noisy_ewma.next_change(0), None);
        assert!(NoisyPredictor::new(OraclePredictor::new(&t), 0.1, 1).is_segmented());
    }

    #[test]
    fn oracle_is_identity() {
        let t = trace();
        let mut p = OraclePredictor::new(&t);
        for (i, &r) in t.rates.iter().enumerate() {
            assert_eq!(p.predict(i as u64), r);
        }
        assert_eq!(p.predict(99), 0.0);
    }

    #[test]
    fn last_value_lags_by_one() {
        let t = trace();
        let mut p = LastValuePredictor::new(&t);
        assert_eq!(p.predict(0), 0.0);
        assert_eq!(p.predict(1), 10.0);
        assert_eq!(p.predict(4), 80.0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let t = LoadTrace::new(0, vec![100.0; 500]);
        let mut p = EwmaPredictor::new(&t, 0.05);
        let v = p.predict(499);
        assert!((v - 100.0).abs() < 1.0, "ewma {v}");
    }

    #[test]
    fn ewma_handles_skipped_steps() {
        let t = trace();
        let mut a = EwmaPredictor::new(&t, 0.5);
        let mut b = EwmaPredictor::new(&t, 0.5);
        // a queried every step, b only at the end: same folded state.
        let mut last = 0.0;
        for i in 0..6 {
            last = a.predict(i);
        }
        assert_eq!(b.predict(5), last);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = EwmaPredictor::new(&trace(), 0.0);
    }

    #[test]
    fn noisy_zero_sigma_is_transparent() {
        let t = trace();
        let mut p = NoisyPredictor::new(OraclePredictor::new(&t), 0.0, 1);
        assert_eq!(p.predict(3), 80.0);
    }

    #[test]
    fn noisy_is_deterministic_per_seed() {
        let t = trace();
        let mut p1 = NoisyPredictor::new(OraclePredictor::new(&t), 0.2, 42);
        let mut p2 = NoisyPredictor::new(OraclePredictor::new(&t), 0.2, 42);
        for i in 0..6 {
            assert_eq!(p1.predict(i), p2.predict(i));
        }
    }

    #[test]
    fn noisy_stays_nonnegative_and_bounded() {
        let t = LoadTrace::new(0, vec![100.0; 1000]);
        let mut p = NoisyPredictor::new(OraclePredictor::new(&t), 0.3, 7);
        for i in 0..1000 {
            let v = p.predict(i);
            assert!(v >= 0.0);
            // Truncated at 3 sigma: 100 * (1 ± 0.9).
            assert!(v <= 190.0 + 1e-9, "prediction {v}");
        }
    }

    #[test]
    fn noisy_error_distribution_sane() {
        let t = LoadTrace::new(0, vec![100.0; 5000]);
        // resample_s = 1 draws an i.i.d. error every second, so 5000
        // consultations are 5000 independent samples.
        let mut p = NoisyPredictor::with_resample(OraclePredictor::new(&t), 0.1, 9, 1);
        let preds: Vec<f64> = (0..5000).map(|i| p.predict(i)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
        let var = preds.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / preds.len() as f64;
        let sd = var.sqrt();
        assert!((sd - 10.0).abs() < 2.0, "sd {sd}");
    }

    #[test]
    fn noisy_factor_is_constant_within_a_resample_window() {
        let t = LoadTrace::new(0, vec![100.0; 2000]);
        let mut p = NoisyPredictor::with_resample(OraclePredictor::new(&t), 0.2, 11, 378);
        let mut distinct = 0u32;
        let mut prev = f64::NAN;
        for w in 0..5u64 {
            let first = p.predict(w * 378);
            for off in 1..378 {
                assert_eq!(p.predict(w * 378 + off), first, "window {w} offset {off}");
            }
            if first != prev {
                distinct += 1;
            }
            prev = first;
        }
        assert!(
            distinct >= 4,
            "windows should resample: {distinct} distinct"
        );
    }

    #[test]
    fn noisy_is_a_pure_function_of_time() {
        // Counter-based: querying out of order, twice, or skipping ahead
        // never changes any sample — the property the event-driven engine
        // relies on to skip seconds.
        let t = LoadTrace::new(0, vec![100.0; 2000]);
        let mut fwd = NoisyPredictor::with_resample(OraclePredictor::new(&t), 0.2, 3, 10);
        let mut rev = NoisyPredictor::with_resample(OraclePredictor::new(&t), 0.2, 3, 10);
        let forward: Vec<f64> = (0..2000).map(|i| fwd.predict(i)).collect();
        for i in (0..2000u64).rev() {
            assert_eq!(rev.predict(i), forward[i as usize]);
        }
    }

    #[test]
    fn noisy_next_change_unions_inner_and_resample_points() {
        let t = trace(); // raw runs change at every second up to 4, then constant
        let inner = OraclePredictor::new(&t);
        let p = NoisyPredictor::with_resample(inner, 0.2, 1, 4);
        // Inner change at 1 beats the resample boundary at 4.
        assert_eq!(p.next_change(0), Some(1));
        // Inner drop-to-zero at the trace end (6) beats the boundary at 8.
        assert_eq!(p.next_change(4), Some(6));
        // Past the trace the inner is exhausted (None) but the resample
        // boundaries keep coming.
        assert_eq!(p.next_change(9), Some(12));
        // sigma = 0 is transparent: inner change-points only.
        let clean = NoisyPredictor::with_resample(OraclePredictor::new(&t), 0.0, 1, 4);
        assert_eq!(clean.next_change(9), None);
    }
}
