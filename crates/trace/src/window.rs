//! Sliding-window maximum over a trace, precomputed with a monotonic
//! deque in O(n).
//!
//! The paper's prediction is "the maximum load value over a window of 378
//! seconds" ahead of the current time. Evaluating that naively for every
//! second of an 87-day trace costs `O(n * w)` (~2.8 billion comparisons);
//! the classic monotonic-deque scan computes every window in one O(n)
//! backward pass, after which lookups are O(1).

use std::collections::VecDeque;

/// Precomputed look-ahead window maxima: `max(rates[t .. t + horizon])`
/// for every `t`, windows clamped at the end of the trace.
#[derive(Debug, Clone)]
pub struct LookaheadMaxTable {
    horizon: u64,
    maxima: Vec<f64>,
}

impl LookaheadMaxTable {
    /// Build the table for the given look-ahead `horizon` (seconds).
    ///
    /// `horizon == 0` is treated as 1 (the window always includes the
    /// current second).
    pub fn new(rates: &[f64], horizon: u64) -> Self {
        let horizon = horizon.max(1);
        let n = rates.len();
        let mut maxima = vec![0.0f64; n];
        // Backward scan: deque holds indices of a decreasing subsequence of
        // rates within the current window [t, t + horizon).
        let mut deque: VecDeque<usize> = VecDeque::new();
        for t in (0..n).rev() {
            // Evict indices that fell out of the window.
            while let Some(&back) = deque.front() {
                if back >= t + horizon as usize {
                    deque.pop_front();
                } else {
                    break;
                }
            }
            // Maintain decreasing order: the new element kills smaller ones.
            while let Some(&last) = deque.back() {
                if rates[last] <= rates[t] {
                    deque.pop_back();
                } else {
                    break;
                }
            }
            deque.push_back(t);
            maxima[t] = rates[*deque.front().expect("deque never empty here")];
        }
        LookaheadMaxTable { horizon, maxima }
    }

    /// The look-ahead horizon this table was built for.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// `max(rates[t .. t + horizon])`, or 0 past the end of the trace.
    #[inline]
    pub fn max_from(&self, t: u64) -> f64 {
        self.maxima.get(t as usize).copied().unwrap_or(0.0)
    }

    /// Next change-point of the prediction after `t`: the smallest
    /// `t' > t` with `max_from(t') != max_from(t)`, or `None` when the
    /// value holds for the rest of the table. O(run length), amortized
    /// O(n) over a monotone forward replay.
    pub fn next_change(&self, t: u64) -> Option<u64> {
        if t as usize >= self.maxima.len() {
            return None;
        }
        let end = crate::segments::run_end(&self.maxima, t);
        ((end as usize) < self.maxima.len()).then_some(end)
    }

    /// Iterate the maximal runs of constant predicted load — the
    /// decision-relevant segments of the event-driven replay engine.
    pub fn segments(&self) -> crate::segments::ConstantRuns<'_> {
        crate::segments::constant_runs(&self.maxima)
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.maxima.len()
    }

    /// `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.maxima.is_empty()
    }
}

/// Naive reference implementation, used by tests and property checks.
pub fn naive_lookahead_max(rates: &[f64], t: u64, horizon: u64) -> f64 {
    let horizon = horizon.max(1);
    let from = (t as usize).min(rates.len());
    let to = ((t + horizon) as usize).min(rates.len());
    rates[from..to].iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_on_small_input() {
        let rates = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for horizon in 1..=10u64 {
            let table = LookaheadMaxTable::new(&rates, horizon);
            for t in 0..rates.len() as u64 {
                assert_eq!(
                    table.max_from(t),
                    naive_lookahead_max(&rates, t, horizon),
                    "t={t} horizon={horizon}"
                );
            }
        }
    }

    #[test]
    fn horizon_one_is_identity() {
        let rates = [3.0, 1.0, 4.0];
        let table = LookaheadMaxTable::new(&rates, 1);
        for (t, &r) in rates.iter().enumerate() {
            assert_eq!(table.max_from(t as u64), r);
        }
    }

    #[test]
    fn horizon_zero_treated_as_one() {
        let rates = [3.0, 1.0];
        let table = LookaheadMaxTable::new(&rates, 0);
        assert_eq!(table.horizon(), 1);
        assert_eq!(table.max_from(1), 1.0);
    }

    #[test]
    fn out_of_range_is_zero() {
        let table = LookaheadMaxTable::new(&[1.0], 5);
        assert_eq!(table.max_from(10), 0.0);
    }

    #[test]
    fn empty_input() {
        let table = LookaheadMaxTable::new(&[], 5);
        assert!(table.is_empty());
        assert_eq!(table.max_from(0), 0.0);
    }

    #[test]
    fn window_clamps_at_end() {
        let rates = [1.0, 2.0, 3.0];
        let table = LookaheadMaxTable::new(&rates, 100);
        assert_eq!(table.max_from(0), 3.0);
        assert_eq!(table.max_from(2), 3.0);
    }

    #[test]
    fn monotone_decreasing_input() {
        let rates: Vec<f64> = (0..100).rev().map(|x| x as f64).collect();
        let table = LookaheadMaxTable::new(&rates, 10);
        for t in 0..100u64 {
            assert_eq!(table.max_from(t), rates[t as usize]);
        }
    }

    #[test]
    fn segments_partition_and_next_change_agrees() {
        let rates = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let table = LookaheadMaxTable::new(&rates, 3);
        let segs: Vec<_> = table.segments().collect();
        // Segments partition [0, n) and carry the window-max values.
        assert_eq!(segs.first().unwrap().start, 0);
        assert_eq!(segs.last().unwrap().end, rates.len() as u64);
        for s in &segs {
            for t in s.start..s.end {
                assert_eq!(table.max_from(t), s.value);
            }
        }
        // next_change hops exactly along segment boundaries.
        let mut t = 0;
        for s in &segs {
            assert_eq!(s.start, t);
            match table.next_change(t) {
                Some(next) => {
                    assert_eq!(next, s.end);
                    t = next;
                }
                None => assert_eq!(s.end, rates.len() as u64),
            }
        }
        assert_eq!(table.next_change(100), None);
    }

    #[test]
    fn large_random_like_input_matches_naive() {
        // Deterministic pseudo-random data without pulling in rand here.
        let mut x = 123456789u64;
        let rates: Vec<f64> = (0..5000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as f64 / 1e6
            })
            .collect();
        let table = LookaheadMaxTable::new(&rates, 378);
        for t in (0..5000u64).step_by(37) {
            assert_eq!(table.max_from(t), naive_lookahead_max(&rates, t, 378));
        }
    }
}
