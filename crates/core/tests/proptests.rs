//! Property-based tests for the BML core invariants.

use bml_core::candidates::{bml_candidates, filter_candidates};
use bml_core::combination::{config_power, ideal_fill, optimal_dp, SplitPolicy};
use bml_core::crossing::compute_thresholds;
use bml_core::prelude::*;
use bml_core::profile::{stack_nodes, stack_power};
use proptest::prelude::*;

/// Strategy: a random valid architecture profile.
fn arb_profile() -> impl Strategy<Value = ArchProfile> {
    (
        1.0f64..200.0,   // idle
        1.0f64..300.0,   // dynamic range above idle
        1.0f64..2000.0,  // max_perf
        0.0f64..300.0,   // on duration
        0.0f64..30000.0, // on energy
        0.0f64..60.0,    // off duration
        0.0f64..2000.0,  // off energy
    )
        .prop_map(|(idle, range, mp, ont, one, offt, offe)| {
            ArchProfile::new(
                "p",
                idle,
                idle + range,
                mp.round().max(1.0),
                ont,
                one,
                offt,
                offe,
            )
            .expect("constructed within valid ranges")
        })
}

/// Strategy: 2-5 random profiles with distinct names.
fn arb_profiles() -> impl Strategy<Value = Vec<ArchProfile>> {
    proptest::collection::vec(arb_profile(), 2..=5).prop_map(|mut v| {
        for (i, p) in v.iter_mut().enumerate() {
            p.name = format!("arch{i}");
        }
        v
    })
}

proptest! {
    #[test]
    fn power_model_within_idle_max(p in arb_profile(), rate in -10.0f64..3000.0) {
        let w = p.power_at(rate);
        prop_assert!(w >= p.idle_power - 1e-9);
        prop_assert!(w <= p.max_power + 1e-9);
    }

    #[test]
    fn power_model_monotone(p in arb_profile(), a in 0.0f64..2000.0, b in 0.0f64..2000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(p.power_at(lo) <= p.power_at(hi) + 1e-9);
    }

    #[test]
    fn stack_power_covers_and_grows(p in arb_profile(), rate in 0.1f64..5000.0) {
        let n = stack_nodes(&p, rate);
        prop_assert!(f64::from(n) * p.max_perf + 1e-9 >= rate);
        // One fewer node would not suffice.
        if n > 1 {
            prop_assert!(f64::from(n - 1) * p.max_perf < rate);
        }
        prop_assert!(stack_power(&p, rate) >= f64::from(n) * p.idle_power - 1e-9);
    }

    #[test]
    fn candidate_filter_is_dominance_free(profiles in arb_profiles()) {
        let set = filter_candidates(&profiles).unwrap();
        // Survivors sorted by decreasing perf, strictly decreasing power.
        for w in set.kept.windows(2) {
            prop_assert!(w[0].max_perf >= w[1].max_perf);
            prop_assert!(w[0].max_power > w[1].max_power);
        }
        // No survivor dominated by any other survivor.
        for a in &set.kept {
            for b in &set.kept {
                if a.name != b.name {
                    prop_assert!(!a.is_dominated_by(b));
                }
            }
        }
        // Nothing lost: kept + removed == input.
        prop_assert_eq!(set.kept.len() + set.removed.len(), profiles.len());
    }

    #[test]
    fn thresholds_within_bounds(profiles in arb_profiles()) {
        if let Ok(set) = bml_candidates(&profiles) {
            let t = compute_thresholds(&set.kept);
            prop_assert_eq!(t.len(), set.kept.len());
            let n = set.kept.len();
            prop_assert_eq!(t[n - 1].rate, 1.0);
            for (th, p) in t.iter().zip(&set.kept) {
                prop_assert!(th.rate >= 1.0);
                // A threshold never exceeds the architecture's own capacity
                // (forced thresholds use the smaller arch's capacity, which
                // is smaller still).
                prop_assert!(th.rate <= p.max_perf + 1e-9);
            }
        }
    }

    #[test]
    fn ideal_fill_covers_demand(profiles in arb_profiles(), rate in 0.0f64..10000.0) {
        if let Ok(set) = bml_candidates(&profiles) {
            let rates: Vec<f64> = compute_thresholds(&set.kept).iter().map(|t| t.rate).collect();
            let combo = ideal_fill(&set.kept, &rates, rate);
            prop_assert!(combo.assigned_rate(&set.kept) + 1e-6 >= rate);
            prop_assert!(combo.capacity(&set.kept) + 1e-6 >= rate);
            // No partial node ever exceeds its architecture's max_perf.
            for a in &combo.allocs {
                if let Some(r) = a.partial_rate {
                    prop_assert!(r <= set.kept[a.arch].max_perf + 1e-9);
                    prop_assert!(r > 0.0);
                }
            }
        }
    }

    #[test]
    fn ideal_fill_power_not_absurd(profiles in arb_profiles(), rate in 1.0f64..10000.0) {
        if let Ok(set) = bml_candidates(&profiles) {
            let rates: Vec<f64> = compute_thresholds(&set.kept).iter().map(|t| t.rate).collect();
            let combo = ideal_fill(&set.kept, &rates, rate);
            let w = combo.power(&set.kept);
            prop_assert!(w > 0.0);
            // Structural bounds: the combination draws at least the idle
            // power of every node it powers on, and at most their summed
            // peak power.
            let idle_sum: f64 = combo.allocs.iter()
                .map(|a| f64::from(a.nodes()) * set.kept[a.arch].idle_power)
                .sum();
            let peak_sum: f64 = combo.allocs.iter()
                .map(|a| f64::from(a.nodes()) * set.kept[a.arch].max_power)
                .sum();
            prop_assert!(w + 1e-9 >= idle_sum);
            prop_assert!(w <= peak_sum + 1e-9);
        }
    }

    #[test]
    fn combination_table_equals_direct_fill(
        profiles in arb_profiles(),
        rates in proptest::collection::vec(0.0f64..10000.0, 1..40),
    ) {
        if let Ok(set) = bml_candidates(&profiles) {
            let bml = BmlInfrastructure::from_candidates(set.kept.clone()).unwrap();
            let table = bml.combination_table();
            for &rate in &rates {
                let direct = bml.ideal_combination_direct(rate);
                let looked = table.lookup(rate);
                prop_assert_eq!(&looked, &direct, "lookup != direct at rate {}", rate);
                prop_assert_eq!(
                    table.counts_for(rate),
                    direct.counts(bml.n_archs()),
                    "counts diverge at rate {}", rate
                );
                prop_assert!(
                    (table.power_for(rate) - direct.power(bml.candidates())).abs() < 1e-6,
                    "power diverges at rate {}", rate
                );
                prop_assert!(
                    table.counts_match(rate, &direct.counts(bml.n_archs())),
                    "counts_match rejects the direct counts at rate {}", rate
                );
            }
        }
    }

    #[test]
    fn combination_table_integer_rates_equal_direct(
        profiles in arb_profiles(),
        rate in 0u64..10000,
    ) {
        // Integer rates land exactly on the table's segment boundaries —
        // the adversarial case for the breakpoint construction.
        if let Ok(set) = bml_candidates(&profiles) {
            let bml = BmlInfrastructure::from_candidates(set.kept.clone()).unwrap();
            let direct = bml.ideal_combination_direct(rate as f64);
            prop_assert_eq!(bml.combination_table().lookup(rate as f64), direct);
        }
    }

    #[test]
    fn scheduler_fast_path_matches_full_recompute(
        loads in proptest::collection::vec(0.0f64..6000.0, 1..100)
    ) {
        // The scheduler's allocation-free counts_match no-change test must
        // agree with rebuilding the target configuration from scratch.
        let bml = BmlInfrastructure::build(&bml_core::catalog::table1()).unwrap();
        for &l in &loads {
            let counts = bml.ideal_combination_direct(l).counts(bml.n_archs());
            prop_assert!(bml.combination_table().counts_match(l, &counts));
        }
    }

    #[test]
    fn dp_lower_bounds_greedy(rate in 1u64..3000) {
        let trio = bml_core::catalog::paper_bml_trio();
        let rates: Vec<f64> = compute_thresholds(&trio).iter().map(|t| t.rate).collect();
        let greedy = ideal_fill(&trio, &rates, rate as f64).power(&trio);
        let (dp, counts) = optimal_dp(&trio, rate);
        prop_assert!(dp <= greedy + 1e-9);
        // DP's chosen machines can actually serve the rate.
        let cap: f64 = trio.iter().zip(&counts).map(|(p, &c)| f64::from(c) * p.max_perf).sum();
        prop_assert!(cap + 1e-9 >= rate as f64);
    }

    #[test]
    fn config_power_split_policies_agree_on_homogeneous(
        nodes in 1u32..20, load in 0.0f64..30000.0
    ) {
        let p = vec![bml_core::catalog::paravance()];
        let counts = vec![nodes];
        let (g, sg) = config_power(&p, &counts, load, SplitPolicy::EfficiencyGreedy);
        let (q, sq) = config_power(&p, &counts, load, SplitPolicy::ProportionalToCapacity);
        prop_assert!((g - q).abs() < 1e-6);
        prop_assert!((sg - sq).abs() < 1e-9);
    }

    #[test]
    fn scheduler_lock_invariant(loads in proptest::collection::vec(0.0f64..6000.0, 1..200)) {
        let bml = BmlInfrastructure::build(&bml_core::catalog::table1()).unwrap();
        let mut s = ProActiveScheduler::new(bml.n_archs());
        let mut locked_until: Option<u64> = None;
        for (t, &l) in loads.iter().enumerate() {
            let t = t as u64;
            match s.decide(t, l, &bml) {
                Decision::Locked { until } => {
                    prop_assert!(t < until);
                    prop_assert_eq!(Some(until), locked_until);
                }
                Decision::Reconfigure(plan) => {
                    if let Some(u) = locked_until {
                        prop_assert!(t >= u);
                    }
                    prop_assert!(plan.duration >= 0.0);
                    prop_assert!(plan.energy >= 0.0);
                    prop_assert!(!plan.switch_on.is_empty() || !plan.switch_off.is_empty());
                    locked_until = s.busy_until();
                }
                Decision::NoChange => {
                    if let Some(u) = locked_until {
                        prop_assert!(t >= u);
                    }
                }
            }
        }
    }

    #[test]
    fn reconfig_plan_roundtrip(from in proptest::collection::vec(0u32..5, 3),
                               to in proptest::collection::vec(0u32..5, 3)) {
        let trio = bml_core::catalog::paper_bml_trio();
        let f = Configuration(from.clone());
        let t = Configuration(to.clone());
        match bml_core::reconfig::plan_reconfiguration(&trio, &f, &t) {
            None => prop_assert_eq!(from, to),
            Some(plan) => {
                prop_assert_ne!(&from, &to);
                // Applying the plan to `from` yields `to`.
                let mut cur = from.clone();
                for (k, c) in plan.switch_on {
                    cur[k] += c;
                }
                for (k, c) in plan.switch_off {
                    cur[k] -= c;
                }
                prop_assert_eq!(cur, to);
            }
        }
    }
}
