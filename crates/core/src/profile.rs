//! Architecture profiles (paper Section IV, Step 1).
//!
//! A profile captures everything the BML methodology needs to know about one
//! machine type, obtained by profiling the target application on it:
//! idle/max power, maximum sustainable performance rate (in units of the
//! application metric, e.g. requests per second), and the duration/energy of
//! switch-on and switch-off transitions (paper Table I).
//!
//! Power between idle and max is modelled as *linear in the performance
//! rate*, exactly as the paper assumes ("We make the assumption of linear
//! power consumption", Sec. IV-A, citing Rivoire et al. for the error this
//! may introduce).

use serde::{Deserialize, Serialize};

use crate::errors::BmlError;

/// Performance/power/transition profile of one machine architecture.
///
/// All power values are Watts, energies Joules, durations seconds and
/// performance rates are expressed in the application metric (the paper uses
/// HTTP requests processed per second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchProfile {
    /// Human-readable codename, e.g. `"paravance"`.
    pub name: String,
    /// Average power drawn when the machine is on but serving no load (W).
    pub idle_power: f64,
    /// Average power drawn at `max_perf` (W).
    pub max_power: f64,
    /// Maximum sustainable performance rate (application metric units/s).
    pub max_perf: f64,
    /// Duration of a switch-on (boot) transition (s).
    pub on_duration: f64,
    /// Energy consumed by one switch-on transition (J).
    pub on_energy: f64,
    /// Duration of a switch-off (shutdown) transition (s).
    pub off_duration: f64,
    /// Energy consumed by one switch-off transition (J).
    pub off_energy: f64,
}

impl ArchProfile {
    /// Build a profile, validating invariants (see [`ArchProfile::validate`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        idle_power: f64,
        max_power: f64,
        max_perf: f64,
        on_duration: f64,
        on_energy: f64,
        off_duration: f64,
        off_energy: f64,
    ) -> Result<Self, BmlError> {
        let p = Self {
            name: name.into(),
            idle_power,
            max_power,
            max_perf,
            on_duration,
            on_energy,
            off_duration,
            off_energy,
        };
        p.validate()?;
        Ok(p)
    }

    /// Profile with zero-cost instantaneous transitions; convenient for
    /// tests and for the theoretical lower bound scenario.
    pub fn without_transitions(
        name: impl Into<String>,
        idle_power: f64,
        max_power: f64,
        max_perf: f64,
    ) -> Result<Self, BmlError> {
        Self::new(name, idle_power, max_power, max_perf, 0.0, 0.0, 0.0, 0.0)
    }

    /// Check profile invariants: positive finite performance, power ordering
    /// `0 <= idle <= max`, non-negative transition costs.
    pub fn validate(&self) -> Result<(), BmlError> {
        let finite = [
            self.idle_power,
            self.max_power,
            self.max_perf,
            self.on_duration,
            self.on_energy,
            self.off_duration,
            self.off_energy,
        ]
        .iter()
        .all(|v| v.is_finite());
        if !finite {
            return Err(BmlError::InvalidProfile {
                name: self.name.clone(),
                reason: "all profile fields must be finite".into(),
            });
        }
        if self.max_perf <= 0.0 {
            return Err(BmlError::InvalidProfile {
                name: self.name.clone(),
                reason: format!("max_perf must be > 0, got {}", self.max_perf),
            });
        }
        if self.idle_power < 0.0 || self.max_power < self.idle_power {
            return Err(BmlError::InvalidProfile {
                name: self.name.clone(),
                reason: format!(
                    "power ordering violated: idle={} max={}",
                    self.idle_power, self.max_power
                ),
            });
        }
        if self.on_duration < 0.0
            || self.on_energy < 0.0
            || self.off_duration < 0.0
            || self.off_energy < 0.0
        {
            return Err(BmlError::InvalidProfile {
                name: self.name.clone(),
                reason: "transition durations/energies must be >= 0".into(),
            });
        }
        Ok(())
    }

    /// Dynamic power range (W): `max_power - idle_power`.
    #[inline]
    pub fn dynamic_range(&self) -> f64 {
        self.max_power - self.idle_power
    }

    /// Marginal power per unit of performance (W per metric unit):
    /// the slope of the linear power model.
    #[inline]
    pub fn slope(&self) -> f64 {
        self.dynamic_range() / self.max_perf
    }

    /// Power drawn by *one* node of this architecture serving `rate`
    /// (clamped to `[0, max_perf]`), per the linear model of Step 1.
    #[inline]
    pub fn power_at(&self, rate: f64) -> f64 {
        let r = rate.clamp(0.0, self.max_perf);
        self.idle_power + self.slope() * r
    }

    /// Watts consumed per unit of performance when the node is fully
    /// loaded — the architecture's best operating point ("architectures are
    /// the most energy efficient when fully loaded", Sec. IV-E).
    #[inline]
    pub fn full_load_cost(&self) -> f64 {
        self.max_power / self.max_perf
    }

    /// Energy (J) needed to boot then later shut down one node:
    /// the full overhead of a transient commitment of this machine.
    #[inline]
    pub fn cycle_energy(&self) -> f64 {
        self.on_energy + self.off_energy
    }

    /// `true` if `self` performs no better than `other` while drawing at
    /// least as much peak power — i.e. `self` is dominated and can never
    /// improve energy proportionality (Step 2 removal criterion).
    pub fn is_dominated_by(&self, other: &ArchProfile) -> bool {
        self.max_perf <= other.max_perf
            && self.max_power >= other.max_power
            && (self.max_perf < other.max_perf || self.max_power > other.max_power)
    }
}

/// Power of the cheapest *homogeneous stack* of this architecture serving
/// `rate`: `ceil(rate / max_perf)` nodes, loads split among them.
///
/// With the linear model the split does not change total power: the total
/// is `n * idle + slope * rate`. This is the staircase curve of Figs. 1-2,
/// where each architecture's profile "is repeated to picture multiple
/// nodes".
pub fn stack_power(p: &ArchProfile, rate: f64) -> f64 {
    if rate <= 0.0 {
        return 0.0;
    }
    let nodes = (rate / p.max_perf).ceil().max(1.0);
    nodes * p.idle_power + p.slope() * rate
}

/// Number of nodes in the cheapest homogeneous stack serving `rate`.
pub fn stack_nodes(p: &ArchProfile, rate: f64) -> u32 {
    if rate <= 0.0 {
        0
    } else {
        (rate / p.max_perf).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rasp() -> ArchProfile {
        ArchProfile::new("raspberry", 3.1, 3.7, 9.0, 16.0, 40.5, 14.0, 36.2).unwrap()
    }

    #[test]
    fn linear_power_model_endpoints() {
        let p = rasp();
        assert!((p.power_at(0.0) - 3.1).abs() < 1e-12);
        assert!((p.power_at(9.0) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn power_clamps_outside_range() {
        let p = rasp();
        assert_eq!(p.power_at(-5.0), p.power_at(0.0));
        assert_eq!(p.power_at(100.0), p.power_at(9.0));
    }

    #[test]
    fn slope_and_range() {
        let p = rasp();
        assert!((p.dynamic_range() - 0.6).abs() < 1e-12);
        assert!((p.slope() - 0.6 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn full_load_cost_is_best_point() {
        let p = rasp();
        // W per req/s at full load must be below W per req/s at any partial load.
        for r in 1..9 {
            let partial = p.power_at(r as f64) / r as f64;
            assert!(p.full_load_cost() < partial, "rate {r}");
        }
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        assert!(ArchProfile::new("x", 1.0, 0.5, 10.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(ArchProfile::new("x", 1.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(ArchProfile::new("x", -1.0, 2.0, 10.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(ArchProfile::new("x", 1.0, 2.0, 10.0, -1.0, 0.0, 0.0, 0.0).is_err());
        assert!(ArchProfile::new("x", f64::NAN, 2.0, 10.0, 0.0, 0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn stack_power_staircase() {
        let p = rasp();
        // 1 node up to 9 req/s.
        assert_eq!(stack_nodes(&p, 9.0), 1);
        // 2 nodes from 9+eps to 18.
        assert_eq!(stack_nodes(&p, 9.01), 2);
        assert_eq!(stack_nodes(&p, 18.0), 2);
        // Power at 10 req/s: 2 idles + slope * 10.
        let expected = 2.0 * 3.1 + (0.6 / 9.0) * 10.0;
        assert!((stack_power(&p, 10.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn stack_power_zero_rate_is_zero_nodes() {
        let p = rasp();
        assert_eq!(stack_power(&p, 0.0), 0.0);
        assert_eq!(stack_nodes(&p, 0.0), 0);
    }

    #[test]
    fn domination() {
        // Taurus is dominated by Paravance: slower yet hungrier.
        let par = ArchProfile::new(
            "paravance",
            69.9,
            200.5,
            1331.0,
            189.0,
            21341.0,
            10.0,
            657.0,
        )
        .unwrap();
        let tau =
            ArchProfile::new("taurus", 95.8, 223.7, 860.0, 164.0, 20628.0, 11.0, 1173.0).unwrap();
        assert!(tau.is_dominated_by(&par));
        assert!(!par.is_dominated_by(&tau));
        // A profile never dominates itself.
        assert!(!par.is_dominated_by(&par));
    }

    #[test]
    fn cycle_energy_sums_transitions() {
        let p = rasp();
        assert!((p.cycle_energy() - 76.7).abs() < 1e-9);
    }
}
