//! Step 5 — computing the ideal BML machine combination for a target
//! performance rate (paper Sec. IV-E).
//!
//! The paper frames this as a bin-packing problem whose single "object"
//! (the target performance) may be split arbitrarily: architectures sorted
//! by decreasing size are filled *completely* first ("architectures are the
//! most energy efficient when fully loaded"), and the remainder is assigned
//! to the right architecture using the minimum utilization thresholds of
//! Steps 3-4.
//!
//! This module also provides an exact dynamic-programming packer
//! ([`optimal_dp`]) used as an ablation to quantify how close the paper's
//! greedy fill is to optimal, and [`config_power`] which computes the power
//! drawn by an arbitrary *given* set of powered-on machines serving a load,
//! under a configurable load-split policy.

use serde::{Deserialize, Serialize};

use crate::profile::ArchProfile;

/// Floating-point slack for "remainder is zero" and threshold comparisons.
/// Shared with `crate::table`, which must reproduce these tolerance
/// semantics exactly to stay branch-equivalent.
pub(crate) const EPS: f64 = 1e-9;

/// Nodes of one architecture inside a [`Combination`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeAlloc {
    /// Index of the architecture in the candidate list (0 = Big).
    pub arch: usize,
    /// Number of nodes running at `max_perf` (fully loaded).
    pub full_nodes: u32,
    /// Rate assigned to one additional, partially loaded node, if any.
    pub partial_rate: Option<f64>,
}

impl NodeAlloc {
    /// Total node count of this allocation (full + partial).
    pub fn nodes(&self) -> u32 {
        self.full_nodes + u32::from(self.partial_rate.is_some())
    }
}

/// An ideal BML combination: which nodes of which architecture to power on,
/// and how the target rate is spread over them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Combination {
    /// The performance rate this combination was built for.
    pub target_rate: f64,
    /// Per-architecture allocations, Big first; architectures with zero
    /// nodes are omitted.
    pub allocs: Vec<NodeAlloc>,
}

impl Combination {
    /// The empty combination (zero load, zero machines).
    pub fn empty() -> Self {
        Combination {
            target_rate: 0.0,
            allocs: Vec::new(),
        }
    }

    /// Total power (W) drawn by this combination under the linear model:
    /// full nodes at `max_power`, the partial node at `power_at(rate)`.
    pub fn power(&self, profiles: &[ArchProfile]) -> f64 {
        self.allocs
            .iter()
            .map(|a| {
                let p = &profiles[a.arch];
                let full = f64::from(a.full_nodes) * p.max_power;
                let part = a.partial_rate.map_or(0.0, |r| p.power_at(r));
                full + part
            })
            .sum()
    }

    /// Maximum rate this combination can serve (sum of `max_perf` of every
    /// powered-on node).
    pub fn capacity(&self, profiles: &[ArchProfile]) -> f64 {
        self.allocs
            .iter()
            .map(|a| f64::from(a.nodes()) * profiles[a.arch].max_perf)
            .sum()
    }

    /// Rate actually assigned (full nodes at max + partial rates); equals
    /// `target_rate` for combinations built by [`ideal_fill`].
    pub fn assigned_rate(&self, profiles: &[ArchProfile]) -> f64 {
        self.allocs
            .iter()
            .map(|a| {
                f64::from(a.full_nodes) * profiles[a.arch].max_perf + a.partial_rate.unwrap_or(0.0)
            })
            .sum()
    }

    /// Node counts per architecture index, `n_archs` entries (zero-filled).
    pub fn counts(&self, n_archs: usize) -> Vec<u32> {
        let mut c = vec![0u32; n_archs];
        for a in &self.allocs {
            c[a.arch] += a.nodes();
        }
        c
    }

    /// Total number of powered-on machines.
    pub fn total_nodes(&self) -> u32 {
        self.allocs.iter().map(NodeAlloc::nodes).sum()
    }

    /// `true` if the combination powers no machine.
    pub fn is_empty(&self) -> bool {
        self.total_nodes() == 0
    }
}

/// The paper's greedy fill (Step 5).
///
/// `profiles` must be sorted by decreasing `max_perf` (the output of
/// candidate filtering) and `thresholds[k]` is the minimum utilization
/// threshold of `profiles[k]` (Steps 3-4; the smallest architecture has
/// threshold 1).
///
/// For each architecture, biggest first: take as many *fully loaded* nodes
/// as fit in the remaining rate; if the remainder is at or above this
/// architecture's threshold, serve it with one partially loaded node and
/// stop; otherwise hand the remainder down to smaller architectures.
pub fn ideal_fill(profiles: &[ArchProfile], thresholds: &[f64], rate: f64) -> Combination {
    assert_eq!(
        profiles.len(),
        thresholds.len(),
        "one threshold per candidate architecture"
    );
    let mut combo = Combination {
        target_rate: rate,
        allocs: Vec::new(),
    };
    if rate <= 0.0 {
        return combo;
    }
    let mut rem = rate;
    for (k, (p, &t)) in profiles.iter().zip(thresholds).enumerate() {
        if rem <= EPS {
            break;
        }
        if rem + EPS < t {
            continue; // too small for this architecture at all
        }
        let full = (rem / p.max_perf).floor() as u32;
        let mut alloc = NodeAlloc {
            arch: k,
            full_nodes: full,
            partial_rate: None,
        };
        rem -= f64::from(full) * p.max_perf;
        if rem <= EPS {
            rem = 0.0;
        } else if rem + EPS >= t {
            alloc.partial_rate = Some(rem);
            rem = 0.0;
        }
        if alloc.nodes() > 0 {
            combo.allocs.push(alloc);
        }
        if rem == 0.0 {
            break;
        }
    }
    // A sub-threshold fractional remainder (possible only when the rate is
    // below the Little threshold of 1, or not an integer) still needs one
    // Little node.
    if rem > EPS {
        let k = profiles.len() - 1;
        match combo.allocs.iter_mut().find(|a| a.arch == k) {
            Some(a) if a.partial_rate.is_none() => a.partial_rate = Some(rem),
            _ => combo.allocs.push(NodeAlloc {
                arch: k,
                full_nodes: 0,
                partial_rate: Some(rem),
            }),
        }
    }
    combo
}

/// Exact optimal packing by dynamic programming over integer rates, for
/// ablation against the paper's greedy [`ideal_fill`].
///
/// `best[r]` = minimum power to serve exactly rate `r`, where each added
/// node serves an integer chunk `s <= max_perf` and costs
/// `idle + slope * s`. Returns `(power, node counts per architecture)`.
pub fn optimal_dp(profiles: &[ArchProfile], rate: u64) -> (f64, Vec<u32>) {
    let n = profiles.len();
    if rate == 0 {
        return (0.0, vec![0; n]);
    }
    let r = rate as usize;
    let mut best = vec![f64::INFINITY; r + 1];
    let mut choice: Vec<(usize, usize)> = vec![(usize::MAX, 0); r + 1]; // (arch, served)
    best[0] = 0.0;
    for cur in 1..=r {
        for (k, p) in profiles.iter().enumerate() {
            let cap = p.max_perf.floor() as usize;
            // Serving less than capacity only ever helps for the *last*
            // node of an architecture; trying all chunk sizes is O(R*mp)
            // which is too slow, so we try (a) a full node, (b) one node
            // serving the entire remaining `cur` if it fits.
            if cap > 0 && cur >= cap {
                let cand = best[cur - cap] + p.max_power;
                if cand < best[cur] {
                    best[cur] = cand;
                    choice[cur] = (k, cap);
                }
            }
            if cur <= cap {
                let cand = p.power_at(cur as f64);
                if cand < best[cur] {
                    best[cur] = cand;
                    choice[cur] = (k, cur);
                }
            }
        }
    }
    let mut counts = vec![0u32; n];
    let mut cur = r;
    while cur > 0 {
        let (k, served) = choice[cur];
        assert_ne!(k, usize::MAX, "dp table must be complete");
        counts[k] += 1;
        cur -= served;
    }
    (best[r], counts)
}

/// How a load is split across the powered-on machines of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// Fill machines in increasing order of marginal power (W per unit),
    /// i.e. the split that minimizes total power for a fixed machine set.
    EfficiencyGreedy,
    /// Split proportionally to each machine's capacity — what a plain
    /// capacity-weighted load balancer does.
    ProportionalToCapacity,
}

/// Power (W) drawn and load actually served by `counts[k]` powered-on nodes
/// of each architecture serving `load`, under `policy`.
///
/// Load beyond total capacity is dropped (returned `served` < `load`);
/// machines beyond what the load needs still draw idle power — that is the
/// whole energy-proportionality problem.
pub fn config_power(
    profiles: &[ArchProfile],
    counts: &[u32],
    load: f64,
    policy: SplitPolicy,
) -> (f64, f64) {
    assert_eq!(profiles.len(), counts.len());
    let capacity: f64 = profiles
        .iter()
        .zip(counts)
        .map(|(p, &c)| f64::from(c) * p.max_perf)
        .sum();
    let served = load.clamp(0.0, capacity);
    let idle: f64 = profiles
        .iter()
        .zip(counts)
        .map(|(p, &c)| f64::from(c) * p.idle_power)
        .sum();
    let dynamic = match policy {
        SplitPolicy::EfficiencyGreedy => {
            let mut order: Vec<usize> = (0..profiles.len()).filter(|&k| counts[k] > 0).collect();
            order.sort_by(|&a, &b| {
                profiles[a]
                    .slope()
                    .partial_cmp(&profiles[b].slope())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut rem = served;
            let mut dyn_p = 0.0;
            for k in order {
                if rem <= 0.0 {
                    break;
                }
                let cap_k = f64::from(counts[k]) * profiles[k].max_perf;
                let take = rem.min(cap_k);
                dyn_p += profiles[k].slope() * take;
                rem -= take;
            }
            dyn_p
        }
        SplitPolicy::ProportionalToCapacity => {
            if capacity <= 0.0 {
                0.0
            } else {
                profiles
                    .iter()
                    .zip(counts)
                    .map(|(p, &c)| {
                        let cap_k = f64::from(c) * p.max_perf;
                        p.slope() * served * (cap_k / capacity)
                    })
                    .sum()
            }
        }
    };
    (idle + dynamic, served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::crossing::compute_thresholds;

    fn trio() -> (Vec<ArchProfile>, Vec<f64>) {
        let profiles = catalog::paper_bml_trio();
        let thresholds: Vec<f64> = compute_thresholds(&profiles)
            .iter()
            .map(|t| t.rate)
            .collect();
        (profiles, thresholds)
    }

    #[test]
    fn zero_rate_is_empty() {
        let (p, t) = trio();
        let c = ideal_fill(&p, &t, 0.0);
        assert!(c.is_empty());
        assert_eq!(c.power(&p), 0.0);
    }

    #[test]
    fn tiny_rate_uses_one_little() {
        let (p, t) = trio();
        let c = ideal_fill(&p, &t, 1.0);
        assert_eq!(c.total_nodes(), 1);
        assert_eq!(c.allocs[0].arch, 2); // raspberry
        assert_eq!(c.allocs[0].partial_rate, Some(1.0));
    }

    #[test]
    fn rate_at_medium_threshold_uses_medium() {
        let (p, t) = trio();
        // Threshold of the Chromebook is 10 req/s (paper Sec. V-B).
        let c = ideal_fill(&p, &t, 10.0);
        assert_eq!(c.total_nodes(), 1);
        assert_eq!(c.allocs[0].arch, 1); // chromebook
    }

    #[test]
    fn rate_below_medium_threshold_stacks_littles() {
        let (p, t) = trio();
        let c = ideal_fill(&p, &t, 9.5);
        // 1 full raspberry (9) + 1 partial raspberry (0.5).
        let counts = c.counts(3);
        assert_eq!(counts, vec![0, 0, 2]);
        assert!((c.assigned_rate(&p) - 9.5).abs() < 1e-9);
    }

    #[test]
    fn rate_at_big_threshold_uses_big() {
        let (p, t) = trio();
        // Threshold of Paravance is 529 req/s (paper Sec. V-B).
        let c = ideal_fill(&p, &t, 529.0);
        assert_eq!(c.counts(3), vec![1, 0, 0]);
        // One req/s less: mediums + littles instead.
        let c = ideal_fill(&p, &t, 528.0);
        assert_eq!(c.counts(3)[0], 0);
        assert_eq!(c.counts(3)[1], 16); // 16 full chromebooks = 528
    }

    #[test]
    fn large_rate_fills_bigs_first() {
        let (p, t) = trio();
        let c = ideal_fill(&p, &t, 3000.0);
        // floor(3000/1331) = 2 full Bigs, remainder 338 < 529 -> mediums.
        let counts = c.counts(3);
        assert_eq!(counts[0], 2);
        // 338 = 10 full chromebooks (330) + remainder 8 < 10 -> raspberry.
        assert_eq!(counts[1], 10);
        assert_eq!(counts[2], 1);
        assert!((c.assigned_rate(&p) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn exact_multiple_of_big_uses_only_full_bigs() {
        let (p, t) = trio();
        let c = ideal_fill(&p, &t, 2.0 * 1331.0);
        assert_eq!(c.counts(3), vec![2, 0, 0]);
        assert!((c.power(&p) - 2.0 * 200.5).abs() < 1e-9);
    }

    #[test]
    fn assigned_rate_always_covers_target() {
        let (p, t) = trio();
        for r in [0.5, 1.0, 7.3, 33.0, 100.0, 529.0, 1331.0, 4000.0, 5323.9] {
            let c = ideal_fill(&p, &t, r);
            assert!(
                c.assigned_rate(&p) + 1e-6 >= r,
                "rate {r} not covered: assigned {}",
                c.assigned_rate(&p)
            );
            assert!(c.capacity(&p) + 1e-6 >= r);
        }
    }

    #[test]
    fn power_is_monotone_in_rate() {
        let (p, t) = trio();
        let mut last = 0.0;
        for r in 0..=2700u64 {
            let c = ideal_fill(&p, &t, r as f64);
            let w = c.power(&p);
            assert!(
                w + 1e-9 >= last,
                "power not monotone at rate {r}: {w} < {last}"
            );
            last = w;
        }
    }

    #[test]
    fn dp_never_beats_greedy_by_much_and_never_loses() {
        let (p, t) = trio();
        for r in [1u64, 9, 10, 50, 100, 333, 528, 529, 1000, 1331, 2000] {
            let greedy = ideal_fill(&p, &t, r as f64).power(&p);
            let (dp, _) = optimal_dp(&p, r);
            assert!(
                dp <= greedy + 1e-9,
                "dp worse than greedy at {r}: {dp} > {greedy}"
            );
            // The paper's greedy is near-optimal: within 15% everywhere on
            // the Table I data.
            assert!(
                greedy <= dp * 1.15 + 1e-9,
                "greedy gap too large at {r}: {greedy} vs {dp}"
            );
        }
    }

    #[test]
    fn dp_zero_rate() {
        let (p, _) = trio();
        let (w, counts) = optimal_dp(&p, 0);
        assert_eq!(w, 0.0);
        assert_eq!(counts, vec![0, 0, 0]);
    }

    #[test]
    fn config_power_greedy_splits_to_cheapest_slope() {
        let (p, _) = trio();
        // 1 Big + 1 Medium on; Big slope ~0.0981 < Medium slope ~0.1091,
        // so greedy loads the Big first.
        let counts = vec![1, 1, 0];
        let (w, served) = config_power(&p, &counts, 100.0, SplitPolicy::EfficiencyGreedy);
        assert_eq!(served, 100.0);
        let expected = 69.9 + 4.0 + p[0].slope() * 100.0;
        assert!((w - expected).abs() < 1e-9);
    }

    #[test]
    fn config_power_proportional_split() {
        let (p, _) = trio();
        let counts = vec![1, 1, 0];
        let cap = 1331.0 + 33.0;
        let (w, _) = config_power(&p, &counts, 100.0, SplitPolicy::ProportionalToCapacity);
        let expected = 69.9
            + 4.0
            + p[0].slope() * 100.0 * (1331.0 / cap)
            + p[1].slope() * 100.0 * (33.0 / cap);
        assert!((w - expected).abs() < 1e-9);
    }

    #[test]
    fn config_power_drops_overload() {
        let (p, _) = trio();
        let counts = vec![0, 0, 2]; // capacity 18
        let (w, served) = config_power(&p, &counts, 100.0, SplitPolicy::EfficiencyGreedy);
        assert_eq!(served, 18.0);
        assert!((w - 2.0 * 3.7).abs() < 1e-9);
    }

    #[test]
    fn config_power_idle_when_no_load() {
        let (p, _) = trio();
        let counts = vec![4, 0, 0];
        let (w, served) = config_power(&p, &counts, 0.0, SplitPolicy::EfficiencyGreedy);
        assert_eq!(served, 0.0);
        assert!((w - 4.0 * 69.9).abs() < 1e-9);
    }

    #[test]
    fn greedy_split_never_exceeds_proportional() {
        let (p, _) = trio();
        for load in [10.0, 100.0, 500.0, 1300.0] {
            let counts = vec![1, 3, 5];
            let (g, _) = config_power(&p, &counts, load, SplitPolicy::EfficiencyGreedy);
            let (pr, _) = config_power(&p, &counts, load, SplitPolicy::ProportionalToCapacity);
            assert!(
                g <= pr + 1e-9,
                "load {load}: greedy {g} > proportional {pr}"
            );
        }
    }

    #[test]
    fn counts_and_nodes_accounting() {
        let (p, t) = trio();
        let c = ideal_fill(&p, &t, 1400.0);
        let counts = c.counts(3);
        assert_eq!(counts.iter().sum::<u32>(), c.total_nodes());
        assert!(c.capacity(&p) >= c.assigned_rate(&p) - 1e-9);
    }
}
