//! # bml-core — Big-Medium-Little energy-proportional infrastructures
//!
//! Reproduction of the core contribution of *"Dynamically Building Energy
//! Proportional Data Centers with Heterogeneous Computing Resources"*
//! (Villebonnet, Da Costa, Lefèvre, Pierson, Stolf — IEEE CLUSTER 2016).
//!
//! Data centers are over-provisioned and servers burn up to half their
//! peak power while idle. The paper composes a data center from machine
//! types with very different performance/power envelopes (from Xeon
//! servers down to Raspberry Pis) and reconfigures it dynamically so that
//! power consumption tracks load — *energy proportionality* built from
//! non-proportional parts.
//!
//! This crate implements the five-step BML methodology plus the pro-active
//! scheduler:
//!
//! 1. [`profile::ArchProfile`] — per-architecture energy/performance
//!    profiles (paper Table I);
//! 2. [`candidates`] — Step 2 dominance filtering (plus the Step-3
//!    "never optimal" removal);
//! 3. [`crossing`] — Steps 3-4 crossing points / minimum utilization
//!    thresholds;
//! 4. [`combination`] — Step 5 ideal machine combinations;
//! 5. [`bml::BmlInfrastructure`] — everything assembled;
//! 6. [`scheduler::ProActiveScheduler`] + [`reconfig`] — the dynamic
//!    reconfiguration engine with switch on/off overheads.
//!
//! ## Quickstart
//!
//! ```
//! use bml_core::prelude::*;
//!
//! // Step 1: profiles (here: the paper's Table I catalog).
//! let profiles = bml_core::catalog::table1();
//!
//! // Steps 2-4: build the infrastructure.
//! let bml = BmlInfrastructure::build(&profiles).unwrap();
//! assert_eq!(bml.threshold_rates(), vec![529.0, 10.0, 1.0]);
//!
//! // Step 5: which machines should serve 100 requests/s?
//! // 3 full Chromebooks (99 req/s) + the 1 req/s remainder on a Raspberry.
//! let combo = bml.ideal_combination(100.0);
//! assert_eq!(combo.counts(3), vec![0, 3, 1]);
//!
//! // Drive the pro-active scheduler.
//! let mut sched = ProActiveScheduler::new(bml.n_archs());
//! match sched.decide(0, 100.0, &bml) {
//!     Decision::Reconfigure(plan) => assert_eq!(plan.nodes_switched_on(), 4),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bml;
pub mod candidates;
pub mod catalog;
pub mod combination;
pub mod crossing;
pub mod errors;
pub mod profile;
pub mod reconfig;
pub mod rng;
pub mod scheduler;
pub mod table;
pub mod transition_aware;

/// Convenient glob-import of the main types.
pub mod prelude {
    pub use crate::bml::BmlInfrastructure;
    pub use crate::candidates::{bml_candidates, CandidateSet, RemovalReason};
    pub use crate::combination::{Combination, SplitPolicy};
    pub use crate::crossing::{Threshold, ThresholdKind};
    pub use crate::errors::BmlError;
    pub use crate::profile::ArchProfile;
    pub use crate::reconfig::{Configuration, ReconfigPlan};
    pub use crate::scheduler::{paper_window_length, Decision, ProActiveScheduler};
    pub use crate::table::CombinationTable;
    pub use crate::transition_aware::{TransitionAwareConfig, TransitionAwareScheduler};
}

#[cfg(test)]
mod doc_invariants {
    use crate::prelude::*;

    #[test]
    fn quickstart_combination_three_chromebooks_one_raspberry() {
        let bml = BmlInfrastructure::build(&crate::catalog::table1()).unwrap();
        let combo = bml.ideal_combination(100.0);
        assert_eq!(combo.counts(3), vec![0, 3, 1]);
    }
}
