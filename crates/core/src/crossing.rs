//! Steps 3 and 4 — crossing points and minimum utilization thresholds
//! (paper Sec. IV-C and IV-D).
//!
//! The *minimum utilization threshold* of an architecture is the
//! performance rate from which using it "becomes more relevant than"
//! combinations of smaller architectures, power-wise. The Little
//! architecture's threshold is 1 by definition.
//!
//! * **Step 3** compares an architecture against *homogeneous stacks* of
//!   the next-smaller architecture ([`pairwise_threshold`]).
//! * **Step 4** (needed for three or more architectures) re-evaluates each
//!   threshold against the *ideal combinations* of all smaller candidates
//!   ([`combined_threshold`]), which may raise the threshold and removes
//!   the power jump Fig. 2 (left) exhibits.
//!
//! Both use the *sustained* crossing convention: the threshold is the
//! smallest integer rate `r` such that the bigger architecture's single-node
//! profile consumes no more than the smaller alternative at **every** rate
//! in `[r, max_perf_big]`. On the paper's Table I data this yields exactly
//! the published thresholds: 1 (Raspberry), 10 (Chromebook),
//! 529 req/s (Paravance).

use serde::{Deserialize, Serialize};

use crate::combination::ideal_fill;
use crate::profile::{stack_power, ArchProfile};

/// Comparison slack: power values within this are considered equal.
const EPS: f64 = 1e-9;

/// How a threshold was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdKind {
    /// The smallest architecture: threshold is 1 by definition.
    Base,
    /// A genuine crossing point between power profiles was found.
    Crossing,
    /// No crossing exists below the architecture's `max_perf`; the switch
    /// is forced at the capacity limit of the smaller alternative (the
    /// "substantial jump in power consumption" of Fig. 2 left).
    Forced,
}

/// A minimum utilization threshold (paper Sec. IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Threshold {
    /// The threshold rate, in application metric units (integer-valued).
    pub rate: f64,
    /// Whether this is the Little base case, a real crossing, or forced.
    pub kind: ThresholdKind,
}

impl Threshold {
    /// The Little architecture's threshold: rate 1.
    pub fn base() -> Self {
        Threshold {
            rate: 1.0,
            kind: ThresholdKind::Base,
        }
    }
}

/// Smallest integer rate `r` in `[1, limit]` such that `power(r')` <=
/// `alternative(r')` for **all** integer `r'` in `[r, limit]`; `None` if
/// even `r = limit` fails.
///
/// Implemented as a single backward sweep, O(limit) evaluations.
fn sustained_crossing(
    limit: u64,
    power: impl Fn(f64) -> f64,
    alternative: impl Fn(f64) -> f64,
) -> Option<u64> {
    let mut threshold = None;
    for r in (1..=limit).rev() {
        let rate = r as f64;
        if power(rate) <= alternative(rate) + EPS {
            threshold = Some(r);
        } else {
            break;
        }
    }
    threshold
}

/// Step 3: threshold of `bigger` versus homogeneous stacks of `smaller`.
pub fn pairwise_threshold(bigger: &ArchProfile, smaller: &ArchProfile) -> Threshold {
    let limit = bigger.max_perf.floor() as u64;
    match sustained_crossing(limit, |r| bigger.power_at(r), |r| stack_power(smaller, r)) {
        Some(r) => Threshold {
            rate: r as f64,
            kind: ThresholdKind::Crossing,
        },
        None => Threshold {
            // Forced switch at the smaller architecture's capacity: beyond
            // one node of `smaller` the paper's Fig. 2 (left) jumps to the
            // bigger architecture.
            rate: smaller.max_perf,
            kind: ThresholdKind::Forced,
        },
    }
}

/// Step 4: threshold of `bigger` versus the *ideal combinations* of all
/// smaller candidates (`smaller` sorted by decreasing `max_perf`, with
/// their already-computed thresholds).
pub fn combined_threshold(
    bigger: &ArchProfile,
    smaller: &[ArchProfile],
    smaller_thresholds: &[f64],
) -> Threshold {
    assert!(
        !smaller.is_empty(),
        "need at least one smaller architecture"
    );
    let limit = bigger.max_perf.floor() as u64;
    match sustained_crossing(
        limit,
        |r| bigger.power_at(r),
        |r| ideal_fill(smaller, smaller_thresholds, r).power(smaller),
    ) {
        Some(r) => Threshold {
            rate: r as f64,
            kind: ThresholdKind::Crossing,
        },
        None => Threshold {
            rate: smaller[0].max_perf,
            kind: ThresholdKind::Forced,
        },
    }
}

/// Compute the minimum utilization threshold of every candidate, Big first
/// (same order as `profiles`), applying Step 3 for the two smallest
/// architectures and Step 4 for everything larger.
///
/// Thresholds are computed bottom-up: the Little gets 1, and each larger
/// architecture is compared against the ideal combinations of all already-
/// thresholded smaller candidates.
pub fn compute_thresholds(profiles: &[ArchProfile]) -> Vec<Threshold> {
    let n = profiles.len();
    let mut thresholds = vec![Threshold::base(); n];
    if n <= 1 {
        return thresholds;
    }
    // Walk from the second-smallest (index n-2) up to the Big (index 0).
    for k in (0..n - 1).rev() {
        let smaller = &profiles[k + 1..];
        let smaller_rates: Vec<f64> = thresholds[k + 1..].iter().map(|t| t.rate).collect();
        thresholds[k] = combined_threshold(&profiles[k], smaller, &smaller_rates);
    }
    thresholds
}

/// Step-3-only thresholds (each architecture versus homogeneous stacks of
/// the next smaller one). Exposed to reproduce Fig. 2 (left) and to show
/// the improvement Step 4 brings.
pub fn pairwise_thresholds(profiles: &[ArchProfile]) -> Vec<Threshold> {
    let n = profiles.len();
    let mut thresholds = vec![Threshold::base(); n];
    for k in (0..n.saturating_sub(1)).rev() {
        thresholds[k] = pairwise_threshold(&profiles[k], &profiles[k + 1]);
    }
    thresholds
}

/// One point of a power-versus-rate curve, for figure regeneration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Performance rate (application metric units).
    pub rate: f64,
    /// Power (W).
    pub power: f64,
}

/// Sample the homogeneous-stack power curve of `profile` at integer rates
/// `0..=limit` (the repeated staircase profiles of Figs. 1-2).
pub fn stack_curve(profile: &ArchProfile, limit: u64) -> Vec<CurvePoint> {
    (0..=limit)
        .map(|r| CurvePoint {
            rate: r as f64,
            power: stack_power(profile, r as f64),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn paper_thresholds_1_10_529() {
        let trio = catalog::paper_bml_trio();
        let t = compute_thresholds(&trio);
        assert_eq!(t[2].rate, 1.0); // raspberry (Little)
        assert_eq!(t[2].kind, ThresholdKind::Base);
        assert_eq!(t[1].rate, 10.0); // chromebook (Medium)
        assert_eq!(t[1].kind, ThresholdKind::Crossing);
        assert_eq!(t[0].rate, 529.0); // paravance (Big)
        assert_eq!(t[0].kind, ThresholdKind::Crossing);
    }

    #[test]
    fn pairwise_matches_paper_for_medium() {
        let trio = catalog::paper_bml_trio();
        let t = pairwise_thresholds(&trio);
        assert_eq!(t[1].rate, 10.0);
    }

    #[test]
    fn step4_never_below_1() {
        let trio = catalog::paper_bml_trio();
        for t in compute_thresholds(&trio) {
            assert!(t.rate >= 1.0);
        }
    }

    #[test]
    fn illustrative_medium_threshold_around_150() {
        // Fig. 2 left: "Utilization threshold of Medium starts around a
        // performance rate of 150"; our illustrative B is built to land
        // exactly at 150.
        let abc = vec![
            catalog::illustrative_a(),
            catalog::illustrative_b(),
            catalog::illustrative_c(),
        ];
        let t = compute_thresholds(&abc);
        assert_eq!(t[1].rate, 150.0);
    }

    #[test]
    fn illustrative_step4_raises_big_threshold() {
        // Fig. 2 right: "minimum threshold of Big has consequently
        // increased" relative to Step 3.
        let abc = vec![
            catalog::illustrative_a(),
            catalog::illustrative_b(),
            catalog::illustrative_c(),
        ];
        let step3 = pairwise_thresholds(&abc);
        let step4 = compute_thresholds(&abc);
        assert!(
            step4[0].rate > step3[0].rate,
            "step4 {} should exceed step3 {}",
            step4[0].rate,
            step3[0].rate
        );
    }

    #[test]
    fn threshold_semantics_bigger_wins_above() {
        let trio = catalog::paper_bml_trio();
        let t = compute_thresholds(&trio);
        let big = &trio[0];
        let smaller = &trio[1..];
        let srates: Vec<f64> = t[1..].iter().map(|x| x.rate).collect();
        // At and above the threshold the Big is no worse than combos...
        for r in [529u64, 600, 1000, 1331] {
            let combo = ideal_fill(smaller, &srates, r as f64).power(smaller);
            assert!(
                big.power_at(r as f64) <= combo + 1e-9,
                "big should win at {r}"
            );
        }
        // ...and just below it the combination is strictly cheaper.
        let combo = ideal_fill(smaller, &srates, 528.0).power(smaller);
        assert!(big.power_at(528.0) > combo);
    }

    #[test]
    fn forced_threshold_when_no_crossing() {
        // A big machine so inefficient it never beats stacks of the small
        // one within its range -> forced switch at the small one's capacity.
        let big = ArchProfile::without_transitions("hog", 100.0, 300.0, 200.0).unwrap();
        let small = ArchProfile::without_transitions("ant", 1.0, 10.0, 20.0).unwrap();
        let t = pairwise_threshold(&big, &small);
        assert_eq!(t.kind, ThresholdKind::Forced);
        assert_eq!(t.rate, 20.0);
    }

    #[test]
    fn single_architecture_gets_base_threshold() {
        let t = compute_thresholds(&[catalog::paravance()]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].kind, ThresholdKind::Base);
    }

    #[test]
    fn two_architectures_pairwise_equals_combined() {
        let pair = vec![catalog::chromebook(), catalog::raspberry()];
        let p3 = pairwise_thresholds(&pair);
        let p4 = compute_thresholds(&pair);
        assert_eq!(p3[0].rate, p4[0].rate);
        assert_eq!(p3[1].rate, 1.0);
    }

    #[test]
    fn stack_curve_samples() {
        let c = stack_curve(&catalog::raspberry(), 20);
        assert_eq!(c.len(), 21);
        assert_eq!(c[0].power, 0.0);
        assert!((c[9].power - 3.7).abs() < 1e-9);
        // Staircase jump between 9 and 10 req/s.
        assert!(c[10].power > c[9].power + 2.0);
    }

    #[test]
    fn sustained_convention_rejects_transient_crossings() {
        // power dips below alternative at r=3..4 only, then above again:
        // sustained crossing must not report 3.
        let power = |r: f64| if (3.0..=4.0).contains(&r) { 0.0 } else { 10.0 };
        let alt = |_r: f64| 5.0;
        assert_eq!(sustained_crossing(10, power, alt), None);
    }

    #[test]
    fn sustained_convention_finds_suffix_start() {
        let power = |r: f64| if r >= 6.0 { 1.0 } else { 10.0 };
        let alt = |_r: f64| 5.0;
        assert_eq!(sustained_crossing(10, power, alt), Some(6));
    }
}
