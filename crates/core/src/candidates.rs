//! Step 2 — sorting architectures and keeping only BML candidates —
//! plus the Step-3 "never crosses anything" removal the paper applies to
//! Graphene (Sec. V-B).
//!
//! Step 2 (paper IV-B): sort by decreasing maximum performance, then remove
//! any architecture whose maximum power does not respect that ordering —
//! i.e. it performs worse than some other architecture while drawing at
//! least as much peak power. Such a machine can never improve energy
//! proportionality.
//!
//! Step 3 additionally discards architectures whose profile "never crosses
//! any other architecture's profile" — concretely, machines that are never
//! the most power-efficient choice at *any* performance rate (Graphene in
//! the paper's data). We implement the slightly stronger but equivalent
//! never-optimal test over homogeneous stacks, which is well-defined for
//! any number of architectures.

use serde::{Deserialize, Serialize};

use crate::errors::BmlError;
use crate::profile::{stack_power, ArchProfile};

/// Why an architecture was rejected from the BML candidate set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RemovalReason {
    /// Step 2: dominated — another architecture performs at least as well
    /// with at most the same peak power.
    Dominated {
        /// Codename of the dominating architecture.
        by: String,
    },
    /// Step 3: at no performance rate is this architecture (as a
    /// homogeneous stack) the cheapest option.
    NeverOptimal,
}

/// Result of candidate filtering: the surviving profiles sorted by
/// decreasing maximum performance, and the rejects with their reasons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSet {
    /// Survivors, sorted by decreasing `max_perf` (Big first).
    pub kept: Vec<ArchProfile>,
    /// Rejected profiles and why.
    pub removed: Vec<(ArchProfile, RemovalReason)>,
}

impl CandidateSet {
    /// Codenames of the survivors, Big first.
    pub fn names(&self) -> Vec<&str> {
        self.kept.iter().map(|p| p.name.as_str()).collect()
    }

    /// BML class labels for the survivors, Big first: `"Big"`, `"Medium"`,
    /// `"Little"` for three candidates; for other counts intermediate
    /// classes are numbered (`"Medium-1"`, `"Medium-2"`, ...) as the paper
    /// allows ("intermediate classes can be required depending on the
    /// use-case", Sec. III).
    pub fn class_labels(&self) -> Vec<String> {
        class_labels(self.kept.len())
    }
}

/// BML class labels for `n` architectures ordered Big -> Little.
pub fn class_labels(n: usize) -> Vec<String> {
    match n {
        0 => vec![],
        1 => vec!["Big".to_string()],
        2 => vec!["Big".to_string(), "Little".to_string()],
        3 => vec![
            "Big".to_string(),
            "Medium".to_string(),
            "Little".to_string(),
        ],
        n => {
            let mut v = vec!["Big".to_string()];
            for i in 1..n - 1 {
                v.push(format!("Medium-{i}"));
            }
            v.push("Little".to_string());
            v
        }
    }
}

/// Step 2: sort by decreasing `max_perf` and drop dominated architectures.
///
/// After sorting, maximum power must strictly decrease along the list; an
/// entry whose peak power is >= the smallest peak power seen so far is
/// dominated by the machine that set that minimum.
pub fn filter_candidates(input: &[ArchProfile]) -> Result<CandidateSet, BmlError> {
    for p in input {
        p.validate()?;
    }
    let mut sorted: Vec<ArchProfile> = input.to_vec();
    // Sort by decreasing performance; tie-break by increasing peak power so
    // the cheaper of two equal performers survives.
    sorted.sort_by(|a, b| {
        b.max_perf
            .partial_cmp(&a.max_perf)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.max_power
                    .partial_cmp(&b.max_power)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });

    let mut kept: Vec<ArchProfile> = Vec::with_capacity(sorted.len());
    let mut removed = Vec::new();
    for p in sorted {
        match kept.iter().find(|k| k.max_power <= p.max_power) {
            // Someone faster already draws no more peak power than `p`.
            Some(dominator) => removed.push((
                p,
                RemovalReason::Dominated {
                    by: dominator.name.clone(),
                },
            )),
            None => kept.push(p),
        }
    }
    if kept.is_empty() {
        return Err(BmlError::NoCandidates);
    }
    Ok(CandidateSet { kept, removed })
}

/// Step 3 removal: drop every architecture that is never strictly the
/// cheapest homogeneous stack at any integer rate in `[1, horizon]`.
///
/// `horizon` defaults (when `None`) to twice the largest `max_perf`, which
/// covers one full repetition of every staircase period; beyond that the
/// comparison is decided by full-load efficiency, already sampled within
/// the horizon.
pub fn remove_never_optimal(
    set: CandidateSet,
    horizon: Option<u64>,
) -> Result<CandidateSet, BmlError> {
    let CandidateSet { kept, mut removed } = set;
    if kept.len() <= 1 {
        return Ok(CandidateSet { kept, removed });
    }
    let max_mp = kept.iter().map(|p| p.max_perf).fold(0.0f64, f64::max);
    let horizon = horizon.unwrap_or((2.0 * max_mp).ceil() as u64);

    // For each integer rate, find which architecture's stack is cheapest.
    let mut ever_best = vec![false; kept.len()];
    for r in 1..=horizon {
        let rate = r as f64;
        let mut best = 0usize;
        let mut best_p = f64::INFINITY;
        for (i, p) in kept.iter().enumerate() {
            let w = stack_power(p, rate);
            if w < best_p - 1e-12 {
                best_p = w;
                best = i;
            }
        }
        ever_best[best] = true;
        if ever_best.iter().all(|&b| b) {
            break;
        }
    }

    let mut surviving = Vec::with_capacity(kept.len());
    for (i, p) in kept.into_iter().enumerate() {
        if ever_best[i] {
            surviving.push(p);
        } else {
            removed.push((p, RemovalReason::NeverOptimal));
        }
    }
    if surviving.is_empty() {
        return Err(BmlError::NoCandidates);
    }
    Ok(CandidateSet {
        kept: surviving,
        removed,
    })
}

/// Convenience: Step 2 followed by the Step-3 removal, with the default
/// horizon.
pub fn bml_candidates(input: &[ArchProfile]) -> Result<CandidateSet, BmlError> {
    remove_never_optimal(filter_candidates(input)?, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn step2_removes_taurus_keeps_rest() {
        let set = filter_candidates(&catalog::table1()).unwrap();
        assert_eq!(
            set.names(),
            vec!["paravance", "graphene", "chromebook", "raspberry"]
        );
        assert_eq!(set.removed.len(), 1);
        assert_eq!(set.removed[0].0.name, "taurus");
        assert_eq!(
            set.removed[0].1,
            RemovalReason::Dominated {
                by: "paravance".into()
            }
        );
    }

    #[test]
    fn step3_removes_graphene() {
        let set = bml_candidates(&catalog::table1()).unwrap();
        assert_eq!(set.names(), vec!["paravance", "chromebook", "raspberry"]);
        let never: Vec<_> = set
            .removed
            .iter()
            .filter(|(_, r)| *r == RemovalReason::NeverOptimal)
            .map(|(p, _)| p.name.as_str())
            .collect();
        assert_eq!(never, vec!["graphene"]);
    }

    #[test]
    fn illustrative_d_removed_a_b_c_kept() {
        let set = filter_candidates(&catalog::illustrative()).unwrap();
        assert_eq!(set.names(), vec!["A", "B", "C"]);
        assert_eq!(set.removed[0].0.name, "D");
        // And all three survive the never-optimal check.
        let set = bml_candidates(&catalog::illustrative()).unwrap();
        assert_eq!(set.names(), vec!["A", "B", "C"]);
    }

    #[test]
    fn labels_for_three_candidates() {
        let set = bml_candidates(&catalog::table1()).unwrap();
        assert_eq!(set.class_labels(), vec!["Big", "Medium", "Little"]);
    }

    #[test]
    fn labels_for_other_counts() {
        assert!(class_labels(0).is_empty());
        assert_eq!(class_labels(1), vec!["Big"]);
        assert_eq!(class_labels(2), vec!["Big", "Little"]);
        assert_eq!(
            class_labels(4),
            vec!["Big", "Medium-1", "Medium-2", "Little"]
        );
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(filter_candidates(&[]).unwrap_err(), BmlError::NoCandidates);
    }

    #[test]
    fn single_architecture_survives_alone() {
        let set = bml_candidates(&[catalog::paravance()]).unwrap();
        assert_eq!(set.names(), vec!["paravance"]);
    }

    #[test]
    fn equal_perf_keeps_cheaper() {
        let a = ArchProfile::without_transitions("cheap", 10.0, 50.0, 100.0).unwrap();
        let b = ArchProfile::without_transitions("pricey", 10.0, 60.0, 100.0).unwrap();
        let set = filter_candidates(&[b, a]).unwrap();
        assert_eq!(set.names(), vec!["cheap"]);
        assert_eq!(set.removed[0].0.name, "pricey");
    }

    #[test]
    fn survivors_sorted_by_decreasing_perf_and_power() {
        let set = bml_candidates(&catalog::table1()).unwrap();
        for w in set.kept.windows(2) {
            assert!(w[0].max_perf > w[1].max_perf);
            assert!(w[0].max_power > w[1].max_power);
        }
    }

    #[test]
    fn invalid_profile_propagates_error() {
        let bad = ArchProfile {
            name: "bad".into(),
            idle_power: 5.0,
            max_power: 1.0, // max < idle
            max_perf: 10.0,
            on_duration: 0.0,
            on_energy: 0.0,
            off_duration: 0.0,
            off_energy: 0.0,
        };
        assert!(filter_candidates(&[bad]).is_err());
    }

    #[test]
    fn never_optimal_horizon_override() {
        // With a horizon of 1 only the cheapest-at-rate-1 machine is kept.
        let set = filter_candidates(&catalog::table1()).unwrap();
        let set = remove_never_optimal(set, Some(1)).unwrap();
        assert_eq!(set.names(), vec!["raspberry"]);
    }
}
