//! Reconfiguration planning: the switch-on / switch-off action sets that
//! move the data center from one machine configuration to another, with
//! their time and energy overheads (paper Secs. I, IV and V-C: "dynamic
//! resources management with switch on and off actions, whose time and
//! energy overheads are taken into account").

use serde::{Deserialize, Serialize};

use crate::profile::ArchProfile;

/// A machine configuration: how many nodes of each candidate architecture
/// are powered on (indexed Big first, like the candidate list).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration(pub Vec<u32>);

impl Configuration {
    /// All-off configuration for `n` architectures.
    pub fn off(n: usize) -> Self {
        Configuration(vec![0; n])
    }

    /// Number of architectures.
    pub fn n_archs(&self) -> usize {
        self.0.len()
    }

    /// Total machines powered on.
    pub fn total_nodes(&self) -> u32 {
        self.0.iter().sum()
    }

    /// Serving capacity of this configuration given the profiles.
    pub fn capacity(&self, profiles: &[ArchProfile]) -> f64 {
        profiles
            .iter()
            .zip(&self.0)
            .map(|(p, &c)| f64::from(c) * p.max_perf)
            .sum()
    }

    /// `true` when no machine is on.
    pub fn is_off(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }
}

impl From<Vec<u32>> for Configuration {
    fn from(v: Vec<u32>) -> Self {
        Configuration(v)
    }
}

/// A planned transition between two configurations.
///
/// Switch-ons of every architecture boot in parallel. Switch-offs follow a
/// *graceful handover*: when the plan also boots machines, retiring
/// machines keep serving until the slowest boot completes and only then
/// begin their shutdown — otherwise an architecture swap (e.g. sixteen
/// Mediums replaced by one Big) would leave the application unserved for
/// the whole boot, violating the QoS the scheduler exists to protect.
/// The plan's `duration` is therefore `max(on durations) + max(off
/// durations)`; the scheduler takes no other decision until it elapses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigPlan {
    /// Configuration before the transition.
    pub from: Configuration,
    /// Configuration after the transition.
    pub target: Configuration,
    /// `(architecture index, node count)` pairs to boot.
    pub switch_on: Vec<(usize, u32)>,
    /// `(architecture index, node count)` pairs to shut down.
    pub switch_off: Vec<(usize, u32)>,
    /// Wall-clock duration of the whole reconfiguration (s): the longest
    /// individual action.
    pub duration: f64,
    /// Total transition energy (J): sum of every action's On/Off energy.
    pub energy: f64,
}

impl ReconfigPlan {
    /// Number of machines booted by this plan.
    pub fn nodes_switched_on(&self) -> u32 {
        self.switch_on.iter().map(|&(_, c)| c).sum()
    }

    /// Number of machines shut down by this plan.
    pub fn nodes_switched_off(&self) -> u32 {
        self.switch_off.iter().map(|&(_, c)| c).sum()
    }

    /// Average extra power (W) the transition draws over its duration,
    /// if the transition energy is spread uniformly (how the simulator
    /// accounts it).
    pub fn mean_transition_power(&self) -> f64 {
        if self.duration > 0.0 {
            self.energy / self.duration
        } else {
            0.0
        }
    }
}

/// Compute the plan moving `from` to `to`; `None` when they are identical.
pub fn plan_reconfiguration(
    profiles: &[ArchProfile],
    from: &Configuration,
    to: &Configuration,
) -> Option<ReconfigPlan> {
    assert_eq!(from.n_archs(), profiles.len());
    assert_eq!(to.n_archs(), profiles.len());
    if from == to {
        return None;
    }
    let mut switch_on = Vec::new();
    let mut switch_off = Vec::new();
    let mut max_on = 0.0f64;
    let mut max_off = 0.0f64;
    let mut energy = 0.0f64;
    for (k, p) in profiles.iter().enumerate() {
        let (f, t) = (from.0[k], to.0[k]);
        if t > f {
            let n = t - f;
            switch_on.push((k, n));
            max_on = max_on.max(p.on_duration);
            energy += f64::from(n) * p.on_energy;
        } else if f > t {
            let n = f - t;
            switch_off.push((k, n));
            max_off = max_off.max(p.off_duration);
            energy += f64::from(n) * p.off_energy;
        }
    }
    // Graceful handover: shutdowns start only after the boots complete.
    let duration = max_on + max_off;
    Some(ReconfigPlan {
        from: from.clone(),
        target: to.clone(),
        switch_on,
        switch_off,
        duration,
        energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn profiles() -> Vec<ArchProfile> {
        catalog::paper_bml_trio()
    }

    #[test]
    fn identical_configs_no_plan() {
        let p = profiles();
        let c = Configuration(vec![1, 2, 3]);
        assert!(plan_reconfiguration(&p, &c, &c).is_none());
    }

    #[test]
    fn boot_one_big() {
        let p = profiles();
        let plan = plan_reconfiguration(
            &p,
            &Configuration(vec![0, 0, 0]),
            &Configuration(vec![1, 0, 0]),
        )
        .unwrap();
        assert_eq!(plan.switch_on, vec![(0, 1)]);
        assert!(plan.switch_off.is_empty());
        assert_eq!(plan.duration, 189.0);
        assert_eq!(plan.energy, 21341.0);
        assert_eq!(plan.nodes_switched_on(), 1);
    }

    #[test]
    fn mixed_transition_handover_duration() {
        let p = profiles();
        // Boot 2 chromebooks (12 s each), then shut 1 raspberry (14 s):
        // graceful handover => 12 + 14 = 26 s; energy = 2*49.3 + 36.2.
        let plan = plan_reconfiguration(
            &p,
            &Configuration(vec![0, 0, 1]),
            &Configuration(vec![0, 2, 0]),
        )
        .unwrap();
        assert_eq!(plan.duration, 26.0);
        assert!((plan.energy - (2.0 * 49.3 + 36.2)).abs() < 1e-9);
        assert_eq!(plan.nodes_switched_on(), 2);
        assert_eq!(plan.nodes_switched_off(), 1);
    }

    #[test]
    fn scale_down_uses_off_costs() {
        let p = profiles();
        let plan = plan_reconfiguration(
            &p,
            &Configuration(vec![2, 0, 0]),
            &Configuration(vec![1, 0, 0]),
        )
        .unwrap();
        assert_eq!(plan.duration, 10.0);
        assert_eq!(plan.energy, 657.0);
    }

    #[test]
    fn mean_transition_power() {
        let p = profiles();
        let plan = plan_reconfiguration(
            &p,
            &Configuration(vec![0, 0, 0]),
            &Configuration(vec![1, 0, 0]),
        )
        .unwrap();
        assert!((plan.mean_transition_power() - 21341.0 / 189.0).abs() < 1e-9);
    }

    #[test]
    fn configuration_helpers() {
        let p = profiles();
        let c = Configuration(vec![1, 2, 3]);
        assert_eq!(c.total_nodes(), 6);
        assert_eq!(c.capacity(&p), 1331.0 + 66.0 + 27.0);
        assert!(!c.is_off());
        assert!(Configuration::off(3).is_off());
        let from_vec: Configuration = vec![1, 0, 0].into();
        assert_eq!(from_vec.n_archs(), 3);
    }

    #[test]
    fn zero_duration_plan_power_is_zero() {
        let instant = vec![ArchProfile::without_transitions("i", 1.0, 2.0, 10.0).unwrap()];
        let plan = plan_reconfiguration(&instant, &Configuration(vec![0]), &Configuration(vec![1]))
            .unwrap();
        assert_eq!(plan.duration, 0.0);
        assert_eq!(plan.mean_transition_power(), 0.0);
    }
}
