//! Precomputed combination tables: the ideal combination and its power
//! for every integer rate, built once and queried in O(1).
//!
//! The simulator asks "combination for rate r?" millions of times over an
//! 87-day trace; rates in the paper's metric are integers, so the whole
//! answer space up to the maximum provisioned rate fits in one table.
//! This is also how a production controller would deploy the methodology:
//! Steps 1-5 run offline, the table ships to the decision loop.

use serde::{Deserialize, Serialize};

use crate::bml::BmlInfrastructure;

/// Precomputed per-integer-rate combinations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationTable {
    /// `counts[r]` = machines per architecture for rate `r`.
    counts: Vec<Vec<u32>>,
    /// `power[r]` = nominal combination power (W) at rate `r`.
    power: Vec<f64>,
    n_archs: usize,
}

impl CombinationTable {
    /// Build the table for integer rates `0..=max_rate`.
    pub fn build(bml: &BmlInfrastructure, max_rate: u64) -> Self {
        let n_archs = bml.n_archs();
        let mut counts = Vec::with_capacity(max_rate as usize + 1);
        let mut power = Vec::with_capacity(max_rate as usize + 1);
        for r in 0..=max_rate {
            let combo = bml.ideal_combination(r as f64);
            counts.push(combo.counts(n_archs));
            power.push(combo.power(bml.candidates()));
        }
        CombinationTable {
            counts,
            power,
            n_archs,
        }
    }

    /// Highest rate covered by the table.
    pub fn max_rate(&self) -> u64 {
        (self.counts.len() - 1) as u64
    }

    /// Number of candidate architectures.
    pub fn n_archs(&self) -> usize {
        self.n_archs
    }

    /// Machine counts for `rate`, rounded up to the next integer; rates
    /// beyond the table fall back to `None` (caller recomputes).
    pub fn counts_for(&self, rate: f64) -> Option<&[u32]> {
        if rate < 0.0 {
            return self.counts.first().map(Vec::as_slice);
        }
        let idx = rate.ceil() as usize;
        self.counts.get(idx).map(Vec::as_slice)
    }

    /// Nominal combination power (W) for `rate` (ceil-indexed).
    pub fn power_for(&self, rate: f64) -> Option<f64> {
        if rate < 0.0 {
            return self.power.first().copied();
        }
        self.power.get(rate.ceil() as usize).copied()
    }

    /// Memory footprint estimate in bytes (diagnostics).
    pub fn approx_bytes(&self) -> usize {
        self.counts.len() * (self.n_archs * 4 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn table() -> (BmlInfrastructure, CombinationTable) {
        let bml = BmlInfrastructure::build(&catalog::table1()).unwrap();
        let t = CombinationTable::build(&bml, 5_400);
        (bml, t)
    }

    #[test]
    fn table_matches_direct_computation() {
        let (bml, t) = table();
        for r in [0u64, 1, 9, 10, 100, 528, 529, 1331, 2000, 5324] {
            let direct = bml.ideal_combination(r as f64);
            assert_eq!(
                t.counts_for(r as f64).unwrap(),
                direct.counts(3).as_slice(),
                "rate {r}"
            );
            assert!((t.power_for(r as f64).unwrap() - direct.power(bml.candidates())).abs() < 1e-9);
        }
    }

    #[test]
    fn fractional_rates_round_up() {
        let (bml, t) = table();
        let direct = bml.ideal_combination(10.0);
        assert_eq!(t.counts_for(9.2).unwrap(), direct.counts(3).as_slice());
    }

    #[test]
    fn out_of_range_is_none() {
        let (_, t) = table();
        assert!(t.counts_for(5_401.0).is_none());
        assert!(t.power_for(1e9).is_none());
        assert_eq!(t.max_rate(), 5_400);
    }

    #[test]
    fn negative_rate_maps_to_zero() {
        let (_, t) = table();
        assert_eq!(t.counts_for(-5.0).unwrap(), &[0, 0, 0]);
        assert_eq!(t.power_for(-5.0).unwrap(), 0.0);
    }

    #[test]
    fn footprint_is_small() {
        let (_, t) = table();
        // ~5400 rates x 20 bytes: well under a megabyte.
        assert!(t.approx_bytes() < 1_000_000);
    }
}
