//! Precomputed combination table: the piecewise structure of the Step-5
//! ideal-combination function, materialized once per infrastructure and
//! queried in O(log n).
//!
//! The paper's greedy fill ([`crate::combination::ideal_fill`]) is a pure
//! function of the rate whose *shape* only changes at finitely many
//! breakpoints — the minimum utilization thresholds and the full-node
//! capacity multiples of each architecture. Between two breakpoints the
//! set of fully loaded nodes is constant and only the rate of the single
//! partially loaded node varies (linearly). Moreover the function is
//! periodic in the Big architecture's capacity: adding one Big period to
//! the rate adds exactly one fully loaded Big and leaves the remainder
//! pattern unchanged.
//!
//! [`CombinationTable::build`] walks the greedy cascade symbolically and
//! records one [`Segment`] per piece over a single Big period (a few dozen
//! segments for the paper's Table I catalog). [`CombinationTable::lookup`]
//! then answers any rate — unbounded, not just a precomputed range — with
//! one floor division (whole Big periods) plus one binary search, instead
//! of re-running the full combination search. The remainder arithmetic
//! replays the greedy fill's own subtraction order, so lookups are
//! branch-equivalent to the direct computation (property-tested in
//! `tests/proptests.rs` over arbitrary catalogs and loads).
//!
//! This is how a production controller deploys the methodology: Steps 1-5
//! run offline, the table ships to the 1 Hz decision loop
//! ([`crate::scheduler`], `bml-sim`'s engine and sweep runners).

use serde::{Deserialize, Serialize};

// The greedy fill's own tolerance: the table reproduces its EPS semantics
// exactly, so the constant is shared rather than duplicated.
use crate::combination::{Combination, NodeAlloc, EPS};
use crate::profile::ArchProfile;

/// One piece of the piecewise ideal-combination function, valid on
/// `[start, next_segment.start)` of the remainder domain `[0, period)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Segment {
    /// Remainder rate where this piece begins.
    start: f64,
    /// Fully loaded nodes along the greedy cascade, `(arch, count)` with
    /// ascending arch index and `count > 0`; excludes the whole-period
    /// Bigs handled outside the table.
    full: Vec<(usize, u32)>,
    /// Architecture that serves this piece's linear remainder with one
    /// partially loaded node (dropped when the remainder is ~zero).
    partial_arch: usize,
    /// Nominal power of the full nodes (W), precomputed for
    /// [`CombinationTable::power_for`].
    full_power: f64,
}

/// The ideal-combination function of one infrastructure, precomputed as
/// its breakpoint segments. See the module docs for the representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationTable {
    profiles: Vec<ArchProfile>,
    /// The Big architecture's capacity: the period of the combination
    /// function.
    period: f64,
    /// The Big architecture's minimum utilization threshold: below it (by
    /// the greedy fill's EPS tolerance) no full Bigs are taken at all, so
    /// the periodic decomposition must not apply. Normally <= `period`,
    /// but a single sub-unit-capacity architecture gets the base
    /// threshold of 1 and then `threshold0 > period`.
    threshold0: f64,
    /// Pieces over `[0, max(period, threshold0))`, sorted by ascending
    /// `start`, first at 0.
    segments: Vec<Segment>,
}

impl CombinationTable {
    /// Materialize the piecewise combination function of `profiles` (the
    /// candidate set, Big first) with their Step-4 `thresholds`.
    pub fn build(profiles: &[ArchProfile], thresholds: &[f64]) -> Self {
        assert!(!profiles.is_empty(), "need at least one architecture");
        assert_eq!(
            profiles.len(),
            thresholds.len(),
            "one threshold per candidate architecture"
        );
        let period = profiles[0].max_perf;
        let threshold0 = thresholds[0];
        let mut segments = Vec::new();
        let mut prefix = Vec::new();
        // Remainders from the periodic branch live in [0, period); rates
        // below the Big threshold skip the tier and are looked up whole,
        // so when threshold0 > period the domain must extend to it.
        subdivide(
            profiles,
            thresholds,
            0,
            0.0,
            period.max(threshold0),
            0.0,
            &mut prefix,
            &mut segments,
        );
        debug_assert!(!segments.is_empty());
        debug_assert!(segments[0].start <= 0.0 + EPS);
        debug_assert!(segments.windows(2).all(|w| w[0].start <= w[1].start));
        CombinationTable {
            profiles: profiles.to_vec(),
            period,
            threshold0,
            segments,
        }
    }

    /// Number of candidate architectures.
    pub fn n_archs(&self) -> usize {
        self.profiles.len()
    }

    /// Number of pieces over one Big period (diagnostics).
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// The Big architecture's capacity — the period of the function.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Approximate memory footprint in bytes (diagnostics).
    pub fn approx_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| std::mem::size_of::<Segment>() + s.full.len() * 16)
            .sum::<usize>()
            + self.profiles.len() * std::mem::size_of::<ArchProfile>()
    }

    /// Locate `rate`: whole Big periods, the remainder's segment, and the
    /// partial-node rate (replaying the greedy fill's subtraction order).
    fn locate(&self, rate: f64) -> (u32, &Segment, f64) {
        // ideal_fill skips the Big tier entirely below its threshold (no
        // full nodes), so the periodic decomposition only applies at or
        // above it; both branches use ideal_fill's own expressions.
        let (big_full, rem) = if rate + EPS < self.threshold0 {
            (0u32, rate)
        } else {
            let q = (rate / self.period).floor() as u32;
            (q, rate - f64::from(q) * self.period)
        };
        let idx = self.segments.partition_point(|s| s.start <= rem);
        let seg = &self.segments[idx.max(1) - 1];
        let mut partial = rem;
        for &(arch, count) in &seg.full {
            partial -= f64::from(count) * self.profiles[arch].max_perf;
        }
        (big_full, seg, partial)
    }

    /// The ideal combination for `rate` in O(log segments): equivalent to
    /// [`crate::combination::ideal_fill`] over this table's catalog.
    pub fn lookup(&self, rate: f64) -> Combination {
        let mut combo = Combination {
            target_rate: rate,
            allocs: Vec::new(),
        };
        if rate <= 0.0 {
            return combo;
        }
        let (big_full, seg, partial) = self.locate(rate);
        if big_full > 0 {
            combo.allocs.push(NodeAlloc {
                arch: 0,
                full_nodes: big_full,
                partial_rate: None,
            });
        }
        for &(arch, count) in &seg.full {
            combo.allocs.push(NodeAlloc {
                arch,
                full_nodes: count,
                partial_rate: None,
            });
        }
        if partial > EPS {
            match combo.allocs.iter_mut().find(|a| a.arch == seg.partial_arch) {
                Some(a) => a.partial_rate = Some(partial),
                None => combo.allocs.push(NodeAlloc {
                    arch: seg.partial_arch,
                    full_nodes: 0,
                    partial_rate: Some(partial),
                }),
            }
        }
        combo
    }

    /// Machine counts per architecture for `rate` (allocating convenience
    /// over [`CombinationTable::counts_into`]).
    pub fn counts_for(&self, rate: f64) -> Vec<u32> {
        let mut out = vec![0u32; self.profiles.len()];
        self.counts_into(rate, &mut out);
        out
    }

    /// Fill `out` with the per-architecture machine counts for `rate`
    /// without allocating. `out.len()` must equal [`Self::n_archs`].
    pub fn counts_into(&self, rate: f64, out: &mut [u32]) {
        assert_eq!(out.len(), self.profiles.len());
        out.fill(0);
        if rate <= 0.0 {
            return;
        }
        let (big_full, seg, partial) = self.locate(rate);
        out[0] = big_full;
        for &(arch, count) in &seg.full {
            out[arch] += count;
        }
        if partial > EPS {
            out[seg.partial_arch] += 1;
        }
    }

    /// `true` when the ideal combination for `rate` has exactly `counts`
    /// machines per architecture. Allocation-free: this is the scheduler's
    /// per-second no-change test.
    pub fn counts_match(&self, rate: f64, counts: &[u32]) -> bool {
        assert_eq!(counts.len(), self.profiles.len());
        if rate <= 0.0 {
            return counts.iter().all(|&c| c == 0);
        }
        let (big_full, seg, partial) = self.locate(rate);
        let partial_arch = (partial > EPS).then_some(seg.partial_arch);
        let mut full = seg.full.iter().peekable();
        for (k, &have) in counts.iter().enumerate() {
            let mut expect = if k == 0 { big_full } else { 0 };
            if let Some(&&(arch, count)) = full.peek() {
                if arch == k {
                    expect += count;
                    full.next();
                }
            }
            if partial_arch == Some(k) {
                expect += 1;
            }
            if expect != have {
                return false;
            }
        }
        true
    }

    /// Nominal power (W) of the ideal combination at `rate`, without
    /// building the combination: whole-period Bigs plus the segment's
    /// precomputed full-node power plus the partial node's linear model.
    pub fn power_for(&self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return 0.0;
        }
        let (big_full, seg, partial) = self.locate(rate);
        let mut power = f64::from(big_full) * self.profiles[0].max_power + seg.full_power;
        if partial > EPS {
            power += self.profiles[seg.partial_arch].power_at(partial);
        }
        power
    }
}

/// Recursively cut the remainder interval `[lo, hi)` seen by tier `k` into
/// segments, mirroring the greedy cascade of `ideal_fill`:
///
/// * remainders below `threshold - EPS` skip the tier entirely;
/// * above it, every capacity multiple adds one fully loaded node, and the
///   in-block leftover either stays here as the partial node (at or above
///   the threshold) or cascades to the smaller tiers.
///
/// `shift` maps tier-local remainders back to global rates (boundaries
/// only; lookup re-derives remainders with the greedy fill's own
/// arithmetic), `prefix` carries the full nodes accumulated along the
/// cascade path.
#[allow(clippy::too_many_arguments)]
fn subdivide(
    profiles: &[ArchProfile],
    thresholds: &[f64],
    k: usize,
    mut lo: f64,
    hi: f64,
    shift: f64,
    prefix: &mut Vec<(usize, u32)>,
    out: &mut Vec<Segment>,
) {
    if lo >= hi {
        return;
    }
    let n = profiles.len();
    if k == n {
        // Past the Little tier: ideal_fill's final fallback serves any
        // leftover with one partially loaded Little node.
        push_segment(out, shift + lo, prefix, n - 1, profiles);
        return;
    }
    let t_eff = thresholds[k] - EPS;
    let p = profiles[k].max_perf;
    if lo < t_eff {
        subdivide(
            profiles,
            thresholds,
            k + 1,
            lo,
            hi.min(t_eff),
            shift,
            prefix,
            out,
        );
        if hi <= t_eff {
            return;
        }
        lo = t_eff;
    }
    // Tier k is active on [lo, hi): one block per full-node multiple.
    let mut m = (lo / p).floor();
    while m * p < hi {
        let base = m * p;
        let z_lo = (lo.max(base) - base).max(0.0);
        let z_hi = hi.min(base + p) - base;
        let full_here = m as u32;
        if full_here > 0 {
            prefix.push((k, full_here));
        }
        let cascade_hi = z_hi.min(t_eff);
        if z_lo < cascade_hi {
            subdivide(
                profiles,
                thresholds,
                k + 1,
                z_lo,
                cascade_hi,
                shift + base,
                prefix,
                out,
            );
        }
        if z_hi > t_eff {
            push_segment(out, shift + base + z_lo.max(t_eff), prefix, k, profiles);
        }
        if full_here > 0 {
            prefix.pop();
        }
        m += 1.0;
    }
}

/// Append a segment, precomputing its full-node power.
fn push_segment(
    out: &mut Vec<Segment>,
    start: f64,
    prefix: &[(usize, u32)],
    partial_arch: usize,
    profiles: &[ArchProfile],
) {
    let full_power = prefix
        .iter()
        .map(|&(arch, count)| f64::from(count) * profiles[arch].max_power)
        .sum();
    out.push(Segment {
        start,
        full: prefix.to_vec(),
        partial_arch,
        full_power,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bml::BmlInfrastructure;
    use crate::catalog;

    fn paper() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    #[test]
    fn table_matches_direct_computation_at_landmarks() {
        let bml = paper();
        let t = bml.combination_table();
        for r in [
            0.0, 0.5, 1.0, 8.0, 9.0, 9.5, 10.0, 33.0, 100.0, 528.0, 528.5, 529.0, 1000.0, 1331.0,
            1332.0, 2000.0, 2662.0, 3000.0, 5324.0, 123456.7,
        ] {
            let direct = bml.ideal_combination_direct(r);
            let looked = t.lookup(r);
            assert_eq!(looked, direct, "combination mismatch at rate {r}");
            assert_eq!(
                t.counts_for(r),
                direct.counts(bml.n_archs()),
                "counts mismatch at rate {r}"
            );
            assert!(
                (t.power_for(r) - direct.power(bml.candidates())).abs() < 1e-9,
                "power mismatch at rate {r}"
            );
        }
    }

    #[test]
    fn quickstart_combination_via_table() {
        let bml = paper();
        assert_eq!(bml.combination_table().counts_for(100.0), vec![0, 3, 1]);
    }

    #[test]
    fn period_is_big_capacity_and_segments_are_few() {
        let bml = paper();
        let t = bml.combination_table();
        assert_eq!(t.period(), 1331.0);
        assert_eq!(t.n_archs(), 3);
        // A few dozen pieces cover every possible rate.
        assert!(t.n_segments() < 200, "{} segments", t.n_segments());
        assert!(t.approx_bytes() < 100_000);
    }

    #[test]
    fn counts_match_agrees_with_counts_for() {
        let bml = paper();
        let t = bml.combination_table();
        for r in [0.0, 1.0, 9.5, 10.0, 100.0, 529.0, 2000.0] {
            let counts = t.counts_for(r);
            assert!(t.counts_match(r, &counts), "self-match failed at {r}");
            let mut off = counts.clone();
            off[0] += 1;
            assert!(!t.counts_match(r, &off), "false match at {r}");
        }
    }

    #[test]
    fn counts_into_reuses_buffer() {
        let bml = paper();
        let t = bml.combination_table();
        let mut buf = vec![9, 9, 9];
        t.counts_into(100.0, &mut buf);
        assert_eq!(buf, vec![0, 3, 1]);
        t.counts_into(0.0, &mut buf);
        assert_eq!(buf, vec![0, 0, 0]);
    }

    #[test]
    fn negative_and_zero_rates_are_empty() {
        let bml = paper();
        let t = bml.combination_table();
        assert!(t.lookup(0.0).is_empty());
        assert!(t.lookup(-5.0).is_empty());
        assert_eq!(t.power_for(-5.0), 0.0);
        assert!(t.counts_match(-5.0, &[0, 0, 0]));
        assert!(!t.counts_match(-5.0, &[1, 0, 0]));
    }

    #[test]
    fn unbounded_rates_keep_matching() {
        // The old dense table capped out; the piecewise table is total.
        let bml = paper();
        let t = bml.combination_table();
        for r in [10_000.0, 1_000_000.0, 12_345_678.9] {
            let direct = bml.ideal_combination_direct(r);
            assert_eq!(t.lookup(r), direct, "rate {r}");
        }
    }

    #[test]
    fn single_architecture_table() {
        let solo = vec![ArchProfile::without_transitions("only", 2.0, 10.0, 10.0).unwrap()];
        let bml = BmlInfrastructure::from_candidates(solo).unwrap();
        let t = bml.combination_table();
        for r in [0.0, 0.5, 1.0, 9.0, 10.0, 25.0, 100.0] {
            assert_eq!(t.lookup(r), bml.ideal_combination_direct(r), "rate {r}");
        }
    }

    #[test]
    fn sub_unit_capacity_threshold_exceeds_period() {
        // A single architecture with max_perf < 1 gets the base threshold
        // of 1, which exceeds its own capacity: below the threshold the
        // greedy fill takes no full nodes at all, so the periodic
        // decomposition must not strip whole periods there.
        let tiny = vec![ArchProfile::without_transitions("tiny", 1.0, 2.0, 0.5).unwrap()];
        let bml = BmlInfrastructure::from_candidates(tiny).unwrap();
        let t = bml.combination_table();
        for r in [0.0, 0.2, 0.5, 0.7, 0.9, 1.0, 1.2, 2.0, 2.3, 7.75] {
            assert_eq!(t.lookup(r), bml.ideal_combination_direct(r), "rate {r}");
            assert_eq!(
                t.counts_for(r),
                bml.ideal_combination_direct(r).counts(1),
                "counts at rate {r}"
            );
        }
        // The reviewer's original reproduction: 0.7 must be one partial
        // node serving 0.7, not a full node plus a 0.2 partial.
        let combo = t.lookup(0.7);
        assert_eq!(combo.total_nodes(), 1);
        assert_eq!(combo.allocs[0].partial_rate, Some(0.7));
    }

    #[test]
    fn sub_unit_little_in_multi_arch_catalog() {
        // A Little below 1 req/s capacity alongside a normal Big: the
        // base threshold (1) exceeds the Little's capacity, exercising
        // the full-take-then-fallback path inside the cascade.
        let pair = vec![
            ArchProfile::without_transitions("big", 10.0, 50.0, 100.0).unwrap(),
            ArchProfile::without_transitions("nano", 0.1, 0.5, 0.5).unwrap(),
        ];
        let bml = BmlInfrastructure::from_candidates(pair).unwrap();
        let t = bml.combination_table();
        for r in [0.0, 0.2, 0.5, 0.7, 1.0, 3.3, 50.0, 99.9, 100.0, 250.6] {
            assert_eq!(t.lookup(r), bml.ideal_combination_direct(r), "rate {r}");
        }
    }
}
