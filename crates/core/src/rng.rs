//! Counter-based (stateless) random sampling shared by the whole
//! workspace.
//!
//! Sequential RNGs (`StdRng` drawn once per simulated second) force any
//! stochastic run onto the per-second reference engine: skipping a second
//! would skip a draw and change every sample after it. The samplers here
//! are **pure functions of a seed and a counter** — `sample(t)` never
//! depends on how many samples were drawn before `t` — so noisy
//! predictions and failure injection become piecewise-segmentable and the
//! event-driven replay engine can jump over them.
//!
//! # Keying scheme (stable across refactors)
//!
//! Everything derives from [`splitmix64`] (Steele, Lea & Flood 2014) via
//! [`mix`]:
//!
//! * grid cell seeds: `splitmix64(root_seed ^ splitmix64(scenario_index))`
//!   = `mix(root_seed, scenario_index)` (unchanged from bml-grid/v1);
//! * prediction noise: the error factor of resample window `w` draws its
//!   gaussian from stream `mix(seed, w)`;
//! * failure injection: inter-failure gap `i` of machine slot `j` of
//!   architecture `k` draws from stream `mix(mix(mix(seed, k), j), i)`.
//!
//! Given the same seed, every sample is reproducible forever — across
//! thread counts, stepping modes, and refactors of the call sites. Tests
//! pin [`splitmix64`] to the published reference vector; change nothing
//! here without bumping every artifact schema that embeds seeds.

/// Version tag of the keying scheme documented above. Content-addressed
/// caches (bml-grid's cell cache) fold this into their keys: any change
/// to the derivations — a new mixing function, different counter
/// nesting, a resample-boundary change — must bump it so cached results
/// computed under the old scheme are invalidated instead of replayed.
pub const KEYING_VERSION: &str = "bml-rng/v1";

/// The splitmix64 mixing function (Steele, Lea & Flood 2014): the
/// standard way to expand one root seed into a stream of decorrelated
/// values. Pure, so derived seeds never depend on execution order or
/// thread count.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Key a seed with one counter: `splitmix64(seed ^ splitmix64(counter))`.
///
/// This is the PRF every counter-based sampler is built from; chain it
/// (`mix(mix(seed, a), b)`) to key on multiple counters. The same
/// construction derives bml-grid's per-cell seeds, so one root seed
/// reaches every sample of every cell through pure mixing.
pub fn mix(seed: u64, counter: u64) -> u64 {
    splitmix64(seed ^ splitmix64(counter))
}

/// Map a mixed word to a uniform `f64` in `[0, 1)`: the top 53 bits over
/// 2^53, the densest dyadic grid an `f64` resolves exactly.
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// One standard-normal sample from stream `key`, truncated to
/// `[-3, 3]` — the same Box-Muller + 3-sigma truncation the sequential
/// `NoisyPredictor` used, now a pure function of its key.
pub fn truncated_gaussian(key: u64) -> f64 {
    let u1 = unit_f64(mix(key, 0)).max(f64::EPSILON); // ln(0) guard
    let u2 = unit_f64(mix(key, 1));
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    z.clamp(-3.0, 3.0)
}

/// One geometric inter-event gap (in whole trials, `>= 1`) for a
/// per-trial success probability `p`, inverted from the uniform sample of
/// stream `key`: the number of independent Bernoulli(p) trials up to and
/// including the first success. `p >= 1` always returns 1; callers must
/// not ask for `p <= 0` (no event ever — there is no finite gap).
pub fn geometric_gap(p: f64, key: u64) -> u64 {
    debug_assert!(p > 0.0, "geometric_gap needs a positive success rate");
    if p >= 1.0 {
        return 1;
    }
    let u = unit_f64(mix(key, 0));
    // Inverse CDF: smallest g >= 1 with 1 - (1-p)^g >= u.
    let g = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    // u in [0, 1) keeps g finite; the +1 makes g=0 (u below p) a 1-gap.
    g as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values from the canonical splitmix64 (seed 1234567).
        assert_eq!(splitmix64(1234567), 6457827717110365317);
        assert_eq!(splitmix64(0), 16294208416658607535);
    }

    #[test]
    fn mix_matches_grid_seed_derivation() {
        // bml-grid has always derived cell seeds exactly this way; `mix`
        // must stay byte-compatible with existing artifacts.
        assert_eq!(mix(1998, 3), splitmix64(1998 ^ splitmix64(3)));
    }

    #[test]
    fn unit_is_in_range_and_spread() {
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for i in 0..10_000u64 {
            let u = unit_f64(mix(42, i));
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gaussian_is_truncated_standard_normal() {
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n).map(|i| truncated_gaussian(mix(7, i))).collect();
        assert!(samples.iter().all(|z| (-3.0..=3.0).contains(z)));
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|z| (z - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var.sqrt() - 1.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn gaussian_is_a_pure_function_of_its_key() {
        assert_eq!(truncated_gaussian(123), truncated_gaussian(123));
        assert_ne!(truncated_gaussian(123), truncated_gaussian(124));
    }

    #[test]
    fn geometric_gap_mean_inverts_rate() {
        let p = 0.01;
        let n = 50_000u64;
        let total: u64 = (0..n).map(|i| geometric_gap(p, mix(9, i))).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1.0 / p).abs() < 5.0,
            "mean gap {mean} vs {}",
            1.0 / p
        );
    }

    #[test]
    fn geometric_gap_edges() {
        assert_eq!(geometric_gap(1.0, 5), 1);
        assert_eq!(geometric_gap(2.0, 5), 1);
        for i in 0..1_000 {
            assert!(geometric_gap(0.9999, mix(1, i)) >= 1);
        }
    }
}
