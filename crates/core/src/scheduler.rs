//! The pro-active reconfiguration scheduler (paper Sec. V-C).
//!
//! At each time step the scheduler receives a load *prediction* (the paper
//! emulates prediction with the maximum real load over a sliding look-ahead
//! window of `2 x` the longest switch-on duration — 378 s for Table I
//! hardware). It computes the ideal BML combination for that prediction
//! and, if it differs from the current hardware configuration, launches a
//! reconfiguration. While a reconfiguration is in flight **no other
//! decision can be made**; the next prediction window starts from the
//! reconfiguration completion time. Otherwise the window slides one time
//! step forward.

use serde::{Deserialize, Serialize};

use crate::bml::BmlInfrastructure;
use crate::profile::ArchProfile;
use crate::reconfig::{plan_reconfiguration, Configuration, ReconfigPlan};

/// The look-ahead window length the paper uses: twice the longest switch-on
/// duration among the candidate architectures, in whole seconds.
///
/// For the paper's Table I trio this is `2 x 189 s = 378 s`.
pub fn paper_window_length(profiles: &[ArchProfile]) -> u64 {
    let longest = profiles
        .iter()
        .map(|p| p.on_duration)
        .fold(0.0f64, f64::max);
    (2.0 * longest).ceil() as u64
}

/// Outcome of one scheduler step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// A reconfiguration is in flight; no decision until `until` (s).
    Locked {
        /// Completion time of the in-flight reconfiguration.
        until: u64,
    },
    /// The ideal combination equals the current configuration; the window
    /// slides one step.
    NoChange,
    /// A reconfiguration starts now; the plan carries the actions and
    /// overheads.
    Reconfigure(ReconfigPlan),
}

/// Counters accumulated over a scheduler run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Steps on which the scheduler was free to decide.
    pub decisions: u64,
    /// Steps skipped because a reconfiguration was in flight.
    pub locked_steps: u64,
    /// Number of reconfigurations launched.
    pub reconfigurations: u64,
    /// Total machines booted.
    pub nodes_switched_on: u64,
    /// Total machines shut down.
    pub nodes_switched_off: u64,
    /// Total transition energy committed (J).
    pub reconfig_energy: f64,
    /// Total seconds spent reconfiguring.
    pub reconfig_seconds: f64,
}

/// The pro-active scheduler state machine.
///
/// Drive it by calling [`ProActiveScheduler::decide`] once per time step
/// with the current prediction; apply the returned plan to your execution
/// substrate (the `bml-sim` crate's cluster, or a real testbed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProActiveScheduler {
    current: Configuration,
    busy_until: Option<u64>,
    stats: SchedulerStats,
}

impl ProActiveScheduler {
    /// Start with every machine off.
    pub fn new(n_archs: usize) -> Self {
        Self::with_initial(Configuration::off(n_archs))
    }

    /// Start from a given configuration (e.g. the combination for the
    /// first prediction, so the trace does not begin with a cold boot).
    pub fn with_initial(initial: Configuration) -> Self {
        ProActiveScheduler {
            current: initial,
            busy_until: None,
            stats: SchedulerStats::default(),
        }
    }

    /// The configuration the scheduler believes is (or will be, once the
    /// in-flight reconfiguration completes) powered on.
    pub fn current(&self) -> &Configuration {
        &self.current
    }

    /// `true` while a reconfiguration is in flight at time `now`.
    pub fn is_locked(&self, now: u64) -> bool {
        self.busy_until.is_some_and(|u| now < u)
    }

    /// Completion time of the in-flight reconfiguration, if any.
    pub fn busy_until(&self) -> Option<u64> {
        self.busy_until
    }

    /// Event-driven replay hint: the next time after `now` at which the
    /// scheduler must be consulted even if its inputs do not change —
    /// the unlock instant of the in-flight reconfiguration. `None` means
    /// the scheduler only needs waking when the prediction changes
    /// (its decision is a pure function of the prediction and the
    /// current configuration).
    pub fn next_wakeup(&self, now: u64) -> Option<u64> {
        self.busy_until.filter(|&u| u > now)
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// One scheduler step at time `now` (s) with `predicted_load`.
    ///
    /// Reconfiguration durations are rounded *up* to whole seconds when
    /// computing the lock-out, matching the paper's 1 s decision grid.
    pub fn decide(&mut self, now: u64, predicted_load: f64, bml: &BmlInfrastructure) -> Decision {
        if let Some(until) = self.busy_until {
            if now < until {
                self.stats.locked_steps += 1;
                return Decision::Locked { until };
            }
            self.busy_until = None;
        }
        self.stats.decisions += 1;
        let predicted = predicted_load.max(0.0);
        // Allocation-free no-change test against the precomputed table:
        // on steady load (the common case, once per second) the decision
        // costs one binary search and one counts comparison.
        if bml
            .combination_table()
            .counts_match(predicted, &self.current.0)
        {
            return Decision::NoChange;
        }
        let target = Configuration(bml.ideal_combination(predicted).counts(bml.n_archs()));
        if target == self.current {
            return Decision::NoChange;
        }
        let plan = plan_reconfiguration(bml.candidates(), &self.current, &target)
            .expect("configs differ, so a plan exists");
        let lock = plan.duration.ceil() as u64;
        if lock > 0 {
            self.busy_until = Some(now + lock);
        }
        self.stats.reconfigurations += 1;
        self.stats.nodes_switched_on += u64::from(plan.nodes_switched_on());
        self.stats.nodes_switched_off += u64::from(plan.nodes_switched_off());
        self.stats.reconfig_energy += plan.energy;
        self.stats.reconfig_seconds += plan.duration;
        self.current = target;
        Decision::Reconfigure(plan)
    }

    /// Force-set the current configuration (used by substrates that apply
    /// an initial placement outside the decision loop).
    pub fn set_current(&mut self, config: Configuration) {
        self.current = config;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    #[test]
    fn paper_window_is_378s() {
        assert_eq!(paper_window_length(&catalog::table1()), 378);
        assert_eq!(paper_window_length(&catalog::paper_bml_trio()), 378);
    }

    #[test]
    fn first_decision_boots_for_prediction() {
        let bml = bml();
        let mut s = ProActiveScheduler::new(bml.n_archs());
        match s.decide(0, 10.0, &bml) {
            Decision::Reconfigure(plan) => {
                // 10 req/s = exactly the Medium threshold -> 1 chromebook.
                assert_eq!(plan.target.0, vec![0, 1, 0]);
                assert_eq!(plan.duration, 12.0);
            }
            d => panic!("expected reconfigure, got {d:?}"),
        }
        assert!(s.is_locked(5));
        assert!(!s.is_locked(12));
    }

    #[test]
    fn locked_while_reconfiguring() {
        let bml = bml();
        let mut s = ProActiveScheduler::new(bml.n_archs());
        s.decide(0, 600.0, &bml); // boots a Big: 189 s
        for t in 1..189 {
            assert_eq!(s.decide(t, 1.0, &bml), Decision::Locked { until: 189 });
        }
        // At completion the scheduler is free again.
        match s.decide(189, 1.0, &bml) {
            Decision::Reconfigure(plan) => {
                assert_eq!(plan.target.0, vec![0, 0, 1]);
            }
            d => panic!("expected reconfigure after unlock, got {d:?}"),
        }
    }

    #[test]
    fn next_wakeup_tracks_the_lock() {
        let bml = bml();
        let mut s = ProActiveScheduler::new(bml.n_archs());
        assert_eq!(s.next_wakeup(0), None);
        s.decide(0, 600.0, &bml); // boots a Big: locked until 189
        assert_eq!(s.next_wakeup(0), Some(189));
        assert_eq!(s.next_wakeup(188), Some(189));
        assert_eq!(s.next_wakeup(189), None);
    }

    #[test]
    fn no_change_when_combination_stable() {
        let bml = bml();
        let mut s = ProActiveScheduler::new(bml.n_archs());
        s.decide(0, 10.0, &bml);
        assert_eq!(s.decide(12, 10.0, &bml), Decision::NoChange);
        assert_eq!(s.decide(13, 10.0, &bml), Decision::NoChange);
        assert_eq!(s.stats().reconfigurations, 1);
        assert_eq!(s.stats().decisions, 3);
    }

    #[test]
    fn stats_accumulate() {
        let bml = bml();
        let mut s = ProActiveScheduler::new(bml.n_archs());
        s.decide(0, 10.0, &bml); // on: 1 chromebook (49.3 J, 12 s)
        s.decide(12, 1.0, &bml); // off chromebook, on raspberry
        let st = s.stats();
        assert_eq!(st.reconfigurations, 2);
        assert_eq!(st.nodes_switched_on, 2);
        assert_eq!(st.nodes_switched_off, 1);
        assert!(st.reconfig_energy > 49.0);
    }

    #[test]
    fn zero_prediction_powers_everything_off() {
        let bml = bml();
        let mut s = ProActiveScheduler::with_initial(Configuration(vec![1, 0, 0]));
        match s.decide(0, 0.0, &bml) {
            Decision::Reconfigure(plan) => {
                assert!(plan.target.is_off());
                assert_eq!(plan.nodes_switched_off(), 1);
            }
            d => panic!("expected power-down, got {d:?}"),
        }
    }

    #[test]
    fn negative_prediction_treated_as_zero() {
        let bml = bml();
        let mut s = ProActiveScheduler::new(bml.n_archs());
        assert_eq!(s.decide(0, -5.0, &bml), Decision::NoChange);
    }

    #[test]
    fn instantaneous_transitions_do_not_lock() {
        let profiles = vec![
            ArchProfile::without_transitions("big", 10.0, 50.0, 100.0).unwrap(),
            ArchProfile::without_transitions("little", 1.0, 3.0, 10.0).unwrap(),
        ];
        let bml = BmlInfrastructure::from_candidates(profiles).unwrap();
        let mut s = ProActiveScheduler::new(2);
        match s.decide(0, 5.0, &bml) {
            Decision::Reconfigure(_) => {}
            d => panic!("{d:?}"),
        }
        // No lock: can decide again immediately.
        assert!(!s.is_locked(0));
        match s.decide(0, 50.0, &bml) {
            Decision::Reconfigure(_) => {}
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn one_reconfiguration_at_a_time_invariant() {
        // Property: between a Reconfigure and its completion, every decide
        // returns Locked.
        let bml = bml();
        let mut s = ProActiveScheduler::new(bml.n_archs());
        let mut in_flight_until: Option<u64> = None;
        let loads = [5.0, 700.0, 20.0, 1400.0, 3.0, 0.0, 2500.0];
        for (i, &l) in loads.iter().cycle().take(2000).enumerate() {
            let t = i as u64;
            let d = s.decide(t, l + (i % 7) as f64, &bml);
            match d {
                Decision::Locked { until } => {
                    let u = in_flight_until.expect("locked without reconfig");
                    assert_eq!(u, until);
                    assert!(t < until);
                }
                Decision::Reconfigure(_) => {
                    if let Some(u) = in_flight_until {
                        assert!(t >= u, "reconfig launched while locked");
                    }
                    in_flight_until = s.busy_until();
                }
                Decision::NoChange => {}
            }
        }
    }
}
