//! The end-to-end BML infrastructure: Steps 1-5 assembled into one type
//! (paper Sec. IV), plus the reference curves of Fig. 4 ("Big" and
//! "BML linear").

use serde::{Deserialize, Serialize};

use crate::candidates::{bml_candidates, class_labels, CandidateSet, RemovalReason};
use crate::combination::{config_power, ideal_fill, Combination, SplitPolicy};
use crate::crossing::{compute_thresholds, pairwise_thresholds, Threshold};
use crate::errors::BmlError;
use crate::profile::{stack_power, ArchProfile};
use crate::table::CombinationTable;

/// A fully built Big-Medium-Little infrastructure.
///
/// Construction runs the paper's pipeline: validate profiles (Step 1 data),
/// filter candidates (Step 2 + the Step-3 never-optimal removal), then
/// compute the minimum utilization thresholds (Steps 3-4). Afterwards it
/// answers "which machines should be on for rate *r*?" (Step 5) and "how
/// much power would that draw?" queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BmlInfrastructure {
    candidates: Vec<ArchProfile>,
    thresholds: Vec<Threshold>,
    pairwise: Vec<Threshold>,
    removed: Vec<(ArchProfile, RemovalReason)>,
    /// Piecewise Step-5 output, materialized once so the per-second
    /// scheduler/simulator hot path answers in O(log segments).
    table: CombinationTable,
}

impl BmlInfrastructure {
    /// Build from raw Step-1 profiles (any order, dominated machines
    /// allowed — they will be filtered).
    pub fn build(profiles: &[ArchProfile]) -> Result<Self, BmlError> {
        let CandidateSet { kept, removed } = bml_candidates(profiles)?;
        let thresholds = compute_thresholds(&kept);
        let pairwise = pairwise_thresholds(&kept);
        let rates: Vec<f64> = thresholds.iter().map(|t| t.rate).collect();
        let table = CombinationTable::build(&kept, &rates);
        Ok(BmlInfrastructure {
            candidates: kept,
            thresholds,
            pairwise,
            removed,
            table,
        })
    }

    /// Build from profiles already known to be the candidate set (skips
    /// filtering; profiles must be sorted by decreasing `max_perf`).
    pub fn from_candidates(candidates: Vec<ArchProfile>) -> Result<Self, BmlError> {
        if candidates.is_empty() {
            return Err(BmlError::NoCandidates);
        }
        for p in &candidates {
            p.validate()?;
        }
        let thresholds = compute_thresholds(&candidates);
        let pairwise = pairwise_thresholds(&candidates);
        let rates: Vec<f64> = thresholds.iter().map(|t| t.rate).collect();
        let table = CombinationTable::build(&candidates, &rates);
        Ok(BmlInfrastructure {
            candidates,
            thresholds,
            pairwise,
            removed: Vec::new(),
            table,
        })
    }

    /// The surviving candidate profiles, Big first.
    pub fn candidates(&self) -> &[ArchProfile] {
        &self.candidates
    }

    /// Number of candidate architectures.
    pub fn n_archs(&self) -> usize {
        self.candidates.len()
    }

    /// Step-4 minimum utilization thresholds, Big first.
    pub fn thresholds(&self) -> &[Threshold] {
        &self.thresholds
    }

    /// Step-3 (pairwise-only) thresholds, for Fig.-2-left style analyses.
    pub fn pairwise_thresholds(&self) -> &[Threshold] {
        &self.pairwise
    }

    /// Profiles rejected during filtering, with reasons.
    pub fn removed(&self) -> &[(ArchProfile, RemovalReason)] {
        &self.removed
    }

    /// BML class labels (`Big`, `Medium`, `Little`, ...), Big first.
    pub fn labels(&self) -> Vec<String> {
        class_labels(self.candidates.len())
    }

    /// Index of the Big (most powerful) architecture: always 0.
    pub fn big(&self) -> &ArchProfile {
        &self.candidates[0]
    }

    /// The Little (least powerful) architecture.
    pub fn little(&self) -> &ArchProfile {
        self.candidates.last().expect("non-empty by construction")
    }

    /// Threshold rates as a plain `f64` slice-compatible vector.
    pub fn threshold_rates(&self) -> Vec<f64> {
        self.thresholds.iter().map(|t| t.rate).collect()
    }

    /// Step 5: the ideal machine combination for `rate`.
    ///
    /// Served from the precomputed [`CombinationTable`] in O(log
    /// segments); branch-equivalent to the direct greedy fill
    /// ([`Self::ideal_combination_direct`]).
    pub fn ideal_combination(&self, rate: f64) -> Combination {
        self.table.lookup(rate)
    }

    /// Step 5 computed directly with the paper's greedy fill, bypassing
    /// the precomputed table. The reference implementation the table is
    /// property-tested against; prefer [`Self::ideal_combination`] on hot
    /// paths.
    pub fn ideal_combination_direct(&self, rate: f64) -> Combination {
        let rates = self.threshold_rates();
        ideal_fill(&self.candidates, &rates, rate)
    }

    /// The precomputed piecewise Step-5 table backing
    /// [`Self::ideal_combination`].
    pub fn combination_table(&self) -> &CombinationTable {
        &self.table
    }

    /// Power (W) of the ideal combination at `rate` — the BML curve of
    /// Fig. 4. Allocation-free via the precomputed table.
    pub fn power_at(&self, rate: f64) -> f64 {
        self.table.power_for(rate)
    }

    /// Power of a homogeneous stack of Big machines serving `rate` — the
    /// "Big" reference curve of Fig. 4 (and the per-day upper bounds of
    /// Fig. 5 when capped at a fixed node count).
    pub fn big_stack_power(&self, rate: f64) -> f64 {
        stack_power(self.big(), rate)
    }

    /// The "BML linear" reference of Fig. 4: a hypothetical machine whose
    /// idle power equals the Little's and whose max power/performance equal
    /// the Big's — "an achievable goal, and how our solution approaches it".
    pub fn bml_linear_power(&self, rate: f64) -> f64 {
        let little = self.little();
        let big = self.big();
        if rate <= 0.0 {
            return little.idle_power;
        }
        let r = rate.min(big.max_perf);
        little.idle_power + (big.max_power - little.idle_power) * r / big.max_perf
    }

    /// Power of an arbitrary *configuration* (`counts[k]` machines of each
    /// architecture powered on) serving `load` under `policy`; returns
    /// `(power_watts, served_rate)`.
    pub fn config_power(&self, counts: &[u32], load: f64, policy: SplitPolicy) -> (f64, f64) {
        config_power(&self.candidates, counts, load, policy)
    }

    /// Serving capacity of a configuration.
    pub fn config_capacity(&self, counts: &[u32]) -> f64 {
        self.candidates
            .iter()
            .zip(counts)
            .map(|(p, &c)| f64::from(c) * p.max_perf)
            .sum()
    }

    /// Ideal combination under *bounded* machine pools (`limits[k]` nodes
    /// of each architecture exist). The paper assumes unlimited pools but
    /// notes the extension ("cases of existing heterogeneous infrastructure
    /// where there is limited numbers of machines", Sec. IV-A).
    ///
    /// The greedy fill is rerun with per-architecture caps; if total
    /// capacity cannot cover `rate` an [`BmlError::InsufficientCapacity`]
    /// is returned.
    pub fn ideal_combination_bounded(
        &self,
        rate: f64,
        limits: &[u32],
    ) -> Result<Combination, BmlError> {
        assert_eq!(limits.len(), self.candidates.len());
        let capacity: f64 = self
            .candidates
            .iter()
            .zip(limits)
            .map(|(p, &c)| f64::from(c) * p.max_perf)
            .sum();
        if rate > capacity + 1e-9 {
            return Err(BmlError::InsufficientCapacity {
                requested: rate,
                available: capacity,
            });
        }
        // Greedy fill with caps: biggest first, capped full nodes; the
        // remainder cascades down. A final upward pass absorbs anything a
        // capped Little tier could not take.
        let rates = self.threshold_rates();
        let mut combo = Combination {
            target_rate: rate,
            allocs: Vec::new(),
        };
        if rate <= 0.0 {
            return Ok(combo);
        }
        let mut rem = rate;
        let mut used = vec![0u32; limits.len()];
        for (k, p) in self.candidates.iter().enumerate() {
            if rem <= 1e-9 {
                break;
            }
            if rem + 1e-9 < rates[k] && k + 1 < self.candidates.len() {
                continue;
            }
            let full = ((rem / p.max_perf).floor() as u32).min(limits[k]);
            used[k] = full;
            rem -= f64::from(full) * p.max_perf;
            let last_tier = k + 1 == self.candidates.len();
            let take_partial = rem > 1e-9
                && used[k] < limits[k]
                && rem <= p.max_perf
                && (rem + 1e-9 >= rates[k] || last_tier);
            let partial = if take_partial {
                used[k] += 1;
                let r = rem;
                rem = 0.0;
                Some(r)
            } else {
                None
            };
            if full > 0 || partial.is_some() {
                combo.allocs.push(crate::combination::NodeAlloc {
                    arch: k,
                    full_nodes: full,
                    partial_rate: partial,
                });
            }
            if rem <= 1e-9 {
                rem = 0.0;
                break;
            }
        }
        // Anything left over (capped tiers below) goes back up to the
        // cheapest tier with spare nodes, biggest first.
        if rem > 1e-9 {
            for (k, p) in self.candidates.iter().enumerate() {
                if rem <= 1e-9 {
                    break;
                }
                let spare = limits[k] - used[k];
                if spare == 0 {
                    continue;
                }
                let full = ((rem / p.max_perf).floor() as u32).min(spare);
                let partial = if f64::from(full) * p.max_perf + 1e-9 < rem && full < spare {
                    Some(rem - f64::from(full) * p.max_perf)
                } else {
                    None
                };
                if full > 0 || partial.is_some() {
                    rem -= f64::from(full) * p.max_perf + partial.unwrap_or(0.0);
                    used[k] += full + u32::from(partial.is_some());
                    combo.allocs.push(crate::combination::NodeAlloc {
                        arch: k,
                        full_nodes: full,
                        partial_rate: partial,
                    });
                }
            }
        }
        debug_assert!(rem <= 1e-6, "bounded fill left remainder {rem}");
        Ok(combo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn paper_bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    #[test]
    fn build_reproduces_paper_candidates_and_thresholds() {
        let bml = paper_bml();
        let names: Vec<_> = bml.candidates().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["paravance", "chromebook", "raspberry"]);
        assert_eq!(bml.threshold_rates(), vec![529.0, 10.0, 1.0]);
        assert_eq!(bml.labels(), vec!["Big", "Medium", "Little"]);
        assert_eq!(bml.removed().len(), 2); // taurus + graphene
    }

    #[test]
    fn bml_power_never_exceeds_big_stack() {
        let bml = paper_bml();
        for r in 1..=1331u64 {
            let rate = r as f64;
            assert!(
                bml.power_at(rate) <= bml.big_stack_power(rate) + 1e-9,
                "BML must beat all-Big at rate {r}"
            );
        }
    }

    #[test]
    fn bml_tracks_bml_linear_goal() {
        // "BML linear" is a reference line, not a bound: the staircase of
        // tiny machines dips below it at low rates (one full Raspberry at
        // 9 req/s draws 3.7 W, under the steep straight line), while in Big
        // territory (>= 529 req/s) BML sits above it, meeting it exactly at
        // maxPerf(Big).
        let bml = paper_bml();
        assert!(bml.power_at(9.0) < bml.bml_linear_power(9.0));
        for r in 529..=1331u64 {
            let rate = r as f64;
            assert!(
                bml.power_at(rate) + 1e-9 >= bml.bml_linear_power(rate),
                "BML below linear goal at rate {r}"
            );
        }
        assert!((bml.power_at(1331.0) - bml.bml_linear_power(1331.0)).abs() < 1e-9);
    }

    #[test]
    fn bml_linear_endpoints() {
        let bml = paper_bml();
        assert!((bml.bml_linear_power(0.0) - 3.1).abs() < 1e-9);
        assert!((bml.bml_linear_power(1331.0) - 200.5).abs() < 1e-9);
    }

    #[test]
    fn from_candidates_skips_filtering() {
        let bml = BmlInfrastructure::from_candidates(catalog::paper_bml_trio()).unwrap();
        assert_eq!(bml.threshold_rates(), vec![529.0, 10.0, 1.0]);
        assert!(bml.removed().is_empty());
    }

    #[test]
    fn from_candidates_rejects_empty() {
        assert!(BmlInfrastructure::from_candidates(vec![]).is_err());
    }

    #[test]
    fn big_and_little_accessors() {
        let bml = paper_bml();
        assert_eq!(bml.big().name, "paravance");
        assert_eq!(bml.little().name, "raspberry");
    }

    #[test]
    fn config_capacity_sums_nodes() {
        let bml = paper_bml();
        assert_eq!(bml.config_capacity(&[1, 2, 3]), 1331.0 + 66.0 + 27.0);
    }

    #[test]
    fn bounded_fill_matches_unbounded_when_roomy() {
        let bml = paper_bml();
        for r in [1.0, 10.0, 100.0, 529.0, 2000.0] {
            let unbounded = bml.ideal_combination(r).counts(3);
            let bounded = bml
                .ideal_combination_bounded(r, &[100, 100, 100])
                .unwrap()
                .counts(3);
            assert_eq!(unbounded, bounded, "rate {r}");
        }
    }

    #[test]
    fn bounded_fill_respects_caps() {
        let bml = paper_bml();
        // Only 1 Big available; 2000 req/s needs help from Mediums.
        let combo = bml
            .ideal_combination_bounded(2000.0, &[1, 100, 100])
            .unwrap();
        let counts = combo.counts(3);
        assert_eq!(counts[0], 1);
        assert!(combo.assigned_rate(bml.candidates()) + 1e-6 >= 2000.0);
        assert!(counts[1] >= 20); // 669 remainder needs >= 20 chromebooks
    }

    #[test]
    fn bounded_fill_insufficient_capacity_errors() {
        let bml = paper_bml();
        let err = bml
            .ideal_combination_bounded(10_000.0, &[1, 1, 1])
            .unwrap_err();
        assert!(matches!(err, BmlError::InsufficientCapacity { .. }));
    }

    #[test]
    fn bounded_fill_zero_rate() {
        let bml = paper_bml();
        let combo = bml.ideal_combination_bounded(0.0, &[1, 1, 1]).unwrap();
        assert!(combo.is_empty());
    }

    #[test]
    fn bounded_fill_overflows_to_bigger_tier() {
        let bml = paper_bml();
        // Littles capped at 0, rate below Medium threshold: must still be
        // served (by a Medium, the next tier with spare nodes).
        let combo = bml.ideal_combination_bounded(5.0, &[10, 10, 0]).unwrap();
        assert!(combo.assigned_rate(bml.candidates()) + 1e-9 >= 5.0);
        let counts = combo.counts(3);
        assert_eq!(counts[2], 0);
        assert!(counts[0] + counts[1] >= 1);
    }

    #[test]
    fn serde_roundtrip_via_debug() {
        // The type derives Serialize/Deserialize; a cheap structural check.
        let bml = paper_bml();
        let cloned = bml.clone();
        assert_eq!(bml, cloned);
    }
}
