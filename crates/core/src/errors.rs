//! Error types for the BML core library.

use std::fmt;

/// Errors produced while building or operating a BML infrastructure.
#[derive(Debug, Clone, PartialEq)]
pub enum BmlError {
    /// A profile failed validation (Step 1 sanity checks).
    InvalidProfile {
        /// Codename of the offending profile.
        name: String,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// Candidate filtering left no usable architecture.
    NoCandidates,
    /// A requested performance rate cannot be satisfied (bounded machine
    /// pools only; the paper's default assumes unlimited pools).
    InsufficientCapacity {
        /// The rate that was requested.
        requested: f64,
        /// The maximum rate the bounded pools can deliver.
        available: f64,
    },
    /// An architecture index was out of range for this infrastructure.
    UnknownArchitecture(usize),
    /// A reconfiguration was requested while another is still in flight;
    /// the paper forbids overlapping reconfigurations ("During the
    /// reconfiguration, no other decision can be made").
    ReconfigurationInFlight {
        /// Time (s) at which the in-flight reconfiguration completes.
        busy_until: u64,
    },
}

impl fmt::Display for BmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmlError::InvalidProfile { name, reason } => {
                write!(f, "invalid profile '{name}': {reason}")
            }
            BmlError::NoCandidates => {
                write!(f, "no BML candidate architectures remain after filtering")
            }
            BmlError::InsufficientCapacity {
                requested,
                available,
            } => write!(
                f,
                "insufficient capacity: requested {requested} but pools provide {available}"
            ),
            BmlError::UnknownArchitecture(i) => write!(f, "unknown architecture index {i}"),
            BmlError::ReconfigurationInFlight { busy_until } => {
                write!(f, "reconfiguration in flight until t={busy_until}s")
            }
        }
    }
}

impl std::error::Error for BmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BmlError::InvalidProfile {
            name: "x".into(),
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("invalid profile 'x'"));
        assert!(BmlError::NoCandidates.to_string().contains("no BML"));
        let e = BmlError::InsufficientCapacity {
            requested: 10.0,
            available: 5.0,
        };
        assert!(e.to_string().contains("10"));
        assert!(BmlError::UnknownArchitecture(3).to_string().contains('3'));
        assert!(BmlError::ReconfigurationInFlight { busy_until: 42 }
            .to_string()
            .contains("42"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(BmlError::NoCandidates);
        assert!(!e.to_string().is_empty());
    }
}
