//! Built-in architecture catalogs.
//!
//! Two catalogs ship with the library:
//!
//! * [`table1`] — the five real machines the paper profiled (Table I):
//!   Paravance, Taurus, Graphene (Grid'5000 x86 servers), a Samsung
//!   Chromebook (ARM Cortex-A15) and a Raspberry Pi 2B+ (ARM Cortex-A7).
//!   Shipping these verbatim pins our experiments to the paper's numbers.
//! * [`illustrative`] — four synthetic architectures A-D used by the paper's
//!   Section IV walk-through (Figs. 1-2): A/B/C become Big/Medium/Little and
//!   D is discarded at Step 2 because its maximum power exceeds A's while it
//!   performs worse.

use crate::profile::ArchProfile;

/// Paravance (Grid'5000): 2x Intel Xeon E5-2630v3, 8 cores each.
/// Paper Table I row 1.
pub fn paravance() -> ArchProfile {
    ArchProfile::new(
        "paravance",
        69.9,
        200.5,
        1331.0,
        189.0,
        21341.0,
        10.0,
        657.0,
    )
    .expect("catalog profile is valid")
}

/// Taurus (Grid'5000): 2x Intel Xeon E5-2630, 6 cores each.
/// Paper Table I row 2. Removed at Step 2 (dominated by Paravance).
pub fn taurus() -> ArchProfile {
    ArchProfile::new("taurus", 95.8, 223.7, 860.0, 164.0, 20628.0, 11.0, 1173.0)
        .expect("catalog profile is valid")
}

/// Graphene (Grid'5000): Intel Xeon X3440, 4 cores.
/// Paper Table I row 3. Removed at Step 3 (never the most efficient option).
pub fn graphene() -> ArchProfile {
    ArchProfile::new("graphene", 47.7, 123.8, 272.0, 71.0, 4940.0, 16.0, 760.0)
        .expect("catalog profile is valid")
}

/// Samsung Chromebook: ARM Cortex-A15, 2 cores.
/// Paper Table I row 4. The *Medium* of the final infrastructure.
pub fn chromebook() -> ArchProfile {
    ArchProfile::new("chromebook", 4.0, 7.6, 33.0, 12.0, 49.3, 21.0, 77.6)
        .expect("catalog profile is valid")
}

/// Raspberry Pi 2B+: ARM Cortex-A7, 4 cores.
/// Paper Table I row 5. The *Little* of the final infrastructure.
pub fn raspberry() -> ArchProfile {
    ArchProfile::new("raspberry", 3.1, 3.7, 9.0, 16.0, 40.5, 14.0, 36.2)
        .expect("catalog profile is valid")
}

/// All five profiled machines, in Table I order.
pub fn table1() -> Vec<ArchProfile> {
    vec![paravance(), taurus(), graphene(), chromebook(), raspberry()]
}

/// The three machines that survive Steps 2-3 on the paper's data:
/// Paravance (Big), Chromebook (Medium), Raspberry (Little).
pub fn paper_bml_trio() -> Vec<ArchProfile> {
    vec![paravance(), chromebook(), raspberry()]
}

/// Illustrative architecture A of Section IV — becomes *Big*.
///
/// The paper never publishes numeric values for A-D (they exist only as
/// curves in Figs. 1-2); these values are chosen so every qualitative
/// property of the walk-through holds:
/// Medium's threshold lands at 150 (Fig. 2 left: "around a performance
/// rate of 150", below which "up to five Little nodes" are preferable),
/// and Step 4 visibly raises Big's threshold over Step 3's.
pub fn illustrative_a() -> ArchProfile {
    ArchProfile::new("A", 70.0, 130.0, 500.0, 120.0, 11000.0, 10.0, 500.0)
        .expect("catalog profile is valid")
}

/// Illustrative architecture B of Section IV — becomes *Medium*.
pub fn illustrative_b() -> ArchProfile {
    ArchProfile::new("B", 18.0, 46.8, 160.0, 40.0, 1300.0, 12.0, 300.0)
        .expect("catalog profile is valid")
}

/// Illustrative architecture C of Section IV — becomes *Little*.
pub fn illustrative_c() -> ArchProfile {
    ArchProfile::new("C", 3.0, 9.0, 30.0, 15.0, 50.0, 12.0, 30.0).expect("catalog profile is valid")
}

/// Illustrative architecture D of Section IV — discarded at Step 2:
/// its maximum power (140 W) exceeds A's (130 W) although it performs
/// worse (450 < 500), so it "would not improve energy proportionality".
pub fn illustrative_d() -> ArchProfile {
    ArchProfile::new("D", 90.0, 140.0, 450.0, 100.0, 9500.0, 10.0, 450.0)
        .expect("catalog profile is valid")
}

/// The four illustrative architectures of Section IV, Figure 1.
pub fn illustrative() -> Vec<ArchProfile> {
    vec![
        illustrative_a(),
        illustrative_b(),
        illustrative_c(),
        illustrative_d(),
    ]
}

/// Look a catalog profile up by codename (case-insensitive).
pub fn by_name(name: &str) -> Option<ArchProfile> {
    let n = name.to_ascii_lowercase();
    table1()
        .into_iter()
        .chain(illustrative())
        .find(|p| p.name.to_ascii_lowercase() == n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let t = table1();
        assert_eq!(t.len(), 5);
        let par = &t[0];
        assert_eq!(par.name, "paravance");
        assert_eq!(par.max_perf, 1331.0);
        assert_eq!(par.idle_power, 69.9);
        assert_eq!(par.max_power, 200.5);
        assert_eq!(par.on_duration, 189.0);
        assert_eq!(par.on_energy, 21341.0);
        assert_eq!(par.off_duration, 10.0);
        assert_eq!(par.off_energy, 657.0);
        let rasp = &t[4];
        assert_eq!(rasp.max_perf, 9.0);
        assert_eq!(rasp.idle_power, 3.1);
        assert_eq!(rasp.max_power, 3.7);
    }

    #[test]
    fn all_catalog_profiles_validate() {
        for p in table1().into_iter().chain(illustrative()) {
            p.validate().unwrap();
        }
    }

    #[test]
    fn taurus_dominated_by_paravance() {
        assert!(taurus().is_dominated_by(&paravance()));
    }

    #[test]
    fn illustrative_d_dominated_by_a() {
        assert!(illustrative_d().is_dominated_by(&illustrative_a()));
    }

    #[test]
    fn illustrative_ordering_big_medium_little() {
        let (a, b, c) = (illustrative_a(), illustrative_b(), illustrative_c());
        assert!(a.max_perf > b.max_perf && b.max_perf > c.max_perf);
        assert!(a.max_power > b.max_power && b.max_power > c.max_power);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("Paravance").unwrap().name, "paravance");
        assert_eq!(by_name("a").unwrap().name, "A");
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn longest_on_duration_is_paravance_189s() {
        // The paper's look-ahead window is 2 x the longest On duration
        // (378 s); that longest duration is Paravance's 189 s.
        let longest = table1()
            .iter()
            .map(|p| p.on_duration)
            .fold(0.0f64, f64::max);
        assert_eq!(longest, 189.0);
    }
}
