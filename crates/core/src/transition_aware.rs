//! Transition-aware scheduling — the paper's announced future work
//! (Sec. VI): "It is also worth considering other hardware combinations
//! than pre-computed BML combinations as reconfiguration possibilities,
//! and take in account their corresponding overheads when taking
//! reconfiguration decisions."
//!
//! The baseline [`crate::scheduler::ProActiveScheduler`] always jumps to
//! the *ideal* combination for the prediction, paying whatever On/Off
//! overhead that implies. This module generates a small set of candidate
//! configurations around the ideal one (including "stay put" and
//! keep-the-extra-machines variants), scores each candidate by its
//! expected energy over the decision horizon — serving energy **plus**
//! transition energy amortized over the window — and picks the cheapest
//! feasible one.
//!
//! On smooth load this behaves exactly like the baseline; on churn-heavy
//! load it suppresses reconfigurations whose transition energy exceeds
//! what the better-fitting combination saves within the horizon.

use serde::{Deserialize, Serialize};

use crate::bml::BmlInfrastructure;
use crate::combination::SplitPolicy;
use crate::reconfig::{plan_reconfiguration, Configuration, ReconfigPlan};
use crate::scheduler::{Decision, SchedulerStats};

/// Parameters of the transition-aware scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionAwareConfig {
    /// Horizon (s) over which serving energy differences are compared and
    /// transition energy is amortized. A natural choice is the prediction
    /// window (the paper's 378 s).
    pub horizon_s: f64,
    /// Load-split model used to estimate serving power.
    pub split: SplitPolicy,
    /// Also consider the configurations that keep each architecture's
    /// current (higher) node count instead of shrinking it.
    pub consider_keep_variants: bool,
}

impl TransitionAwareConfig {
    /// Defaults tied to the paper's window.
    pub fn paper() -> Self {
        TransitionAwareConfig {
            horizon_s: 378.0,
            split: SplitPolicy::EfficiencyGreedy,
            consider_keep_variants: true,
        }
    }
}

/// A scored candidate configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredCandidate {
    /// The candidate configuration.
    pub config: Configuration,
    /// Expected serving energy over the horizon (J).
    pub serving_energy_j: f64,
    /// Transition energy from the current configuration (J).
    pub transition_energy_j: f64,
    /// Sum of the two: the decision metric.
    pub total_energy_j: f64,
    /// Whether the candidate can serve the predicted load at all.
    pub feasible: bool,
}

/// The transition-aware pro-active scheduler. Drop-in alternative to
/// [`crate::scheduler::ProActiveScheduler`]: same `decide` contract, same
/// lock-out semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionAwareScheduler {
    config: TransitionAwareConfig,
    current: Configuration,
    busy_until: Option<u64>,
    stats: SchedulerStats,
    /// Candidates evaluated on the last unlocked decision (diagnostics).
    pub last_candidates: Vec<ScoredCandidate>,
}

impl TransitionAwareScheduler {
    /// Start with every machine off.
    pub fn new(n_archs: usize, config: TransitionAwareConfig) -> Self {
        Self::with_initial(Configuration::off(n_archs), config)
    }

    /// Start from a given configuration.
    pub fn with_initial(initial: Configuration, config: TransitionAwareConfig) -> Self {
        TransitionAwareScheduler {
            config,
            current: initial,
            busy_until: None,
            stats: SchedulerStats::default(),
            last_candidates: Vec::new(),
        }
    }

    /// The configuration the scheduler is committed to.
    pub fn current(&self) -> &Configuration {
        &self.current
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// `true` while a reconfiguration is in flight at `now`.
    pub fn is_locked(&self, now: u64) -> bool {
        self.busy_until.is_some_and(|u| now < u)
    }

    /// Completion time of the in-flight reconfiguration, if any.
    pub fn busy_until(&self) -> Option<u64> {
        self.busy_until
    }

    /// Event-driven replay hint; same contract as
    /// [`crate::scheduler::ProActiveScheduler::next_wakeup`].
    pub fn next_wakeup(&self, now: u64) -> Option<u64> {
        self.busy_until.filter(|&u| u > now)
    }

    /// Generate the candidate configurations for a prediction.
    fn candidates(&self, predicted: f64, bml: &BmlInfrastructure) -> Vec<Configuration> {
        let n = bml.n_archs();
        let ideal = Configuration(bml.combination_table().counts_for(predicted));
        let mut out = vec![ideal.clone()];
        // Staying put is always a candidate (it may be infeasible).
        if self.current != ideal {
            out.push(self.current.clone());
        }
        if self.config.consider_keep_variants {
            // Keep the current count of each architecture where it exceeds
            // the ideal (avoid switch-offs we may regret), one arch at a
            // time and all at once.
            let mut all = ideal.clone();
            for k in 0..n {
                if self.current.0[k] > ideal.0[k] {
                    let mut v = ideal.clone();
                    v.0[k] = self.current.0[k];
                    if !out.contains(&v) {
                        out.push(v);
                    }
                    all.0[k] = self.current.0[k];
                }
            }
            if !out.contains(&all) {
                out.push(all);
            }
        }
        out
    }

    /// Score one candidate against the prediction.
    fn score(
        &self,
        candidate: &Configuration,
        predicted: f64,
        bml: &BmlInfrastructure,
    ) -> ScoredCandidate {
        let feasible = candidate.capacity(bml.candidates()) + 1e-9 >= predicted;
        let (power, _) = bml.config_power(&candidate.0, predicted, self.config.split);
        let serving = power * self.config.horizon_s;
        let transition = plan_reconfiguration(bml.candidates(), &self.current, candidate)
            .map_or(0.0, |p| p.energy);
        ScoredCandidate {
            config: candidate.clone(),
            serving_energy_j: serving,
            transition_energy_j: transition,
            total_energy_j: serving + transition,
            feasible,
        }
    }

    /// One decision step; same contract as the baseline scheduler.
    pub fn decide(&mut self, now: u64, predicted: f64, bml: &BmlInfrastructure) -> Decision {
        if let Some(until) = self.busy_until {
            if now < until {
                self.stats.locked_steps += 1;
                return Decision::Locked { until };
            }
            self.busy_until = None;
        }
        self.stats.decisions += 1;
        let predicted = predicted.max(0.0);

        let candidates = self.candidates(predicted, bml);
        let mut scored: Vec<ScoredCandidate> = candidates
            .iter()
            .map(|c| self.score(c, predicted, bml))
            .collect();
        scored.sort_by(|a, b| {
            b.feasible.cmp(&a.feasible).then(
                a.total_energy_j
                    .partial_cmp(&b.total_energy_j)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        self.last_candidates = scored.clone();
        let best = scored.first().expect("at least the ideal candidate");
        let target = best.config.clone();
        if target == self.current {
            return Decision::NoChange;
        }
        let plan: ReconfigPlan =
            plan_reconfiguration(bml.candidates(), &self.current, &target).expect("configs differ");
        let lock = plan.duration.ceil() as u64;
        if lock > 0 {
            self.busy_until = Some(now + lock);
        }
        self.stats.reconfigurations += 1;
        self.stats.nodes_switched_on += u64::from(plan.nodes_switched_on());
        self.stats.nodes_switched_off += u64::from(plan.nodes_switched_off());
        self.stats.reconfig_energy += plan.energy;
        self.stats.reconfig_seconds += plan.duration;
        self.current = target;
        Decision::Reconfigure(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::scheduler::ProActiveScheduler;

    fn bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    fn sched() -> TransitionAwareScheduler {
        TransitionAwareScheduler::new(3, TransitionAwareConfig::paper())
    }

    #[test]
    fn follows_ideal_on_first_decision() {
        let bml = bml();
        let mut s = sched();
        match s.decide(0, 100.0, &bml) {
            Decision::Reconfigure(plan) => {
                assert_eq!(plan.target.0, vec![0, 3, 1]);
            }
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn suppresses_uneconomical_shrink() {
        // A Big is on; the prediction drops slightly below the Big
        // threshold. Jumping to 16 Chromebooks + 1 Pi would pay
        // 16 x 49.3 + 40.5 + 657 J of transitions to save ~0.1 W x 378 s
        // (~38 J): the transition-aware scheduler stays put.
        let bml = bml();
        let mut s = TransitionAwareScheduler::with_initial(
            Configuration(vec![1, 0, 0]),
            TransitionAwareConfig::paper(),
        );
        match s.decide(0, 520.0, &bml) {
            Decision::NoChange => {}
            d => panic!("expected hold, got {d:?}"),
        }
        // The baseline scheduler, by contrast, churns.
        let mut base = ProActiveScheduler::with_initial(Configuration(vec![1, 0, 0]));
        assert!(matches!(
            base.decide(0, 520.0, &bml),
            Decision::Reconfigure(_)
        ));
    }

    #[test]
    fn still_shrinks_when_savings_justify_it() {
        // Prediction collapses to 5 req/s: keeping a 69.9 W Big against a
        // ~3.4 W Raspberry wastes ~66 W; over 378 s that's ~25 kJ — more
        // than the ~0.7 kJ of transition energy. Must reconfigure.
        let bml = bml();
        let mut s = TransitionAwareScheduler::with_initial(
            Configuration(vec![1, 0, 0]),
            TransitionAwareConfig::paper(),
        );
        match s.decide(0, 5.0, &bml) {
            Decision::Reconfigure(plan) => {
                assert_eq!(plan.target.0, vec![0, 0, 1]);
            }
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn infeasible_current_forces_growth() {
        // Load explodes beyond current capacity: staying put would be
        // cheapest in energy but infeasible; the scheduler must grow.
        let bml = bml();
        let mut s = TransitionAwareScheduler::with_initial(
            Configuration(vec![0, 0, 1]),
            TransitionAwareConfig::paper(),
        );
        match s.decide(0, 2_000.0, &bml) {
            Decision::Reconfigure(plan) => {
                assert!(plan.target.capacity(bml.candidates()) >= 2_000.0);
            }
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn lock_semantics_match_baseline() {
        let bml = bml();
        let mut s = sched();
        s.decide(0, 600.0, &bml); // boots a Big (189 s)
        assert!(s.is_locked(100));
        assert_eq!(s.decide(100, 1.0, &bml), Decision::Locked { until: 189 });
        assert!(!s.is_locked(189));
        assert_eq!(s.next_wakeup(100), Some(189));
        assert_eq!(s.next_wakeup(189), None);
    }

    #[test]
    fn candidates_include_keep_variants() {
        let bml = bml();
        let mut s = TransitionAwareScheduler::with_initial(
            Configuration(vec![1, 2, 0]),
            TransitionAwareConfig::paper(),
        );
        let _ = s.decide(0, 40.0, &bml);
        // Ideal for 40 is [0, 2, 0]-ish; keep-variants must include a
        // configuration retaining the Big.
        assert!(
            s.last_candidates.iter().any(|c| c.config.0[0] == 1),
            "{:?}",
            s.last_candidates
        );
    }

    #[test]
    fn never_picks_infeasible_when_feasible_exists() {
        let bml = bml();
        let mut s = sched();
        for (t, load) in [(0u64, 10.0), (400, 3000.0), (800, 1.0), (1200, 5000.0)] {
            let _ = s.decide(t, load, &bml);
            assert!(
                s.current().capacity(bml.candidates()) + 1e-9 >= load,
                "t={t} load={load} cap={}",
                s.current().capacity(bml.candidates())
            );
        }
    }

    #[test]
    fn stats_track_suppressed_churn() {
        // Oscillating prediction around the Big threshold: baseline
        // reconfigures every unlock; transition-aware holds.
        let bml = bml();
        let mut aware = TransitionAwareScheduler::with_initial(
            Configuration(vec![1, 0, 0]),
            TransitionAwareConfig::paper(),
        );
        let mut base = ProActiveScheduler::with_initial(Configuration(vec![1, 0, 0]));
        for t in 0..200u64 {
            let load = if t % 2 == 0 { 520.0 } else { 540.0 };
            let _ = aware.decide(t, load, &bml);
            let _ = base.decide(t, load, &bml);
        }
        assert_eq!(aware.stats().reconfigurations, 0);
        assert!(base.stats().reconfigurations > 0);
        assert!(base.stats().reconfig_energy > 0.0);
    }
}
