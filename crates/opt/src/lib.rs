//! # bml-opt — offline-optimal reconfiguration schedules
//!
//! The Fig. 5 bounds only *bracket* the schedulers: the theoretical lower
//! bound reconfigures for free every second, the upper bounds never
//! reconfigure at all. This crate computes the quantity in between that
//! the paper never reports — the **minimum energy actually achievable**
//! on a trace when switch-on/off energies and maturity delays are paid at
//! the real Table I prices, together with the reconfiguration schedule
//! that achieves it.
//!
//! ## The segment DP
//!
//! A load trace is a sequence of maximal constant-load runs
//! ([`bml_trace::segments`]). Within a run nothing changes, so an optimal
//! policy only reconfigures at run boundaries: moving a switch earlier or
//! later within a run can only add idle or ramp seconds without serving
//! anything new (the boundary-restricted schedule dominates). That turns
//! the continuous scheduling problem into a shortest path over
//! `(segment, machine combination)`:
//!
//! * **States** are the candidate machine combinations the
//!   [`bml_core::table::CombinationTable`] produces for the trace's
//!   distinct load levels (plus all-off, plus any
//!   [`OptOptions::extra_states`]). A state is feasible for a segment
//!   when its capacity covers the load — the QoS target is full service,
//!   the same constraint the ideal combination satisfies.
//! * **Serving cost** of a segment in state `s` is
//!   `config_power(s, load) * len`, the exact power the simulator meters
//!   for an online fleet `s` under the chosen split policy.
//! * **Transition cost** between consecutive segments prices every
//!   booted machine at its full ramp energy (`on_energy / on_duration`
//!   over `ceil(on_duration)` seconds — exactly what the cluster's ramp
//!   integrates to) and every shutdown at its ramp truncated at the
//!   horizon. Boots are *scheduled backwards*: a machine that must serve
//!   from boundary `t` starts booting at `t - ceil(on_duration)`, so a
//!   boot is only feasible when the boundary is at least one maturity
//!   delay into the trace.
//!
//! The transition relaxation is not the naive `O(K^2)` min over state
//! pairs: transition costs are separable per architecture, so one
//! up-sweep (boots) and one down-sweep (shutdowns) of a distance
//! transform along each axis of the count lattice computes the exact
//! min-plus convolution in `O(lattice)` per boundary. With
//! [`OptOptions::beam_width`] set, only the `w` cheapest states survive
//! each boundary — a lower-effort upper bound (never below the exact
//! optimum) for catalogs where the exact lattice blows up.
//!
//! ## Trust, but verify
//!
//! The DP's claimed energy is only as good as its cost model, so
//! [`solve_verified`] converts the optimal path into a
//! [`bml_sim::ReconfigRecord`] schedule — boots issued one maturity
//! delay early, shutdowns at the boundary, believed-configuration
//! targets — and replays it through [`bml_sim::replay_schedule`], the
//! same cluster lifecycle/power/QoS code the live engine runs. The two
//! energies must agree to 1e-9 relative or it panics: an optimality
//! number that the simulator cannot reproduce is a bug, not a result.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, BTreeSet};

use bml_core::bml::BmlInfrastructure;
use bml_core::combination::{config_power, SplitPolicy};
use bml_core::profile::ArchProfile;
use bml_sim::{replay_schedule, ReconfigRecord, ScenarioResult};
use bml_trace::LoadTrace;

const INF: f64 = f64::INFINITY;

/// Capacity slack when testing whether a combination covers a load —
/// the same 1e-9 the rest of the workspace uses for float comparisons.
const EPS: f64 = 1e-9;

/// The forward pass checkpoints its cost vector every this many
/// segments; backtracking recomputes one window at a time, keeping
/// memory at `O(K * (S / 4096 + 4096))` instead of `O(K * S)` (an
/// 87-day worldcup trace has millions of segments).
const CHECKPOINT_EVERY: usize = 4096;

/// Knobs for [`solve`].
#[derive(Debug, Clone, Default)]
pub struct OptOptions {
    /// Keep only the `w` cheapest states across each segment boundary.
    /// `None` (the default) runs the exact DP. A beam can dead-end on
    /// adversarial traces (every kept state unable to reach a feasible
    /// next state), in which case [`solve`] returns `None`; the exact DP
    /// always succeeds on a non-empty trace. Beam energies are upper
    /// bounds: never below the exact optimum (property-tested).
    pub beam_width: Option<usize>,
    /// Additional candidate states (machine counts per architecture,
    /// candidate order) to consider beyond the combination table's — e.g.
    /// the knapsack packing of [`bml_core::combination::optimal_dp`].
    pub extra_states: Vec<Vec<u32>>,
}

/// The DP's output: the minimum achievable energy and the schedule that
/// achieves it, in the engine's `reconfig_log` protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalSchedule {
    /// Minimum total energy (J) over the trace, transitions included —
    /// within the candidate state space, at full service.
    pub energy_j: f64,
    /// Machine counts online at t=0 (warm start, like the engine's
    /// non-cold-start scenarios).
    pub initial: Vec<u32>,
    /// The reconfiguration schedule: records sorted by time, each target
    /// interpreted against the previous one (believed-configuration
    /// protocol). Replayable by [`bml_sim::replay_schedule`].
    pub schedule: Vec<ReconfigRecord>,
    /// Number of DP states (diagnostics).
    pub n_states: usize,
    /// Number of constant-load segments (diagnostics).
    pub n_segments: usize,
    /// Number of segment boundaries the DP crossed
    /// (`n_segments - 1`, 0 for empty traces) — the unit of transition
    /// work, reported to telemetry.
    pub n_boundaries: usize,
    /// States the beam INF'd out during the forward pass (0 for the
    /// exact DP). Deterministic for a fixed trace/options, so it lives
    /// on the counters plane of run telemetry.
    pub states_pruned: u64,
}

/// Per-architecture transition prices, derived once from the profiles.
#[derive(Debug, Clone)]
struct ArchCost {
    /// Energy charged per booted machine: the lump `on_energy` for
    /// zero-duration boots, else the ramp integral
    /// `on_energy / on_duration * ceil(on_duration)`.
    on_cost: f64,
    /// Seconds before the boundary a boot must be issued: `ceil(on_duration)`,
    /// at least 1 (a zero-duration boot issued at `t` serves from `t+1`,
    /// exactly like the cluster promotes it).
    lead: u64,
    off_energy: f64,
    off_rate: f64,
    off_ceil: u64,
    off_zero: bool,
}

impl ArchCost {
    fn new(p: &ArchProfile) -> Self {
        let on_ceil = p.on_duration.ceil();
        ArchCost {
            on_cost: if p.on_duration > 0.0 {
                p.on_energy / p.on_duration * on_ceil
            } else {
                p.on_energy
            },
            lead: (on_ceil as u64).max(1),
            off_energy: p.off_energy,
            off_rate: if p.off_duration > 0.0 {
                p.off_energy / p.off_duration
            } else {
                0.0
            },
            off_ceil: p.off_duration.ceil() as u64,
            off_zero: p.off_duration == 0.0,
        }
    }

    /// Energy charged per machine shut down with `remaining` trace
    /// seconds left: the lump for zero-duration shutdowns, else the ramp
    /// truncated at the horizon (the simulator stops metering at the end
    /// of the trace).
    fn off_cost(&self, remaining: u64) -> f64 {
        if self.off_zero {
            self.off_energy
        } else {
            self.off_rate * self.off_ceil.min(remaining) as f64
        }
    }
}

/// One maximal constant-load run.
#[derive(Debug, Clone, Copy)]
struct Seg {
    start: u64,
    len: u64,
    /// Index into the distinct-load table.
    load: usize,
}

/// The assembled DP instance.
struct Dp<'a> {
    profiles: &'a [ArchProfile],
    horizon: u64,
    segs: Vec<Seg>,
    states: Vec<Vec<u32>>,
    /// `serve[load * K + s]`: serving power (W) of state `s` at that
    /// load, `INF` when the state's capacity cannot cover it.
    serve: Vec<f64>,
    costs: Vec<ArchCost>,
    /// Sorted distinct per-architecture counts across all states: the
    /// axes of the count lattice the distance transform sweeps.
    axes: Vec<Vec<u32>>,
    strides: Vec<usize>,
    box_size: usize,
    /// Lattice cell of each state.
    cell_of: Vec<usize>,
    beam: Option<usize>,
    /// Running count of beam-pruned states (interior mutability because
    /// pruning happens under `&self`); the forward-pass snapshot is what
    /// [`OptimalSchedule::states_pruned`] reports — the backtrack's
    /// window recomputations re-prune the same boundaries and must not
    /// inflate it.
    pruned: std::cell::Cell<u64>,
}

impl<'a> Dp<'a> {
    fn build(
        trace: &LoadTrace,
        bml: &'a BmlInfrastructure,
        split: SplitPolicy,
        opts: &OptOptions,
    ) -> Self {
        let profiles = bml.candidates();
        let n_archs = profiles.len();

        // Distinct loads (ordered by bit pattern — loads are non-negative,
        // so this is numeric order) and the segment list.
        let mut load_idx: BTreeMap<u64, usize> = BTreeMap::new();
        let mut pre_segs: Vec<(u64, u64, u64)> = Vec::new();
        for seg in trace.constant_runs() {
            pre_segs.push((seg.start, seg.len(), seg.value.to_bits()));
            let next = load_idx.len();
            load_idx.entry(seg.value.to_bits()).or_insert(next);
        }
        let mut loads = vec![0.0f64; load_idx.len()];
        for (&bits, &i) in &load_idx {
            loads[i] = f64::from_bits(bits);
        }
        let segs: Vec<Seg> = pre_segs
            .into_iter()
            .map(|(start, len, bits)| Seg {
                start,
                len,
                load: load_idx[&bits],
            })
            .collect();

        // Candidate states: the combination table's answer for every
        // distinct load, all-off, and the caller's extras.
        let table = bml.combination_table();
        let mut state_set: BTreeSet<Vec<u32>> = BTreeSet::new();
        state_set.insert(vec![0; n_archs]);
        for &v in &loads {
            state_set.insert(table.counts_for(v));
        }
        for extra in &opts.extra_states {
            assert_eq!(
                extra.len(),
                n_archs,
                "extra state arity must match the candidate count"
            );
            state_set.insert(extra.clone());
        }
        let states: Vec<Vec<u32>> = state_set.into_iter().collect();
        let k = states.len();

        // Serving power per (load, state); INF = capacity cannot cover.
        let mut serve = vec![INF; loads.len() * k];
        for (li, &v) in loads.iter().enumerate() {
            for (si, st) in states.iter().enumerate() {
                let (w, served) = config_power(profiles, st, v, split);
                if served + EPS >= v {
                    serve[li * k + si] = w;
                }
            }
        }

        let costs: Vec<ArchCost> = profiles.iter().map(ArchCost::new).collect();

        // The count lattice: axis k = sorted distinct counts of arch k.
        let axes: Vec<Vec<u32>> = (0..n_archs)
            .map(|a| {
                let mut vals: Vec<u32> = states.iter().map(|s| s[a]).collect();
                vals.sort_unstable();
                vals.dedup();
                vals
            })
            .collect();
        let mut strides = vec![1usize; n_archs];
        for a in (0..n_archs.saturating_sub(1)).rev() {
            strides[a] = strides[a + 1] * axes[a + 1].len();
        }
        let box_size = if n_archs == 0 {
            1
        } else {
            strides[0] * axes[0].len()
        };
        let cell_of: Vec<usize> = states
            .iter()
            .map(|s| {
                s.iter()
                    .enumerate()
                    .map(|(a, &c)| {
                        let pos = axes[a].binary_search(&c).expect("count is on its axis");
                        pos * strides[a]
                    })
                    .sum()
            })
            .collect();

        Dp {
            profiles,
            horizon: trace.len(),
            segs,
            states,
            serve,
            costs,
            axes,
            strides,
            box_size,
            cell_of,
            beam: opts.beam_width,
            pruned: std::cell::Cell::new(0),
        }
    }

    fn k(&self) -> usize {
        self.states.len()
    }

    /// Serving energy of segment `i` in state `s` (INF when infeasible).
    fn serve_energy(&self, i: usize, s: usize) -> f64 {
        self.serve[self.segs[i].load * self.k() + s] * self.segs[i].len as f64
    }

    /// Direct transition cost from state `a` to state `b` at boundary
    /// `tau` — the canonical per-architecture sum the schedule's energy
    /// is priced with. INF when a required boot cannot mature by `tau`.
    fn trans_cost(&self, a: usize, b: usize, tau: u64) -> f64 {
        let (sa, sb) = (&self.states[a], &self.states[b]);
        let mut c = 0.0;
        for arch in 0..self.profiles.len() {
            let d = i64::from(sb[arch]) - i64::from(sa[arch]);
            if d > 0 {
                if self.costs[arch].lead > tau {
                    return INF;
                }
                c += d as f64 * self.costs[arch].on_cost;
            } else if d < 0 {
                c += (-d) as f64 * self.costs[arch].off_cost(self.horizon - tau);
            }
        }
        c
    }

    /// Beam pruning: keep the `w` cheapest finite entries (ties broken by
    /// index for determinism), INF out the rest.
    fn prune(&self, dp: &mut [f64]) {
        let Some(w) = self.beam else { return };
        let mut order: Vec<usize> = (0..dp.len()).filter(|&s| dp[s].is_finite()).collect();
        if order.len() <= w {
            return;
        }
        order.sort_by(|&x, &y| dp[x].partial_cmp(&dp[y]).unwrap().then(x.cmp(&y)));
        self.pruned
            .set(self.pruned.get() + (order.len() - w) as u64);
        for &s in &order[w..] {
            dp[s] = INF;
        }
    }

    /// Min-plus transition across boundary `tau`:
    /// `out[b] = min_a dp[a] + trans_cost(a, b, tau)`, computed exactly
    /// in `O(box)` via per-axis distance-transform sweeps over the count
    /// lattice (transition costs are separable per architecture; an
    /// up-then-down detour is never cheaper than the direct move, so the
    /// two sweeps per axis relax every pair).
    fn transition(&self, dp: &[f64], tau: u64, buf: &mut [f64], out: &mut [f64]) {
        buf.fill(INF);
        for (s, &cell) in self.cell_of.iter().enumerate() {
            buf[cell] = dp[s];
        }
        for (arch, axis) in self.axes.iter().enumerate() {
            let m = axis.len();
            if m == 1 {
                continue;
            }
            let stride = self.strides[arch];
            if self.costs[arch].lead <= tau {
                let rate = self.costs[arch].on_cost;
                for idx in 0..self.box_size {
                    let j = (idx / stride) % m;
                    if j > 0 {
                        let cand = buf[idx - stride] + rate * f64::from(axis[j] - axis[j - 1]);
                        if cand < buf[idx] {
                            buf[idx] = cand;
                        }
                    }
                }
            }
            let off_unit = self.costs[arch].off_cost(self.horizon - tau);
            for idx in (0..self.box_size).rev() {
                let j = (idx / stride) % m;
                if j + 1 < m {
                    let cand = buf[idx + stride] + off_unit * f64::from(axis[j + 1] - axis[j]);
                    if cand < buf[idx] {
                        buf[idx] = cand;
                    }
                }
            }
        }
        for (s, &cell) in self.cell_of.iter().enumerate() {
            out[s] = buf[cell];
        }
    }

    /// One forward step: prune (beam), transition over the boundary into
    /// segment `i + 1`, add its serving energy. `dp` becomes the cost
    /// vector through segment `i + 1`.
    fn step(&self, dp: &mut Vec<f64>, i: usize, buf: &mut [f64], out: &mut Vec<f64>) {
        self.prune(dp);
        let tau = self.segs[i + 1].start;
        self.transition(dp, tau, buf, out);
        for (s, v) in out.iter_mut().enumerate() {
            *v += self.serve_energy(i + 1, s);
        }
        std::mem::swap(dp, out);
    }

    /// Forward pass + windowed backtrack. Returns the optimal state per
    /// segment plus the forward pass's beam-prune count, or `None` when
    /// the (beam-pruned) DP dead-ends.
    fn solve_path(&self) -> Option<(Vec<usize>, u64)> {
        let k = self.k();
        let s_count = self.segs.len();
        let mut dp: Vec<f64> = (0..k).map(|s| self.serve_energy(0, s)).collect();
        let mut buf = vec![INF; self.box_size];
        let mut out = vec![INF; k];
        let mut checkpoints: Vec<Vec<f64>> = vec![dp.clone()];
        for i in 0..s_count - 1 {
            self.step(&mut dp, i, &mut buf, &mut out);
            if (i + 1) % CHECKPOINT_EVERY == 0 {
                checkpoints.push(dp.clone());
            }
        }
        let forward_pruned = self.pruned.get();
        let (mut best_s, mut best_v) = (usize::MAX, INF);
        for (s, &v) in dp.iter().enumerate() {
            if v < best_v {
                best_v = v;
                best_s = s;
            }
        }
        if !best_v.is_finite() {
            return None;
        }

        let mut path = vec![0usize; s_count];
        path[s_count - 1] = best_s;
        let mut hi = s_count - 1;
        while hi > 0 {
            let c = (hi - 1) / CHECKPOINT_EVERY;
            let w0 = c * CHECKPOINT_EVERY;
            // Recompute dp_{w0}..dp_{hi-1} from the window's checkpoint.
            let mut dps: Vec<Vec<f64>> = Vec::with_capacity(hi - w0);
            let mut cur = checkpoints[c].clone();
            dps.push(cur.clone());
            for i in w0..hi - 1 {
                self.step(&mut cur, i, &mut buf, &mut out);
                dps.push(cur.clone());
            }
            for i in (w0..hi).rev() {
                let dp_i = &mut dps[i - w0];
                self.prune(dp_i); // the same beam the forward transition saw
                let b = path[i + 1];
                let tau = self.segs[i + 1].start;
                let (mut best_a, mut best_c) = (usize::MAX, INF);
                for (a, &v) in dp_i.iter().enumerate() {
                    if !v.is_finite() {
                        continue;
                    }
                    let cost = v + self.trans_cost(a, b, tau);
                    if cost < best_c {
                        best_c = cost;
                        best_a = a;
                    }
                }
                debug_assert!(best_c.is_finite(), "reachable state has a predecessor");
                // Prefer staying put on (float-) ties: fewer records, and
                // the common no-reconfiguration case short-circuits.
                let stay = dp_i[b];
                path[i] = if stay <= best_c + 1e-9 * best_c.abs() + 1e-6 {
                    b
                } else {
                    best_a
                };
            }
            hi = w0;
        }
        Some((path, forward_pruned))
    }

    /// Total energy of a state path, priced canonically (serve + direct
    /// transition costs) — this, not the forward pass's float
    /// accumulation, is the number the replay must reproduce.
    fn path_energy(&self, path: &[usize]) -> f64 {
        let mut e = self.serve_energy(0, path[0]);
        for i in 1..path.len() {
            e += self.trans_cost(path[i - 1], path[i], self.segs[i].start);
            e += self.serve_energy(i, path[i]);
        }
        e
    }

    /// Convert a state path into the engine's believed-configuration
    /// record protocol: per transition, one boot record per distinct
    /// maturity lead issued `lead` seconds before the boundary, and one
    /// shutdown record at the boundary; then a global stable sort by
    /// time with cumulatively rebuilt targets, so records compose in
    /// list order even when leads from different transitions interleave.
    fn schedule(&self, path: &[usize]) -> Vec<ReconfigRecord> {
        let n_archs = self.profiles.len();
        let mut events: Vec<(u64, Vec<i64>)> = Vec::new();
        for i in 1..path.len() {
            let (a, b) = (&self.states[path[i - 1]], &self.states[path[i]]);
            if a == b {
                continue;
            }
            let tau = self.segs[i].start;
            let mut boots: BTreeMap<u64, Vec<i64>> = BTreeMap::new();
            let mut offs = vec![0i64; n_archs];
            let mut any_off = false;
            for arch in 0..n_archs {
                let d = i64::from(b[arch]) - i64::from(a[arch]);
                if d > 0 {
                    boots
                        .entry(self.costs[arch].lead)
                        .or_insert_with(|| vec![0; n_archs])[arch] += d;
                } else if d < 0 {
                    offs[arch] = d;
                    any_off = true;
                }
            }
            for (lead, delta) in boots {
                debug_assert!(lead <= tau, "the DP only books maturable boots");
                events.push((tau - lead, delta));
            }
            if any_off {
                events.push((tau, offs));
            }
        }
        events.sort_by_key(|e| e.0); // stable: same-time records keep order
        let mut believed: Vec<i64> = self.states[path[0]].iter().map(|&c| i64::from(c)).collect();
        events
            .into_iter()
            .map(|(at, delta)| {
                for (b, d) in believed.iter_mut().zip(delta) {
                    *b += d;
                    debug_assert!(*b >= 0);
                }
                ReconfigRecord {
                    at,
                    target: believed.iter().map(|&c| c as u32).collect(),
                }
            })
            .collect()
    }
}

/// Compute the offline-optimal reconfiguration schedule for `trace` on
/// `bml`'s candidate infrastructure under `split`.
///
/// Returns `None` only when a [`OptOptions::beam_width`] prunes the DP
/// into a dead end; the exact DP (`beam_width: None`) always succeeds on
/// any trace (the combination for the trace maximum is feasible
/// everywhere, and the warm start makes it reachable). An empty trace
/// yields a zero-energy schedule.
///
/// The optimum is exact *within its state space*: machine combinations
/// produced by the infrastructure's combination table for the trace's
/// load levels (plus [`OptOptions::extra_states`]), reconfigured only at
/// constant-load segment boundaries — see the crate docs for why
/// boundary-restricted schedules dominate.
pub fn solve(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    split: SplitPolicy,
    opts: &OptOptions,
) -> Option<OptimalSchedule> {
    if trace.is_empty() {
        return Some(OptimalSchedule {
            energy_j: 0.0,
            initial: vec![0; bml.n_archs()],
            schedule: Vec::new(),
            n_states: 0,
            n_segments: 0,
            n_boundaries: 0,
            states_pruned: 0,
        });
    }
    let dp = Dp::build(trace, bml, split, opts);
    let (path, states_pruned) = dp.solve_path()?;
    Some(OptimalSchedule {
        energy_j: dp.path_energy(&path),
        initial: dp.states[path[0]].clone(),
        schedule: dp.schedule(&path),
        n_states: dp.k(),
        n_segments: dp.segs.len(),
        n_boundaries: dp.segs.len() - 1,
        states_pruned,
    })
}

/// [`solve`], then replay the schedule through the simulator
/// ([`bml_sim::replay_schedule`]) and demand the claimed energy back to
/// 1e-9 relative. Returns the schedule and the full replay
/// [`ScenarioResult`] (named `"Offline Optimal"`, genuine QoS and daily
/// energies).
///
/// # Panics
///
/// Panics when the replayed energy disagrees with the DP's claim beyond
/// 1e-9 relative — the cost model and the simulator have diverged, and
/// every optimality number downstream would be wrong.
pub fn solve_verified(
    trace: &LoadTrace,
    bml: &BmlInfrastructure,
    split: SplitPolicy,
    opts: &OptOptions,
) -> Option<(OptimalSchedule, ScenarioResult)> {
    let sched = solve(trace, bml, split, opts)?;
    let replay = replay_schedule(trace, bml, &sched.initial, &sched.schedule, split);
    let (a, b) = (sched.energy_j, replay.total_energy_j);
    assert!(
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()) + 1e-9,
        "offline-optimal replay diverged: DP claims {a} J, simulator metered {b} J \
         ({} records over {} segments)",
        sched.schedule.len(),
        sched.n_segments,
    );
    Some((sched, replay))
}

/// Optimal power (W) and machine counts for serving a single constant
/// `rate` — the one-segment special case of the DP, with the knapsack
/// packing of [`bml_core::combination::optimal_dp`] seeded as an extra
/// candidate so the answer is the true instantaneous optimum (for a
/// fixed machine multiset the efficiency-greedy split is the cheapest
/// assignment, so the enriched candidate set contains the knapsack's
/// minimizer).
///
/// `ablation_packing` uses this to compare the Step-5 greedy fill
/// against the optimum; the two solvers must agree (tested there).
pub fn optimal_instant(bml: &BmlInfrastructure, rate: u64, split: SplitPolicy) -> (f64, Vec<u32>) {
    let (_, knapsack) = bml_core::combination::optimal_dp(bml.candidates(), rate);
    let trace = LoadTrace::new(0, vec![rate as f64]);
    let opts = OptOptions {
        beam_width: None,
        extra_states: vec![knapsack],
    };
    let sched = solve(&trace, bml, split, &opts).expect("exact one-segment DP cannot dead-end");
    (sched.energy_j, sched.initial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bml_core::catalog;
    use proptest::prelude::*;

    fn bml() -> BmlInfrastructure {
        BmlInfrastructure::build(&catalog::table1()).unwrap()
    }

    fn greedy() -> SplitPolicy {
        SplitPolicy::EfficiencyGreedy
    }

    #[test]
    fn empty_trace_is_free() {
        let s = solve(
            &LoadTrace::new(0, vec![]),
            &bml(),
            greedy(),
            &OptOptions::default(),
        )
        .unwrap();
        assert_eq!(s.energy_j, 0.0);
        assert!(s.schedule.is_empty());
        assert_eq!(s.initial, vec![0, 0, 0]);
        assert_eq!((s.n_boundaries, s.states_pruned), (0, 0));
    }

    #[test]
    fn solver_stats_count_boundaries_and_prunes() {
        let bml = bml();
        let mut rates = vec![100.0; 60];
        rates.extend(vec![900.0; 60]);
        rates.extend(vec![5.0; 60]);
        let trace = LoadTrace::new(0, rates);
        let exact = solve(&trace, &bml, greedy(), &OptOptions::default()).unwrap();
        assert_eq!(exact.n_segments, 3);
        assert_eq!(exact.n_boundaries, 2);
        assert_eq!(exact.states_pruned, 0, "exact DP never prunes");
        let beam = solve(
            &trace,
            &bml,
            greedy(),
            &OptOptions {
                beam_width: Some(1),
                extra_states: vec![],
            },
        );
        if let Some(beam) = beam {
            assert!(
                beam.states_pruned > 0,
                "width-1 beam over {} states must prune",
                beam.n_states
            );
            // Counting is deterministic: same inputs, same count.
            let again = solve(
                &trace,
                &bml,
                greedy(),
                &OptOptions {
                    beam_width: Some(1),
                    extra_states: vec![],
                },
            )
            .unwrap();
            assert_eq!(again.states_pruned, beam.states_pruned);
        }
    }

    #[test]
    fn constant_trace_holds_the_ideal_combination() {
        let bml = bml();
        let trace = LoadTrace::new(0, vec![500.0; 600]);
        let s = solve(&trace, &bml, greedy(), &OptOptions::default()).unwrap();
        assert!(s.schedule.is_empty(), "no reason to reconfigure");
        let counts = bml.combination_table().counts_for(500.0);
        assert_eq!(s.initial, counts);
        let (w, _) = bml.config_power(&counts, 500.0, greedy());
        assert!((s.energy_j - w * 600.0).abs() < 1e-9);
    }

    #[test]
    fn single_second_trace_solves() {
        let bml = bml();
        let s = solve(
            &LoadTrace::new(0, vec![42.0]),
            &bml,
            greedy(),
            &OptOptions::default(),
        )
        .unwrap();
        assert_eq!(s.n_segments, 1);
        let counts = bml.combination_table().counts_for(42.0);
        let (w, _) = bml.config_power(&counts, 42.0, greedy());
        assert!(s.energy_j <= w + 1e-9, "optimum can only improve on greedy");
    }

    #[test]
    fn immature_boot_forces_a_warm_start() {
        // Load jumps to 5000 at t=1: no architecture can boot in 1 s, so
        // the only feasible policy warm-starts the big fleet and pays its
        // idle through the first second.
        let bml = bml();
        let mut rates = vec![0.0];
        rates.extend(vec![5000.0; 300]);
        let trace = LoadTrace::new(0, rates);
        let (s, replay) = solve_verified(&trace, &bml, greedy(), &OptOptions::default()).unwrap();
        let high = bml.combination_table().counts_for(5000.0);
        assert_eq!(s.initial, high);
        assert!(s.schedule.is_empty());
        let (w_idle, _) = bml.config_power(&high, 0.0, greedy());
        let (w_high, _) = bml.config_power(&high, 5000.0, greedy());
        let expected = w_idle + w_high * 300.0;
        assert!((s.energy_j - expected).abs() < 1e-9);
        assert_eq!(replay.qos.violation_seconds, 0);
    }

    #[test]
    fn boots_are_scheduled_one_lead_before_the_step() {
        // Long quiet stretch then a step: booting just-in-time beats
        // holding the serving fleet from t=0.
        let bml = bml();
        let mut rates = vec![0.0; 1000];
        rates.extend(vec![500.0; 1000]);
        let trace = LoadTrace::new(0, rates);
        let (s, replay) = solve_verified(&trace, &bml, greedy(), &OptOptions::default()).unwrap();
        assert!(!s.schedule.is_empty(), "must boot for the step");
        assert_eq!(s.initial, vec![0, 0, 0], "idle stretch starts dark");
        // Every boot record lands exactly its architecture's ceil'd boot
        // duration before the step at t=1000.
        for r in &s.schedule {
            assert!(r.at < 1000, "boots are issued before the boundary: {r:?}");
        }
        assert_eq!(replay.qos.violation_seconds, 0, "just-in-time, not late");
        // And it beats the naive hold-forever policy.
        let counts = bml.combination_table().counts_for(500.0);
        let (w_idle, _) = bml.config_power(&counts, 0.0, greedy());
        let (w_serve, _) = bml.config_power(&counts, 500.0, greedy());
        assert!(s.energy_j < w_idle * 1000.0 + w_serve * 1000.0);
    }

    #[test]
    fn lattice_transition_matches_naive_min_plus() {
        let bml = bml();
        // A trace whose distinct loads span several combinations.
        let mut rates = Vec::new();
        for &v in &[0.0, 10.0, 50.0, 529.0, 1500.0, 4000.0, 300.0] {
            rates.extend(vec![v; 60]);
        }
        let trace = LoadTrace::new(0, rates);
        let dp = Dp::build(&trace, &bml, greedy(), &OptOptions::default());
        let k = dp.k();
        assert!(k >= 5, "want a non-trivial state space, got {k}");
        // Deterministic pseudo-random dp vector.
        let dp_in: Vec<f64> = (0..k)
            .map(|s| {
                if s % 7 == 3 {
                    INF
                } else {
                    1000.0 + 37.0 * ((s * s + 11) % 97) as f64
                }
            })
            .collect();
        let mut buf = vec![INF; dp.box_size];
        let mut out = vec![INF; k];
        for &tau in &[1u64, 12, 16, 189, 200, dp.horizon - 5] {
            dp.transition(&dp_in, tau, &mut buf, &mut out);
            for (b, &got) in out.iter().enumerate() {
                let naive = (0..k)
                    .map(|a| dp_in[a] + dp.trans_cost(a, b, tau))
                    .fold(INF, f64::min);
                assert!(
                    (got - naive).abs() <= 1e-9 * naive.abs().max(1.0) || (got == naive),
                    "tau={tau} b={b}: lattice {got} vs naive {naive}"
                );
            }
        }
    }

    #[test]
    fn verified_replay_agrees_on_a_bursty_trace() {
        let bml = bml();
        let trace = bml_trace::synthetic::flash_crowd(100.0, 5000.0, 1000, 60, 300.0, 5000);
        let (s, replay) = solve_verified(&trace, &bml, greedy(), &OptOptions::default()).unwrap();
        assert_eq!(replay.name, "Offline Optimal");
        assert_eq!(replay.qos.violation_seconds, 0, "full service by design");
        assert!(s.energy_j > 0.0);
        // The optimum must not exceed the pro-active scheduler's energy.
        let live = bml_sim::scenarios::bml_proactive(&trace, &bml, &bml_sim::SimConfig::default());
        assert!(
            s.energy_j <= live.total_energy_j + 1e-6,
            "optimal {} vs scheduler {}",
            s.energy_j,
            live.total_energy_j
        );
    }

    #[test]
    fn optimal_instant_never_above_greedy_fill() {
        let bml = bml();
        for rate in (1..=2662u64).step_by(97) {
            let (opt, counts) = optimal_instant(&bml, rate, greedy());
            let greedy_w = bml.ideal_combination(rate as f64).power(bml.candidates());
            assert!(
                opt <= greedy_w + 1e-9,
                "rate {rate}: optimal {opt} > greedy {greedy_w}"
            );
            let (_, dp_counts) = bml_core::combination::optimal_dp(bml.candidates(), rate);
            let (dp_w, _) = bml.config_power(&dp_counts, rate as f64, greedy());
            assert!(
                (opt - dp_w.min(greedy_w)).abs() <= 1e-9 * dp_w.max(1.0),
                "rate {rate}: instant {opt} vs knapsack {dp_w} / greedy {greedy_w} ({counts:?})"
            );
        }
    }

    #[test]
    fn zero_beam_dead_ends() {
        let bml = bml();
        // Two segments, so the (empty) beam is actually crossed once.
        let mut rates = vec![100.0; 10];
        rates.extend(vec![900.0; 10]);
        let trace = LoadTrace::new(0, rates);
        let opts = OptOptions {
            beam_width: Some(0),
            extra_states: vec![],
        };
        assert!(solve(&trace, &bml, greedy(), &opts).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Beam energies are upper bounds on the exact optimum, and both
        /// survive the simulator replay cross-check, over random step
        /// traces.
        #[test]
        fn beam_is_an_upper_bound_and_replays_clean(
            levels in proptest::collection::vec(0usize..5, 1..8),
            durs in proptest::collection::vec(1u64..40, 1..8),
            width in 1usize..4,
        ) {
            let palette = [0.0, 9.0, 40.0, 529.0, 1400.0];
            let mut rates = Vec::new();
            for (l, d) in levels.iter().zip(&durs) {
                rates.extend(vec![palette[*l]; *d as usize]);
            }
            let trace = LoadTrace::new(0, rates);
            let bml = bml();
            let (exact, _) =
                solve_verified(&trace, &bml, greedy(), &OptOptions::default()).unwrap();
            let beam_opts = OptOptions { beam_width: Some(width), extra_states: vec![] };
            if let Some((beam, _)) = solve_verified(&trace, &bml, greedy(), &beam_opts) {
                prop_assert!(
                    beam.energy_j >= exact.energy_j - 1e-9 * exact.energy_j.abs() - 1e-6,
                    "beam {} below exact {}", beam.energy_j, exact.energy_j
                );
            }
        }
    }
}
