//! End-to-end integration: profile -> build -> simulate -> compare, on a
//! reduced World-Cup-like trace, checking the Fig. 5 relationships and
//! the QoS story across crates.

use bml::core::combination::SplitPolicy;
use bml::prelude::*;
use bml::sim::scenarios;
use bml::trace::worldcup::{generate, WorldCupParams};

/// A 4-day slice that includes quiet and match days, small enough for CI.
fn test_trace() -> LoadTrace {
    generate(&WorldCupParams {
        n_days: 4,
        tournament_start: 7, // days 7-8-9 are tournament days
        final_day: 9,
        ..Default::default()
    })
}

#[test]
fn full_pipeline_fig5_relationships() {
    let trace = test_trace();
    let measured = profile_park(&paper_machines(), &ProfilerConfig::paper());
    let infra = BmlInfrastructure::build(&measured).unwrap();
    let c = run_comparison(&trace, &infra, &SimConfig::default());

    // Ordering of the four curves, every single day.
    for d in 0..c.bml.daily_energy_j.len() {
        assert!(
            c.lower_bound.daily_energy_j[d] <= c.bml.daily_energy_j[d] + 1e-6,
            "day {d}: LB above BML"
        );
        assert!(
            c.bml.daily_energy_j[d] < c.ub_global.daily_energy_j[d],
            "day {d}: BML above UB Global"
        );
        assert!(
            c.ub_per_day.daily_energy_j[d] <= c.ub_global.daily_energy_j[d] + 1e-6,
            "day {d}: PerDay above Global"
        );
    }

    // The paper's headline shape: BML sits a few tens of percent above
    // the unreachable floor, while over-provisioning sits far above.
    assert!(c.bml_vs_lower.mean > 0.0);
    assert!(
        c.bml_vs_lower.mean < 200.0,
        "BML overhead {}% out of band",
        c.bml_vs_lower.mean
    );
    let ub_overhead = 100.0 * (c.ub_global.total_energy_j / c.lower_bound.total_energy_j - 1.0);
    assert!(
        ub_overhead > c.bml_vs_lower.mean * 2.0,
        "over-provisioning ({ub_overhead:.0}%) must dwarf BML ({:.0}%)",
        c.bml_vs_lower.mean
    );

    // QoS: the web server's tolerant class is satisfied.
    let spec = ApplicationSpec::stateless_web_server();
    assert!(
        c.bml.qos.satisfies(spec.qos.tolerated_shortfall()),
        "shortfall {}",
        c.bml.qos.shortfall_fraction()
    );
    assert_eq!(c.ub_global.qos.violation_seconds, 0);
    assert_eq!(c.lower_bound.qos.violation_seconds, 0);
}

#[test]
fn bml_reconfigures_with_daily_cycle() {
    let trace = test_trace();
    let infra = BmlInfrastructure::build(&bml::core::catalog::table1()).unwrap();
    let r = scenarios::bml_proactive(&trace, &infra, &SimConfig::default());
    // At least a few reconfigurations per day on a diurnal trace.
    assert!(
        r.reconfigurations >= 8,
        "only {} reconfigurations over 4 days",
        r.reconfigurations
    );
    assert!(r.nodes_switched_on > 0 && r.nodes_switched_off > 0);
    assert!(r.reconfig_energy_j > 0.0);
    // Transition energy is part of the total but not dominant.
    assert!(r.reconfig_energy_j < r.total_energy_j * 0.5);
    // Instance migrations happen when capacity moves between tiers.
    assert!(r.instance_migrations > 0);
}

#[test]
fn split_policies_serve_identically_but_differ_in_power() {
    let trace = test_trace();
    let infra = BmlInfrastructure::build(&bml::core::catalog::table1()).unwrap();
    let greedy = scenarios::bml_proactive(
        &trace,
        &infra,
        &SimConfig {
            split: SplitPolicy::EfficiencyGreedy,
            ..Default::default()
        },
    );
    let proportional = scenarios::bml_proactive(
        &trace,
        &infra,
        &SimConfig {
            split: SplitPolicy::ProportionalToCapacity,
            ..Default::default()
        },
    );
    assert_eq!(
        greedy.qos.violation_seconds,
        proportional.qos.violation_seconds
    );
    assert!((greedy.qos.total_served - proportional.qos.total_served).abs() < 1e-3);
    assert!(greedy.total_energy_j <= proportional.total_energy_j + 1e-6);
}

#[test]
fn cold_start_converges_to_warm_start_energy() {
    let trace = test_trace();
    let infra = BmlInfrastructure::build(&bml::core::catalog::table1()).unwrap();
    let warm = scenarios::bml_proactive(&trace, &infra, &SimConfig::default());
    let cold = scenarios::bml_proactive(
        &trace,
        &infra,
        &SimConfig {
            cold_start: true,
            ..Default::default()
        },
    );
    // One extra boot's worth of energy at most a fraction of a percent
    // over four days.
    let rel = (cold.total_energy_j - warm.total_energy_j).abs() / warm.total_energy_j;
    assert!(rel < 0.01, "cold-start diverged by {rel}");
}

#[test]
fn trace_csv_roundtrip_preserves_simulation() {
    // Serializing the trace to the CSV interchange format and re-reading
    // it yields the identical scenario result (the format is lossless for
    // integer-rounded rates).
    let trace = generate(&WorldCupParams {
        n_days: 1,
        ..Default::default()
    });
    let reparsed = LoadTrace::from_csv(&trace.to_csv()).unwrap();
    let infra = BmlInfrastructure::build(&bml::core::catalog::table1()).unwrap();
    let a = scenarios::bml_proactive(&trace, &infra, &SimConfig::default());
    let b = scenarios::bml_proactive(&reparsed, &infra, &SimConfig::default());
    assert_eq!(a.total_energy_j, b.total_energy_j);
    assert_eq!(a.reconfigurations, b.reconfigurations);
}

#[test]
fn energy_metrics_cross_check() {
    // The proportionality index of the whole simulated system: BML's
    // realized energy over the trace is far closer to the load-weighted
    // floor than the over-provisioned baseline's.
    let trace = test_trace();
    let infra = BmlInfrastructure::build(&bml::core::catalog::table1()).unwrap();
    let c = run_comparison(&trace, &infra, &SimConfig::default());
    let bml_ratio = c.bml.total_energy_j / c.lower_bound.total_energy_j;
    let ub_ratio = c.ub_global.total_energy_j / c.lower_bound.total_energy_j;
    assert!(
        bml_ratio < ub_ratio / 2.0,
        "bml {bml_ratio} vs ub {ub_ratio}"
    );
}
