//! Integration tests pinning the numbers the paper states in Sec. V-B:
//! which machines survive filtering, the minimum utilization thresholds,
//! and the qualitative shape of Fig. 4.

use bml::core::candidates::RemovalReason;
use bml::core::crossing::ThresholdKind;
use bml::prelude::*;

fn infra() -> BmlInfrastructure {
    BmlInfrastructure::build(&bml::core::catalog::table1()).unwrap()
}

#[test]
fn step2_removes_taurus_step3_removes_graphene() {
    let infra = infra();
    let removed: Vec<(&str, &RemovalReason)> = infra
        .removed()
        .iter()
        .map(|(p, r)| (p.name.as_str(), r))
        .collect();
    assert_eq!(removed.len(), 2);
    assert!(matches!(
        removed.iter().find(|(n, _)| *n == "taurus").unwrap().1,
        RemovalReason::Dominated { by } if by == "paravance"
    ));
    assert!(matches!(
        removed.iter().find(|(n, _)| *n == "graphene").unwrap().1,
        RemovalReason::NeverOptimal
    ));
}

#[test]
fn final_infrastructure_is_raspberry_chromebook_paravance() {
    let infra = infra();
    let names: Vec<&str> = infra.candidates().iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, vec!["paravance", "chromebook", "raspberry"]);
    assert_eq!(infra.labels(), vec!["Big", "Medium", "Little"]);
}

#[test]
fn thresholds_are_1_10_529() {
    // "Their minimum utilization thresholds are respectively 1, 10 and
    // 529 requests per second" (Sec. V-B).
    let infra = infra();
    assert_eq!(infra.threshold_rates(), vec![529.0, 10.0, 1.0]);
    let kinds: Vec<ThresholdKind> = infra.thresholds().iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        vec![
            ThresholdKind::Crossing,
            ThresholdKind::Crossing,
            ThresholdKind::Base
        ]
    );
}

#[test]
fn paper_window_is_378_seconds() {
    // "a sliding look-ahead window... of 378 seconds, equivalent to 2
    // times the longest On duration" (Sec. V-C).
    assert_eq!(
        bml::core::scheduler::paper_window_length(infra().candidates()),
        378
    );
}

#[test]
fn fig4_bml_curve_shape() {
    let infra = infra();
    // The BML curve starts at Little scale, not at the Big's 69.9 W idle.
    assert!(infra.power_at(1.0) < 4.0);
    // It meets the Big exactly at maxPerf(Big)...
    assert!((infra.power_at(1331.0) - 200.5).abs() < 1e-9);
    // ...and stays at or below the all-Big staircase everywhere.
    for r in 1..=1331u64 {
        assert!(infra.power_at(r as f64) <= infra.big_stack_power(r as f64) + 1e-9);
    }
    // Beyond one Big the combination keeps growing monotonically.
    assert!(infra.power_at(2_000.0) > infra.power_at(1_331.0));
}

#[test]
fn fig4_switch_to_big_at_529() {
    let infra = infra();
    assert_eq!(infra.ideal_combination(529.0).counts(3), vec![1, 0, 0]);
    let below = infra.ideal_combination(528.0).counts(3);
    assert_eq!(below[0], 0);
    assert!(below[1] > 0);
}

#[test]
fn illustrative_walkthrough_matches_section4() {
    // A/B/C kept (D dominated); Medium threshold lands at the "around
    // 150" of Fig. 2; Step 4 raises Big's threshold vs Step 3.
    let infra = BmlInfrastructure::build(&bml::core::catalog::illustrative()).unwrap();
    let names: Vec<&str> = infra.candidates().iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, vec!["A", "B", "C"]);
    assert_eq!(infra.removed()[0].0.name, "D");
    assert_eq!(infra.thresholds()[1].rate, 150.0);
    assert!(infra.thresholds()[0].rate > infra.pairwise_thresholds()[0].rate);
}

#[test]
fn profiled_machines_reproduce_catalog_pipeline() {
    // Step 1 (measured) -> Steps 2-5 end-to-end equals the catalog-based
    // infrastructure in structure.
    let measured = profile_park(&paper_machines(), &ProfilerConfig::paper());
    let from_measurement = BmlInfrastructure::build(&measured).unwrap();
    let from_catalog = infra();
    assert_eq!(
        from_measurement
            .candidates()
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>(),
        from_catalog
            .candidates()
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
    );
}
