//! # bml — Big-Medium-Little energy-proportional data centers
//!
//! Umbrella crate of the reproduction of *"Dynamically Building Energy
//! Proportional Data Centers with Heterogeneous Computing Resources"*
//! (Villebonnet et al., IEEE CLUSTER 2016). It re-exports the workspace
//! crates and hosts the runnable examples and the cross-crate integration
//! tests.
//!
//! * [`core`] (`bml-core`) — the paper's contribution: profiles,
//!   candidate filtering, crossing points, ideal combinations, the
//!   pro-active scheduler;
//! * [`trace`] (`bml-trace`) — load traces, the World-Cup-98-like
//!   workload, predictors;
//! * [`app`] (`bml-app`) — application characterization and the stateless
//!   web server;
//! * [`metrics`] (`bml-metrics`) — IPR/LDR, energy accounting, reports;
//! * [`sim`] (`bml-sim`) — the discrete-event simulator and the four
//!   Fig. 5 scenarios;
//! * [`grid`] (`bml-grid`) — declarative multi-dimensional scenario
//!   grids executed rayon-parallel with deterministic artifacts;
//! * [`opt`] (`bml-opt`) — offline-optimal reconfiguration schedules via
//!   an exact segment DP, replay-verified against the simulator;
//! * [`profiler`] (`bml-profiler`) — the Step-1 measurement harness.
//!
//! ```
//! use bml::prelude::*;
//!
//! let infra = BmlInfrastructure::build(&bml::core::catalog::table1()).unwrap();
//! assert_eq!(infra.threshold_rates(), vec![529.0, 10.0, 1.0]);
//! ```

#![warn(missing_docs)]

pub use bml_app as app;
pub use bml_core as core;
pub use bml_grid as grid;
pub use bml_metrics as metrics;
pub use bml_opt as opt;
pub use bml_profiler as profiler;
pub use bml_sim as sim;
pub use bml_trace as trace;

/// One-stop import of the most used types across the workspace.
pub mod prelude {
    pub use bml_app::{ApplicationSpec, BalancePolicy, Fleet, QosClass};
    pub use bml_core::prelude::*;
    pub use bml_grid::{run_grid, GridOutcome, GridSpec};
    pub use bml_metrics::{EnergyMeter, ExperimentRecord, OverheadStats, Table};
    pub use bml_opt::{solve_verified, OptOptions, OptimalSchedule};
    pub use bml_profiler::{paper_machines, profile_park, ProfilerConfig};
    pub use bml_sim::{run_comparison, ScenarioResult, SimConfig};
    pub use bml_trace::{LoadTrace, LookaheadMaxPredictor, OraclePredictor, Predictor};
}
