//! Flash crowd: a news-site scenario — calm baseline traffic, then a
//! sudden spike (the paper's motivating "variable load" in its sharpest
//! form). Compares the BML pro-active scheduler against classical
//! over-provisioning on energy *and* QoS.
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use bml::core::combination::SplitPolicy;
use bml::prelude::*;
use bml::sim::scenarios;
use bml::trace::synthetic;

fn main() {
    // 2 hours: baseline 60 req/s, spike to 3800 req/s at minute 30,
    // exponential decay over ~20 minutes.
    let trace = synthetic::flash_crowd(60.0, 3_800.0, 1_800, 120, 1_200.0, 7_200);
    println!(
        "Flash crowd: baseline 60 req/s, peak {} req/s at t=30min, {} s total\n",
        trace.max(),
        trace.len()
    );

    let infra = BmlInfrastructure::build(&bml::core::catalog::table1()).unwrap();
    let config = SimConfig::default();

    let bml_run = scenarios::bml_proactive(&trace, &infra, &config);
    let overprovisioned =
        scenarios::upper_bound_global(&trace, infra.big(), SplitPolicy::EfficiencyGreedy);
    let floor = scenarios::lower_bound_theoretical(&trace, &infra, SplitPolicy::EfficiencyGreedy);

    for r in [&overprovisioned, &bml_run, &floor] {
        println!(
            "  {:<22} {:>8.3} kWh | QoS shortfall {:>7.4}% (worst second {:>5.1}%) | {} reconfigs",
            r.name,
            r.total_energy_j / 3.6e6,
            100.0 * r.qos.shortfall_fraction(),
            100.0 * r.qos.worst_shortfall,
            r.reconfigurations,
        );
    }

    let saving = 1.0 - bml_run.total_energy_j / overprovisioned.total_energy_j;
    println!(
        "\nBML saves {:.1}% vs over-provisioning for the peak, at {:.4}% unserved demand.",
        100.0 * saving,
        100.0 * bml_run.qos.shortfall_fraction()
    );
    let spec = ApplicationSpec::stateless_web_server();
    println!(
        "QoS class 'Tolerant' tolerates {:.1}% shortfall: {}",
        100.0 * spec.qos.tolerated_shortfall(),
        if bml_run.qos.satisfies(spec.qos.tolerated_shortfall()) {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    );
}
