//! Capacity planning for a custom machine park: profile *your* hardware
//! models with the Step-1 harness, build the BML infrastructure from the
//! measurements, and read off the purchase/deployment plan for a target
//! load profile.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use bml::prelude::*;
use bml::profiler::SyntheticMachine;

fn main() {
    // A fictional procurement short-list: a beefy dual-socket server, a
    // mid-range edge box, an efficient ARM blade, and an old power-hungry
    // server someone wants to keep using.
    let park = vec![
        SyntheticMachine {
            name: "dual-xeon".into(),
            cores: 32,
            units_per_core_s: 90_000.0,
            idle_w: 85.0,
            peak_w: 260.0,
            linearity: 0.9,
            boot_s: 150.0,
            boot_power_w: 120.0,
            shutdown_s: 12.0,
            shutdown_power_w: 80.0,
        },
        SyntheticMachine {
            name: "edge-box".into(),
            cores: 8,
            units_per_core_s: 60_000.0,
            idle_w: 18.0,
            peak_w: 65.0,
            linearity: 0.93,
            boot_s: 45.0,
            boot_power_w: 30.0,
            shutdown_s: 8.0,
            shutdown_power_w: 20.0,
        },
        SyntheticMachine {
            name: "arm-blade".into(),
            cores: 4,
            units_per_core_s: 20_000.0,
            idle_w: 2.5,
            peak_w: 6.5,
            linearity: 0.96,
            boot_s: 10.0,
            boot_power_w: 4.0,
            shutdown_s: 6.0,
            shutdown_power_w: 3.0,
        },
        SyntheticMachine {
            name: "legacy-hog".into(),
            cores: 16,
            units_per_core_s: 80_000.0,
            idle_w: 180.0,
            peak_w: 320.0,
            linearity: 0.88,
            boot_s: 240.0,
            boot_power_w: 200.0,
            shutdown_s: 20.0,
            shutdown_power_w: 150.0,
        },
    ];

    // Step 1: measure.
    let profiles = profile_park(&park, &ProfilerConfig::paper());
    println!("Measured profiles:");
    for p in &profiles {
        println!(
            "  {:<10} maxPerf {:>6.0} req/s, {:>6.1}-{:>6.1} W, boot {:>4.0} s / {:>7.0} J",
            p.name, p.max_perf, p.idle_power, p.max_power, p.on_duration, p.on_energy
        );
    }

    // Steps 2-4: build.
    let infra = BmlInfrastructure::build(&profiles).expect("park profiles are valid");
    println!("\nBML verdict:");
    let labels = infra.labels();
    for (p, label) in infra.candidates().iter().zip(&labels) {
        println!("  {:<10} -> {label}", p.name);
    }
    for (p, why) in infra.removed() {
        println!("  {:<10} -> REJECTED ({why:?})", p.name);
    }
    println!("Thresholds: {:?} req/s", infra.threshold_rates());

    // Step 5 as a planning table: machines needed at representative loads,
    // including a bounded-pool check (only 2 dual-xeons in stock).
    println!("\nDeployment plan (unlimited pools):");
    for rate in [5.0, 50.0, 300.0, 1_000.0, 3_000.0] {
        let c = infra.ideal_combination(rate).counts(infra.n_archs());
        let names: Vec<String> = infra
            .candidates()
            .iter()
            .zip(&c)
            .filter(|(_, &n)| n > 0)
            .map(|(p, &n)| format!("{}x {}", n, p.name))
            .collect();
        println!(
            "  {:>6.0} req/s -> {:<40} {:>8.1} W",
            rate,
            names.join(" + "),
            infra.power_at(rate)
        );
    }

    let limits = vec![2u32; infra.n_archs()];
    println!("\nBounded pools (2 of each):");
    match infra.ideal_combination_bounded(3_000.0, &limits) {
        Ok(combo) => {
            let c = combo.counts(infra.n_archs());
            println!(
                "  3000 req/s -> {c:?} ({:.1} W)",
                combo.power(infra.candidates())
            );
        }
        Err(e) => println!("  3000 req/s -> {e}"),
    }
    match infra.ideal_combination_bounded(50_000.0, &limits) {
        Ok(_) => println!("  50000 req/s -> unexpectedly feasible"),
        Err(e) => println!("  50000 req/s -> {e}"),
    }
}
