//! The paper's announced future work (Sec. VI): "investigate the impact
//! of load prediction errors on reconfiguration decisions".
//!
//! Runs the BML scenario on one diurnal day with increasingly noisy
//! predictions and with the alternative predictors of `bml-trace`
//! (reactive last-value, EWMA), reporting energy, churn and QoS.
//!
//! ```text
//! cargo run --release --example prediction_errors
//! ```

use bml::prelude::*;
use bml::sim::{runner::sweep_prediction_noise, simulate_bml};
use bml::trace::{synthetic, EwmaPredictor, LastValuePredictor};

fn main() {
    let trace = synthetic::diurnal(10.0, 2_500.0, 4.0, 1);
    let infra = BmlInfrastructure::build(&bml::core::catalog::table1()).unwrap();
    let config = SimConfig::default();

    println!("Gaussian error injected into the 378 s look-ahead-max prediction:\n");
    println!(
        "{:<8} {:>12} {:>10} {:>16} {:>14}",
        "sigma", "energy(kWh)", "reconfigs", "shortfall(%)", "worst sec(%)"
    );
    for (sigma, r) in
        sweep_prediction_noise(&trace, &infra, &[0.0, 0.05, 0.1, 0.2, 0.4], 1998, &config)
    {
        println!(
            "{:<8.2} {:>12.3} {:>10} {:>16.4} {:>14.1}",
            sigma,
            r.total_energy_j / 3.6e6,
            r.reconfigurations,
            100.0 * r.qos.shortfall_fraction(),
            100.0 * r.qos.worst_shortfall
        );
    }

    println!("\nAlternative predictors (load knowledge classes of Sec. III):\n");
    let mut results = Vec::new();
    let mut lookahead = LookaheadMaxPredictor::new(&trace, 378);
    results.push((
        "lookahead-max (partial knowledge)",
        simulate_bml(&trace, &infra, &mut lookahead, &config),
    ));
    let mut last = LastValuePredictor::new(&trace);
    results.push((
        "last-value (unknown load, reactive)",
        simulate_bml(&trace, &infra, &mut last, &config),
    ));
    let mut ewma = EwmaPredictor::new(&trace, 0.02);
    results.push((
        "ewma a=0.02 (smoothed reactive)",
        simulate_bml(&trace, &infra, &mut ewma, &config),
    ));

    println!(
        "{:<36} {:>12} {:>10} {:>16}",
        "predictor", "energy(kWh)", "reconfigs", "shortfall(%)"
    );
    for (name, r) in &results {
        println!(
            "{:<36} {:>12.3} {:>10} {:>16.4}",
            name,
            r.total_energy_j / 3.6e6,
            r.reconfigurations,
            100.0 * r.qos.shortfall_fraction()
        );
    }
    println!(
        "\nReactive predictors cannot hide the Big's 189 s boot: they trade energy for QoS violations,\n\
         which is exactly why the paper ties its window to the longest switch-on duration."
    );
}
