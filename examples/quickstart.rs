//! Quickstart: build a BML infrastructure from the paper's Table I
//! catalog, inspect the thresholds, query combinations, and drive the
//! pro-active scheduler by hand.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bml::prelude::*;

fn main() {
    // Step 1: architecture profiles. Here we use the catalog the paper
    // measured; `bml::profiler` can measure your own machine models.
    let profiles = bml::core::catalog::table1();
    println!("Input architectures:");
    for p in &profiles {
        println!(
            "  {:<10} maxPerf {:>6.0} req/s, {:>5.1}-{:>6.1} W, boot {:>4.0} s",
            p.name, p.max_perf, p.idle_power, p.max_power, p.on_duration
        );
    }

    // Steps 2-4: filter candidates, compute crossing points.
    let infra = BmlInfrastructure::build(&profiles).expect("catalog is valid");
    println!(
        "\nBML candidates (Big -> Little): {:?}",
        infra
            .candidates()
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
    );
    for (p, r) in infra.removed() {
        println!("  removed {}: {r:?}", p.name);
    }
    println!(
        "Minimum utilization thresholds: {:?} req/s",
        infra.threshold_rates()
    );

    // Step 5: ideal combinations for a few rates.
    println!("\nIdeal combinations:");
    for rate in [1.0, 10.0, 100.0, 529.0, 1500.0, 4000.0] {
        let combo = infra.ideal_combination(rate);
        let c = combo.counts(infra.n_archs());
        println!(
            "  {:>6.0} req/s -> Big {:>2}, Medium {:>2}, Little {:>2}  ({:>7.2} W vs {:>7.2} W all-Big)",
            rate,
            c[0],
            c[1],
            c[2],
            infra.power_at(rate),
            infra.big_stack_power(rate)
        );
    }

    // The scheduler: feed it predictions, apply its plans.
    println!("\nScheduler walk-through:");
    let mut sched = ProActiveScheduler::new(infra.n_archs());
    let timeline = [
        (0u64, 40.0),
        (1, 40.0),
        (40, 700.0),
        (250, 700.0),
        (300, 5.0),
    ];
    for (t, predicted) in timeline {
        match sched.decide(t, predicted, &infra) {
            Decision::Reconfigure(plan) => println!(
                "  t={t:>4}s predict {predicted:>6.0} -> reconfigure: +{} -{} machines, {:.0} s, {:.0} J",
                plan.nodes_switched_on(),
                plan.nodes_switched_off(),
                plan.duration,
                plan.energy
            ),
            Decision::Locked { until } => {
                println!("  t={t:>4}s predict {predicted:>6.0} -> locked until t={until}s")
            }
            Decision::NoChange => println!("  t={t:>4}s predict {predicted:>6.0} -> no change"),
        }
    }
    println!(
        "\nScheduler stats: {} reconfigurations, {} boots, {:.0} J of transition energy.",
        sched.stats().reconfigurations,
        sched.stats().nodes_switched_on,
        sched.stats().reconfig_energy
    );
}
